//! # explain3d
//!
//! A from-scratch Rust reproduction of **"Explain3D: Explaining
//! Disagreements in Disjoint Datasets"** (Wang & Meliou, VLDB 2019).
//!
//! Two semantically similar queries over two disjoint datasets — different
//! schemas, separately maintained — can return different answers. Explain3D
//! explains *why*: it derives **provenance-based explanations** (tuples with
//! no counterpart in the other dataset), **value-based explanations** (tuples
//! whose contribution is wrong), and an **evidence mapping** that justifies
//! them, by solving a probabilistic optimisation problem encoded as a MILP.
//!
//! This facade crate re-exports the workspace crates and wires the three
//! stages together:
//!
//! | Crate | Role |
//! |---|---|
//! | [`relation`] | in-memory relational engine + provenance (Def. 2.3) |
//! | [`linkage`] | similarity, calibration, R-Swoosh, initial mapping |
//! | [`milp`] | simplex + branch-and-bound (CPLEX substitute) |
//! | [`partition`] | mapping graph, smart partitioning (Alg. 2–3) |
//! | [`core`] | canonicalisation, MILP encoding, pipeline (Stages 1–2) |
//! | [`incremental`] | session API + delta-driven re-explanation caches |
//! | [`service`] | multi-session registry + HTTP/1.1 serving surface |
//! | [`summarize`] | pattern-based summarisation (Stage 3) |
//! | [`baselines`] | GREEDY / THRESHOLD / RSWOOSH / EXACTCOVER / FORMALEXP |
//! | [`datagen`] | synthetic, academic, and IMDb-view workloads + gold |
//! | [`eval`] | precision / recall / F-measure metrics |
//! | [`telemetry`] | metrics registry, Prometheus exposition, trace ring |
//!
//! ## Quick start
//!
//! ```
//! use explain3d::prelude::*;
//!
//! // Figure 1 of the paper: two catalogs of the same university's programs.
//! let mut d1 = Database::new();
//! let mut programs = Relation::new(
//!     "D1",
//!     Schema::from_pairs(&[("program", ValueType::Str), ("degree", ValueType::Str)]),
//! );
//! for (p, d) in [("Accounting", "B.S."), ("CS", "B.A."), ("CS", "B.S."), ("Design", "B.A.")] {
//!     programs.insert_values([p, d]).unwrap();
//! }
//! d1.add(programs);
//!
//! let mut d2 = Database::new();
//! let mut majors = Relation::new(
//!     "D2",
//!     Schema::from_pairs(&[("univ", ValueType::Str), ("major", ValueType::Str)]),
//! );
//! for m in ["Accounting", "CSE", "Design"] {
//!     majors.insert_values(["A", m]).unwrap();
//! }
//! d2.add(majors);
//!
//! let q1 = Query::scan("D1").named("Q1").count("program");
//! let q2 = Query::scan("D2").named("Q2")
//!     .filter(Expr::col("univ").eq(Expr::lit("A")))
//!     .count("major");
//!
//! // Short program names like "CS"/"CSE" share no word token, so use a
//! // character-level metric for the initial mapping of this tiny catalog.
//! let mut options = ExplainOptions::default();
//! options.mapping.metric = StringMetric::JaroWinkler;
//! options.mapping.use_blocking = false;
//!
//! let outcome = explain_disagreement(
//!     &QueryCase::new(d1, q1),
//!     &QueryCase::new(d2, q2),
//!     &AttributeMatches::single_equivalent("program", "major"),
//!     &options,
//! ).unwrap();
//!
//! assert_eq!(outcome.results.0, Value::Int(4));
//! assert_eq!(outcome.results.1, Value::Int(3));
//! // CS is counted twice on the left but only once on the right.
//! assert_eq!(outcome.report.explanations.value.len(), 1);
//! assert!(outcome.report.complete);
//! ```

#![warn(missing_docs)]

pub use explain3d_baselines as baselines;
pub use explain3d_core as core;
pub use explain3d_datagen as datagen;
pub use explain3d_durability as durability;
pub use explain3d_eval as eval;
pub use explain3d_incremental as incremental;
pub use explain3d_linkage as linkage;
pub use explain3d_milp as milp;
pub use explain3d_parallel as parallel;
pub use explain3d_partition as partition;
pub use explain3d_relation as relation;
pub use explain3d_service as service;
pub use explain3d_summarize as summarize;
pub use explain3d_telemetry as telemetry;

use explain3d_core::prelude::{
    build_initial_mapping, prepare, AttributeMatches, CanonicalRelation, Explain3D,
    Explain3DConfig, ExplanationReport, ExplanationSet, MappingOptions, PreparedComparison,
    QueryCase, Side,
};
use explain3d_relation::prelude::{RelationError, Row, Value};
use explain3d_summarize::{summarize as summarize_targets, SummarizerConfig, Summary};

/// Options for the end-to-end [`explain_disagreement`] helper.
#[derive(Debug, Clone, Default)]
pub struct ExplainOptions {
    /// Stage-2 pipeline configuration (partitioning strategy, priors, MILP).
    pub pipeline: Explain3DConfig,
    /// Initial-mapping construction options (Stage 1).
    pub mapping: MappingOptions,
    /// Stage-3 summarisation configuration.
    pub summarizer: SummarizerConfig,
}

/// The result of an end-to-end run: Stage-1 outputs, Stage-2 explanations,
/// and Stage-3 summaries.
#[derive(Debug, Clone)]
pub struct ExplainOutcome {
    /// The two query results.
    pub results: (Value, Value),
    /// Stage-1 output (provenance + canonical relations).
    pub prepared: PreparedComparison,
    /// Stage-2 report (explanations, evidence, score, statistics).
    pub report: ExplanationReport,
    /// Stage-3 summary of the left-side explanations.
    pub left_summary: Summary,
    /// Stage-3 summary of the right-side explanations.
    pub right_summary: Summary,
}

impl ExplainOutcome {
    /// Renders a human-readable report of the whole run.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} = {}   vs   {} = {}\n",
            self.prepared.left_canonical.query_name,
            self.results.0,
            self.prepared.right_canonical.query_name,
            self.results.1
        ));
        out.push_str(
            &self
                .report
                .explanations
                .render(&self.prepared.left_canonical, &self.prepared.right_canonical),
        );
        out.push_str(&format!("log Pr(E) = {:.3}\n", self.report.log_probability));
        if !self.left_summary.patterns.is_empty() || self.left_summary.num_targets > 0 {
            out.push_str("Left-side summary:\n");
            out.push_str(&self.left_summary.render());
        }
        if !self.right_summary.patterns.is_empty() || self.right_summary.num_targets > 0 {
            out.push_str("Right-side summary:\n");
            out.push_str(&self.right_summary.render());
        }
        out
    }
}

/// Runs the complete three-stage Explain3D pipeline on two query cases.
pub fn explain_disagreement(
    left: &QueryCase,
    right: &QueryCase,
    matches: &AttributeMatches,
    options: &ExplainOptions,
) -> Result<ExplainOutcome, RelationError> {
    // Stage 1: execute, derive provenance, canonicalise, build the mapping.
    let prepared = prepare(left, right, matches)?;
    let mapping = build_initial_mapping(
        &prepared.left_canonical,
        &prepared.right_canonical,
        matches,
        &options.mapping,
        None,
    );

    // Stage 2: optimal explanations via the MILP pipeline.
    let solver = Explain3D::new(options.pipeline.clone());
    let report =
        solver.explain(&prepared.left_canonical, &prepared.right_canonical, matches, &mapping);

    // Stage 3: summarise each side's explanation tuples.
    let left_summary = summarize_side(
        &report.explanations,
        Side::Left,
        &prepared.left_canonical,
        &options.summarizer,
    );
    let right_summary = summarize_side(
        &report.explanations,
        Side::Right,
        &prepared.right_canonical,
        &options.summarizer,
    );

    let results = prepared.results();
    Ok(ExplainOutcome { results, prepared, report, left_summary, right_summary })
}

/// Summarises the explanation tuples of one side against the rest of that
/// side's canonical relation (Stage 3).
pub fn summarize_side(
    explanations: &ExplanationSet,
    side: Side,
    relation: &CanonicalRelation,
    config: &SummarizerConfig,
) -> Summary {
    let mut target_ids = explanations.provenance_tuples(side);
    for (tuple, _) in explanations.value_changes(side) {
        target_ids.insert(tuple);
    }
    let mut targets: Vec<Row> = Vec::new();
    let mut background: Vec<Row> = Vec::new();
    for (i, t) in relation.tuples.iter().enumerate() {
        if target_ids.contains(&i) {
            targets.push(t.representative.clone());
        } else {
            background.push(t.representative.clone());
        }
    }
    summarize_targets(&relation.schema, &targets, &background, config)
}

/// Commonly used items across the whole workspace.
pub mod prelude {
    pub use crate::{explain_disagreement, summarize_side, ExplainOptions, ExplainOutcome};
    pub use explain3d_baselines::{
        ExactCoverBaseline, FormalExpBaseline, GreedyBaseline, RSwooshBaseline, ThresholdBaseline,
    };
    pub use explain3d_core::prelude::*;
    pub use explain3d_eval::{evidence_accuracy, explanation_accuracy, Accuracy, GoldStandard};
    pub use explain3d_incremental::{
        report_fingerprint, ExplainSession, RelationDelta, SessionConfig,
    };
    pub use explain3d_linkage::{BucketCalibrator, StringMetric, TupleMapping, TupleMatch};
    pub use explain3d_milp::prelude::{LpKernel, MilpConfig, SolveStatus};
    pub use explain3d_relation::prelude::*;
    pub use explain3d_service::{
        DeltaOutcome, Server, ServerConfig, ServiceConfig, ServiceError, SessionRegistry,
    };
    pub use explain3d_summarize::{SummarizerConfig, Summary};
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_relation::prelude::*;
    use explain3d_relation::row;

    #[test]
    fn end_to_end_on_the_figure_1_example() {
        let mut d1 = Database::new();
        d1.add(
            Relation::with_rows(
                "D1",
                Schema::from_pairs(&[("program", ValueType::Str), ("degree", ValueType::Str)]),
                vec![
                    row!["Accounting", "B.S."],
                    row!["CS", "B.A."],
                    row!["CS", "B.S."],
                    row!["ECE", "B.S."],
                    row!["EE", "B.S."],
                    row!["Management", "B.A."],
                    row!["Design", "B.A."],
                ],
            )
            .unwrap(),
        );
        let mut d2 = Database::new();
        d2.add(
            Relation::with_rows(
                "D2",
                Schema::from_pairs(&[("univ", ValueType::Str), ("major", ValueType::Str)]),
                vec![
                    row!["A", "Accounting"],
                    row!["A", "CSE"],
                    row!["A", "ECE"],
                    row!["A", "EE"],
                    row!["A", "Management"],
                    row!["A", "Design"],
                    row!["B", "Art"],
                ],
            )
            .unwrap(),
        );
        let q1 = Query::scan("D1").named("Q1").count("program");
        let q2 = Query::scan("D2")
            .named("Q2")
            .filter(Expr::col("univ").eq(Expr::lit("A")))
            .count("major");
        let mut options = ExplainOptions::default();
        options.mapping.metric = explain3d_linkage::StringMetric::JaroWinkler;
        options.mapping.use_blocking = false;
        let outcome = explain_disagreement(
            &QueryCase::new(d1, q1),
            &QueryCase::new(d2, q2),
            &AttributeMatches::single_equivalent("program", "major"),
            &options,
        )
        .unwrap();
        assert_eq!(outcome.results.0, Value::Int(7));
        assert_eq!(outcome.results.1, Value::Int(6));
        assert!(outcome.report.complete);
        // The CS/CSE double-count is the only discrepancy.
        assert_eq!(outcome.report.explanations.value.len(), 1);
        assert!(outcome.report.explanations.provenance.is_empty());
        let text = outcome.render();
        assert!(text.contains("Q1"));
        assert!(text.contains("↦"));
    }
}
