//! IMDb-views scenario: the same film corpus exposed through two views with
//! different schemas, lossy migration, and ~5% injected errors (Section
//! 5.1.1 of the paper). The example instantiates a few of the ten query
//! templates, explains each disagreement, and reports accuracy against the
//! tracked gold standard.
//!
//! Run with: `cargo run --release --example imdb_views`

use explain3d::datagen::{generate_views, ImdbConfig, ImdbTemplate};
use explain3d::eval::ResultTable;
use explain3d::prelude::*;

fn main() {
    let views =
        generate_views(&ImdbConfig { num_movies: 250, num_persons: 300, ..Default::default() });

    let mut table = ResultTable::new(
        "IMDb views: Explain3D per query template",
        &["template", "result v1", "result v2", "|T1|", "|T2|", "expl P", "expl R", "evid F1"],
    );

    for template in [
        ImdbTemplate::CountComedies,
        ImdbTemplate::TotalGross,
        ImdbTemplate::MaxGross,
        ImdbTemplate::ActorsInShortMovies,
        ImdbTemplate::ActressesNotInGenre,
    ] {
        let param = views.default_param(template, 25);
        let case = views.case(template, &param);
        let (r1, r2) = case.prepared.results();

        let report = Explain3D::new(Explain3DConfig::batched(200)).explain(
            &case.prepared.left_canonical,
            &case.prepared.right_canonical,
            &case.attribute_matches,
            &case.initial_mapping,
        );
        let gold = GoldStandard::new(case.gold.clone());
        let expl = explanation_accuracy(&report.explanations, &gold);
        let evid = evidence_accuracy(&report.explanations.evidence, &gold);

        table.add_row(vec![
            template.label().to_string(),
            r1.to_string(),
            r2.to_string(),
            case.prepared.left_canonical.len().to_string(),
            case.prepared.right_canonical.len().to_string(),
            format!("{:.2}", expl.precision),
            format!("{:.2}", expl.recall),
            format!("{:.2}", evid.f_measure),
        ]);
    }

    println!("{table}");
    println!("(results differ between the views because view 1 lost data during");
    println!(" migration and both views carry ~5% injected cell errors)");
}
