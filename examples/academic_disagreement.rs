//! Academic-catalog scenario (Example 1 of the paper): a campus catalog
//! counts its undergraduate majors while an NCES-style statistics table sums
//! per-program bachelor-degree counts, and the two answers differ.
//!
//! The example generates a UMass-sized catalog pair, runs Explain3D and the
//! baseline methods, and prints their explanation accuracy against the gold
//! standard along with the Stage-3 summary of the discrepancies.
//!
//! Run with: `cargo run --release --example academic_disagreement`

use explain3d::datagen::{generate_academic, AcademicConfig};
use explain3d::eval::ResultTable;
use explain3d::prelude::*;

fn main() {
    let case = generate_academic(&AcademicConfig::umass());
    let (r1, r2) = case.prepared.results();
    println!("{}", case.name);
    println!("  {}  = {}", case.left.query, r1);
    println!("  {}  = {}", case.right.query, r2);
    println!("  attribute matches: {}", case.attribute_matches);
    println!();

    let gold = GoldStandard::new(case.gold.clone());
    let left = &case.prepared.left_canonical;
    let right = &case.prepared.right_canonical;

    let mut table = ResultTable::new(
        "Explanation accuracy (campus vs NCES)",
        &["method", "precision", "recall", "f-measure"],
    );
    let mut add = |name: &str, explanations: &ExplanationSet| {
        let acc = explanation_accuracy(explanations, &gold);
        table.add_row(vec![
            name.to_string(),
            format!("{:.3}", acc.precision),
            format!("{:.3}", acc.recall),
            format!("{:.3}", acc.f_measure),
        ]);
    };

    // Explain3D (smart partitioning, batch 200).
    let report = Explain3D::new(Explain3DConfig::batched(200)).explain(
        left,
        right,
        &case.attribute_matches,
        &case.initial_mapping,
    );
    add("EXPLAIN3D", &report.explanations);

    // Baselines.
    let (greedy, _) = GreedyBaseline::default().explain(
        left,
        right,
        &case.attribute_matches,
        &case.initial_mapping,
    );
    add("GREEDY", &greedy);
    let threshold = ThresholdBaseline::default().explain(left, right, &case.initial_mapping);
    add("THRESHOLD-0.9", &threshold);
    let (rswoosh, _) = RSwooshBaseline::default().explain(left, right);
    add("RSWOOSH", &rswoosh);
    let (exact, _) = ExactCoverBaseline::default().explain(left, right, &case.initial_mapping);
    add("EXACTCOVER", &exact);
    let formal = FormalExpBaseline::default().explain(left, right);
    add("FORMALEXP-Top15", &formal);

    println!("{table}");

    // Stage 3: summarise Explain3D's explanations on the campus side.
    let summary =
        summarize_side(&report.explanations, Side::Left, left, &SummarizerConfig::default());
    println!("Campus-side summary of the discrepancies:");
    println!("{}", summary.render());
}
