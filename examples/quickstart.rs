//! Quickstart: explain the disagreement of Figure 1 / Example 2 of the paper.
//!
//! Two catalogs list the undergraduate programs of the same university with
//! different schemas; counting them yields 7 vs 6. Explain3D finds that the
//! CS program is counted twice on one side (B.S. and B.A. degrees) but only
//! once on the other.
//!
//! Run with: `cargo run --example quickstart`

use explain3d::prelude::*;

fn main() {
    // Dataset D1: one row per (program, degree).
    let mut d1 = Database::new();
    let mut programs = Relation::new(
        "D1",
        Schema::from_pairs(&[("program", ValueType::Str), ("degree", ValueType::Str)]),
    );
    for (p, d) in [
        ("Accounting", "B.S."),
        ("CS", "B.A."),
        ("CS", "B.S."),
        ("ECE", "B.S."),
        ("EE", "B.S."),
        ("Management", "B.A."),
        ("Design", "B.A."),
    ] {
        programs.insert_values([p, d]).expect("row matches schema");
    }
    d1.add(programs);

    // Dataset D2: majors of several universities.
    let mut d2 = Database::new();
    let mut majors = Relation::new(
        "D2",
        Schema::from_pairs(&[("univ", ValueType::Str), ("major", ValueType::Str)]),
    );
    for (u, m) in [
        ("A", "Accounting"),
        ("A", "CSE"),
        ("A", "ECE"),
        ("A", "EE"),
        ("A", "Management"),
        ("A", "Design"),
        ("B", "Art"),
    ] {
        majors.insert_values([u, m]).expect("row matches schema");
    }
    d2.add(majors);

    // The two semantically similar queries.
    let q1 = Query::scan("D1").named("Q1").count("program");
    let q2 =
        Query::scan("D2").named("Q2").filter(Expr::col("univ").eq(Expr::lit("A"))).count("major");

    // Attribute match: (program) ≡ (major).
    let matches = AttributeMatches::single_equivalent("program", "major");

    // Short names like "CS"/"CSE" need a character-level similarity metric.
    let mut options = ExplainOptions::default();
    options.mapping.metric = StringMetric::JaroWinkler;
    options.mapping.use_blocking = false;

    let outcome =
        explain_disagreement(&QueryCase::new(d1, q1), &QueryCase::new(d2, q2), &matches, &options)
            .expect("queries are comparable");

    println!("{}", outcome.render());
    println!("evidence mapping:");
    for m in outcome.report.explanations.evidence.matches() {
        let l = &outcome.prepared.left_canonical.tuples[m.left];
        let r = &outcome.prepared.right_canonical.tuples[m.right];
        println!("  {} ↔ {} (p = {:.2})", l.key_text(), r.key_text(), m.prob);
    }
}
