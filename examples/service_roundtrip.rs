//! The session registry as a library: create / explain / delta / report
//! entirely in-process — no sockets — showing that the serving subsystem is
//! usable without `explain3d-serve`.
//!
//! Two program catalogs disagree; we register them as a named session,
//! explain, then stream two edits at the session and re-explain
//! incrementally. The final report is verified byte-identical (by
//! fingerprint) to a from-scratch session on the post-delta relations —
//! the serving invariant in miniature.
//!
//! Run with: `cargo run --example service_roundtrip`

use explain3d::prelude::*;
use explain3d::service::registry::ServiceConfig;
use explain3d::service::wire;

fn main() {
    let registry = SessionRegistry::new(ServiceConfig::default());

    // Relation uploads use the wire shapes even in-process, so the same
    // JSON works over HTTP unchanged.
    let create_body = r#"{
      "left":  {"name": "programs",
                "columns": [["name", "str"]],
                "key": ["name"],
                "tuples": [{"values": ["Accounting"]},
                           {"values": ["CS"], "impact": 2.0},
                           {"values": ["Design"]},
                           {"values": ["Management"]}]},
      "right": {"name": "majors",
                "columns": [["major", "str"]],
                "key": ["major"],
                "tuples": [{"values": ["Accounting"]},
                           {"values": ["CS"]},
                           {"values": ["Design"]}]},
      "match": {"left": "name", "right": "major"}
    }"#;
    let create = wire::parse_create(create_body).expect("create body parses");
    registry.create("catalogs", create).expect("fresh name");

    let first = registry.explain("catalogs", None).expect("session exists");
    println!(
        "cold explain: {} provenance + {} value explanations, complete: {}",
        first.explanations.provenance.len(),
        first.explanations.value.len(),
        first.complete
    );

    // The majors catalog catches up: Management appears, and CS is now
    // double-counted there too.
    let (left, right) = registry.shapes("catalogs").expect("session exists");
    let delta_body = r#"{"ops": [
        {"op": "insert", "side": "right", "tuple": {"values": ["Management"]}},
        {"op": "update", "side": "right", "index": 1,
         "tuple": {"values": ["CS"], "impact": 2.0}}
    ]}"#;
    let parsed = wire::parse_delta(delta_body, &left, &right).expect("delta body parses");
    let outcome = registry.delta("catalogs", parsed.delta, parsed.deadline).expect("in range");
    println!(
        "after delta: {} explanations left, component cache hits: {}",
        outcome.report.explanations.len(),
        outcome.report.stats.delta.component_cache_hits
    );

    // The stored report is the delta's report.
    let stored = registry.report("catalogs").expect("explained");
    assert_eq!(report_fingerprint(&stored), report_fingerprint(&outcome.report));

    // Byte-identity: a from-scratch session over the post-delta relations
    // must fingerprint identically.
    let fresh_registry = SessionRegistry::new(ServiceConfig::default());
    let fresh_body = r#"{
      "left":  {"name": "programs",
                "columns": [["name", "str"]],
                "key": ["name"],
                "tuples": [{"values": ["Accounting"]},
                           {"values": ["CS"], "impact": 2.0},
                           {"values": ["Design"]},
                           {"values": ["Management"]}]},
      "right": {"name": "majors",
                "columns": [["major", "str"]],
                "key": ["major"],
                "tuples": [{"values": ["Accounting"]},
                           {"values": ["CS"], "impact": 2.0},
                           {"values": ["Design"]},
                           {"values": ["Management"]}]},
      "match": {"left": "name", "right": "major"}
    }"#;
    let fresh = wire::parse_create(fresh_body).expect("fresh body parses");
    fresh_registry.create("catalogs", fresh).expect("fresh name");
    let cold = fresh_registry.explain("catalogs", None).expect("session exists");
    assert_eq!(
        report_fingerprint(&outcome.report),
        report_fingerprint(&cold),
        "incremental service report must be byte-identical to a cold run"
    );
    println!("byte-identity vs from-scratch session: ok");

    registry.drop_session("catalogs").expect("still present");
    let stats = registry.stats();
    println!(
        "registry stats: {} create, {} explain, {} delta, {} report, {} drop",
        stats.creates, stats.explains, stats.deltas_applied, stats.reports, stats.drops
    );
}
