//! Synthetic scaling scenario (Section 5.3): generate `Table(id, match_attr,
//! val)` pairs with a controlled difference ratio and compare the basic
//! algorithm (NOOPT) against the smart-partitioning optimiser (BATCH-k) on
//! both solve time and accuracy.
//!
//! Run with: `cargo run --release --example synthetic_scaling`

use explain3d::datagen::{generate_synthetic, SyntheticConfig};
use explain3d::eval::ResultTable;
use explain3d::prelude::*;
use std::time::Instant;

fn main() {
    let mut table = ResultTable::new(
        "Synthetic data: NoOpt vs smart partitioning",
        &["n", "method", "sub-problems", "solve time (s)", "expl F1", "evid F1"],
    );

    for &n in &[100usize, 300, 600] {
        let case = generate_synthetic(&SyntheticConfig::new(n, 0.2, 1000));
        let gold = GoldStandard::new(case.gold.clone());

        for (label, config) in
            [("NoOpt", Explain3DConfig::no_opt()), ("Batch-100", Explain3DConfig::batched(100))]
        {
            let solver = Explain3D::new(config);
            let start = Instant::now();
            let report = solver.explain(
                &case.prepared.left_canonical,
                &case.prepared.right_canonical,
                &case.attribute_matches,
                &case.initial_mapping,
            );
            let elapsed = start.elapsed();
            let expl = explanation_accuracy(&report.explanations, &gold);
            let evid = evidence_accuracy(&report.explanations.evidence, &gold);
            table.add_row(vec![
                n.to_string(),
                label.to_string(),
                report.stats.num_subproblems.to_string(),
                format!("{:.3}", elapsed.as_secs_f64()),
                format!("{:.3}", expl.f_measure),
                format!("{:.3}", evid.f_measure),
            ]);
        }
    }

    println!("{table}");
    println!("Partitioning bounds each MILP's size, so solve time grows roughly");
    println!("linearly with n while accuracy is essentially unchanged.");
}
