//! The EXACTCOVER baseline: adapt the integer-programming formulation of the
//! Exact Cover problem (the source of the NP-completeness reduction) to the
//! EXP-3D setting (Section 5.1.3).
//!
//! Left canonical tuples play the role of elements and right canonical tuples
//! the role of sets; an element is covered by a set when an initial tuple
//! match connects them. The optimisation variant maximises the total number
//! of covered elements and selected sets, subject to each element being
//! covered at most once. Selected (set, element) incidences become the
//! evidence mapping; explanations are then derived as for the other
//! evidence-based baselines.

use crate::common::explanations_from_evidence;
use explain3d_core::prelude::{CanonicalRelation, ExplanationSet};
use explain3d_linkage::{TupleMapping, TupleMatch};
use explain3d_milp::prelude::*;

/// The EXACTCOVER baseline.
#[derive(Debug, Clone, Default)]
pub struct ExactCoverBaseline {
    /// MILP solver configuration.
    pub milp: MilpConfig,
}

impl ExactCoverBaseline {
    /// Runs the baseline.
    pub fn explain(
        &self,
        left: &CanonicalRelation,
        right: &CanonicalRelation,
        mapping: &TupleMapping,
    ) -> (ExplanationSet, TupleMapping) {
        let mut model = Model::new();

        // s_j: set (right tuple) selected; e_i: element (left tuple) covered.
        let set_vars: Vec<VarId> =
            (0..right.len()).map(|j| model.add_binary(format!("s{j}"))).collect();
        let elem_vars: Vec<VarId> =
            (0..left.len()).map(|i| model.add_binary(format!("e{i}"))).collect();

        // Coverage structure from the initial mapping.
        let mut covers: Vec<Vec<usize>> = vec![Vec::new(); left.len()]; // element -> sets
        for m in mapping.matches() {
            if m.left < left.len() && m.right < right.len() {
                covers[m.left].push(m.right);
            }
        }

        let mut objective = LinExpr::zero();
        for &s in &set_vars {
            objective.add_term(s, 1.0);
        }
        for &e in &elem_vars {
            objective.add_term(e, 1.0);
        }

        for (i, sets) in covers.iter().enumerate() {
            // Each element is covered at most once, and only counts as
            // covered when one of its sets is selected.
            let mut sum = LinExpr::zero();
            for &j in sets {
                sum.add_term(set_vars[j], 1.0);
            }
            model.add_le(format!("at_most_once_{i}"), sum.clone(), 1.0);
            model.add_le(format!("covered_{i}"), LinExpr::term(elem_vars[i], 1.0) - sum, 0.0);
        }
        model.maximize(objective);

        let solution = explain3d_milp::branch_bound::solve(&model, &self.milp);

        let mut evidence = TupleMapping::new();
        if solution.status.has_solution() {
            for (i, sets) in covers.iter().enumerate() {
                if !solution.is_set(elem_vars[i]) {
                    continue;
                }
                // Attach the element to the first selected covering set.
                if let Some(&j) = sets.iter().find(|&&j| solution.is_set(set_vars[j])) {
                    let prob = mapping.prob(i, j).unwrap_or(1.0);
                    evidence.push(TupleMatch::new(i, j, prob));
                }
            }
        }
        let explanations = explanations_from_evidence(left, right, &evidence);
        (explanations, evidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_core::prelude::{CanonicalTuple, Side};
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn canon(entries: &[(&str, f64)]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: "Q".to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: entries
                .iter()
                .enumerate()
                .map(|(i, (k, imp))| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: *imp,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    #[test]
    fn covers_elements_when_possible() {
        let t1 = canon(&[("A", 1.0), ("B", 1.0)]);
        let t2 = canon(&[("A", 1.0), ("B", 1.0)]);
        let mapping: TupleMapping =
            vec![TupleMatch::new(0, 0, 0.9), TupleMatch::new(1, 1, 0.9)].into_iter().collect();
        let (e, evidence) = ExactCoverBaseline::default().explain(&t1, &t2, &mapping);
        assert_eq!(evidence.len(), 2);
        assert!(e.is_empty());
    }

    #[test]
    fn ignores_impacts_entirely() {
        // Exact Cover does not look at impacts, so a value mismatch is only
        // discovered indirectly through the shared evidence-to-explanation
        // translation, and coverage decisions may be arbitrary.
        let t1 = canon(&[("CS", 2.0)]);
        let t2 = canon(&[("CSE", 1.0)]);
        let mapping: TupleMapping = vec![TupleMatch::new(0, 0, 0.7)].into_iter().collect();
        let (e, evidence) = ExactCoverBaseline::default().explain(&t1, &t2, &mapping);
        assert!(evidence.contains_pair(0, 0));
        assert_eq!(e.value.len(), 1);
    }

    #[test]
    fn uncoverable_elements_become_explanations() {
        let t1 = canon(&[("A", 1.0), ("Orphan", 1.0)]);
        let t2 = canon(&[("A", 1.0)]);
        let mapping: TupleMapping = vec![TupleMatch::new(0, 0, 0.9)].into_iter().collect();
        let (e, _) = ExactCoverBaseline::default().explain(&t1, &t2, &mapping);
        assert!(e.provenance_tuples(Side::Left).contains(&1));
    }

    #[test]
    fn each_element_covered_at_most_once() {
        let t1 = canon(&[("X", 1.0)]);
        let t2 = canon(&[("X1", 1.0), ("X2", 1.0)]);
        let mapping: TupleMapping =
            vec![TupleMatch::new(0, 0, 0.8), TupleMatch::new(0, 1, 0.8)].into_iter().collect();
        let (_, evidence) = ExactCoverBaseline::default().explain(&t1, &t2, &mapping);
        assert!(evidence.len() <= 1);
    }
}
