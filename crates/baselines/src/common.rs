//! Shared helpers for the baseline methods.
//!
//! The record-linkage style baselines (RSWOOSH, THRESHOLD, GREEDY) first
//! produce an evidence mapping and then translate it into explanations the
//! same way (Section 5.1.3): tuples without a match become provenance-based
//! explanations, and matched groups with unequal impacts become value-based
//! explanations.

use explain3d_core::prelude::{CanonicalRelation, ExplanationSet, Side};
use explain3d_linkage::TupleMapping;
use std::collections::BTreeMap;

/// Derives explanations from an evidence mapping exactly as the paper's
/// baselines do: unmatched tuples are provenance-based explanations; matched
/// groups (connected components of the evidence) whose left/right impact
/// totals differ get a value-based explanation on the right side.
pub fn explanations_from_evidence(
    left: &CanonicalRelation,
    right: &CanonicalRelation,
    evidence: &TupleMapping,
) -> ExplanationSet {
    let mut out = ExplanationSet::new();
    for m in evidence.matches() {
        out.evidence.push(*m);
    }

    let matched_left = evidence.covered_left();
    let matched_right = evidence.covered_right();

    for i in 0..left.len() {
        if !matched_left.contains(&i) {
            out.add_provenance(Side::Left, i);
        }
    }
    for j in 0..right.len() {
        if !matched_right.contains(&j) {
            out.add_provenance(Side::Right, j);
        }
    }

    // Impact comparison per connected component of the evidence graph.
    let mut dsu = explain3d_partition_dsu(left.len() + right.len());
    for m in evidence.matches() {
        dsu.union(m.left, left.len() + m.right);
    }
    #[derive(Default)]
    struct Comp {
        left_total: f64,
        right_total: f64,
        right_members: Vec<usize>,
    }
    let mut comps: BTreeMap<usize, Comp> = BTreeMap::new();
    for &i in &matched_left {
        let root = dsu.find(i);
        comps.entry(root).or_default().left_total += left.tuples[i].impact;
    }
    for &j in &matched_right {
        let root = dsu.find(left.len() + j);
        let c = comps.entry(root).or_default();
        c.right_total += right.tuples[j].impact;
        c.right_members.push(j);
    }
    for comp in comps.values() {
        let diff = comp.left_total - comp.right_total;
        if diff.abs() > 1e-9 {
            if let Some(&j) = comp.right_members.first() {
                let old = right.tuples[j].impact;
                out.add_value(Side::Right, j, old, old + diff);
            }
        }
    }
    out.normalise();
    out
}

/// Tiny internal union-find (avoids a dependency on the partition crate for
/// the baselines).
struct Dsu {
    parent: Vec<usize>,
}

fn explain3d_partition_dsu(n: usize) -> Dsu {
    Dsu { parent: (0..n).collect() }
}

impl Dsu {
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_core::prelude::CanonicalTuple;
    use explain3d_linkage::TupleMatch;
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn canon(entries: &[(&str, f64)]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: "Q".to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: entries
                .iter()
                .enumerate()
                .map(|(i, (k, imp))| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: *imp,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    #[test]
    fn unmatched_tuples_become_provenance_explanations() {
        let t1 = canon(&[("A", 1.0), ("B", 1.0), ("C", 1.0)]);
        let t2 = canon(&[("A", 1.0), ("D", 2.0)]);
        let evidence: TupleMapping = vec![TupleMatch::new(0, 0, 1.0)].into_iter().collect();
        let e = explanations_from_evidence(&t1, &t2, &evidence);
        assert_eq!(e.provenance_tuples(Side::Left).len(), 2);
        assert_eq!(e.provenance_tuples(Side::Right).len(), 1);
        assert!(e.value.is_empty());
        assert_eq!(e.evidence.len(), 1);
    }

    #[test]
    fn impact_mismatch_becomes_value_explanation() {
        let t1 = canon(&[("CS", 2.0)]);
        let t2 = canon(&[("CSE", 1.0)]);
        let evidence: TupleMapping = vec![TupleMatch::new(0, 0, 1.0)].into_iter().collect();
        let e = explanations_from_evidence(&t1, &t2, &evidence);
        assert_eq!(e.value.len(), 1);
        assert_eq!(e.value[0].side, Side::Right);
        assert_eq!(e.value[0].new_impact, 2.0);
        assert!(e.provenance.is_empty());
    }

    #[test]
    fn many_to_one_components_compare_totals() {
        let t1 = canon(&[("ECE", 1.0), ("EE", 1.0)]);
        let t2 = canon(&[("Engineering", 2.0)]);
        let evidence: TupleMapping =
            vec![TupleMatch::new(0, 0, 1.0), TupleMatch::new(1, 0, 1.0)].into_iter().collect();
        let e = explanations_from_evidence(&t1, &t2, &evidence);
        // 1 + 1 = 2: balanced, no explanations at all.
        assert!(e.is_empty());
    }
}
