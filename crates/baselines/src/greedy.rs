//! The GREEDY baseline: build the evidence mapping greedily by descending
//! match probability, accepting a match only if it keeps the mapping valid
//! and improves Explain3D's objective value (Section 5.1.3).

use crate::common::explanations_from_evidence;
use explain3d_core::prelude::{
    log_probability, AttributeMatches, CanonicalRelation, ExplanationSet, ProbabilityParams,
};
use explain3d_linkage::{TupleMapping, TupleMatch};
use std::collections::HashMap;

/// The GREEDY baseline.
#[derive(Debug, Clone, Default)]
pub struct GreedyBaseline {
    /// Probability-model parameters shared with Explain3D.
    pub params: ProbabilityParams,
}

impl GreedyBaseline {
    /// Creates the baseline with the given parameters.
    pub fn new(params: ProbabilityParams) -> Self {
        GreedyBaseline { params }
    }

    /// Runs the greedy evidence construction and derives explanations.
    pub fn explain(
        &self,
        left: &CanonicalRelation,
        right: &CanonicalRelation,
        matches: &AttributeMatches,
        mapping: &TupleMapping,
    ) -> (ExplanationSet, TupleMapping) {
        let relation = matches.mapping_relation();
        let mut evidence = TupleMapping::new();
        let mut left_degree: HashMap<usize, usize> = HashMap::new();
        let mut right_degree: HashMap<usize, usize> = HashMap::new();

        let mut current = explanations_from_evidence(left, right, &evidence);
        let mut current_score = log_probability(&current, left, right, mapping, &self.params);

        for m in mapping.sorted_by_prob_desc() {
            // Validity check (Definition 3.2).
            if relation.left_degree_limited() && left_degree.get(&m.left).copied().unwrap_or(0) >= 1
            {
                continue;
            }
            if relation.right_degree_limited()
                && right_degree.get(&m.right).copied().unwrap_or(0) >= 1
            {
                continue;
            }
            // Tentatively add the match and keep it only if the objective
            // improves.
            let mut candidate_evidence = evidence.clone();
            candidate_evidence.push(TupleMatch::new(m.left, m.right, m.prob));
            let candidate = explanations_from_evidence(left, right, &candidate_evidence);
            let score = log_probability(&candidate, left, right, mapping, &self.params);
            if score > current_score {
                evidence = candidate_evidence;
                current = candidate;
                current_score = score;
                *left_degree.entry(m.left).or_insert(0) += 1;
                *right_degree.entry(m.right).or_insert(0) += 1;
            }
        }
        (current, evidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_core::prelude::CanonicalTuple;
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn canon(entries: &[(&str, f64)]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: "Q".to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: entries
                .iter()
                .enumerate()
                .map(|(i, (k, imp))| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: *imp,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    fn attr() -> AttributeMatches {
        AttributeMatches::single_equivalent("k", "k")
    }

    #[test]
    fn greedy_matches_straightforward_pairs() {
        let t1 = canon(&[("A", 1.0), ("B", 1.0)]);
        let t2 = canon(&[("A", 1.0), ("B", 1.0)]);
        let mapping: TupleMapping =
            vec![TupleMatch::new(0, 0, 0.9), TupleMatch::new(1, 1, 0.9)].into_iter().collect();
        let (e, evidence) = GreedyBaseline::default().explain(&t1, &t2, &attr(), &mapping);
        assert_eq!(evidence.len(), 2);
        assert!(e.is_empty());
    }

    #[test]
    fn greedy_falls_into_the_local_optimum_of_section_5_2() {
        // Matches: (A,A',0.8), (B,B',0.8), (A,B',0.9), (B,A',0.5).
        // Greedy takes (A,B') first (highest probability), which then blocks
        // (A,A') and (B,B') under the ≡ cardinality; Explain3D avoids this.
        let t1 = canon(&[("A", 1.0), ("B", 1.0)]);
        let t2 = canon(&[("A'", 1.0), ("B'", 1.0)]);
        let mapping: TupleMapping = vec![
            TupleMatch::new(0, 0, 0.8),
            TupleMatch::new(1, 1, 0.8),
            TupleMatch::new(0, 1, 0.9),
            TupleMatch::new(1, 0, 0.5),
        ]
        .into_iter()
        .collect();
        let (e, evidence) = GreedyBaseline::default().explain(&t1, &t2, &attr(), &mapping);
        assert!(evidence.contains_pair(0, 1), "greedy should grab the 0.9 match first");
        assert!(!evidence.contains_pair(0, 0));
        // It still pairs B with A' (the only remaining valid option that
        // improves the objective), or leaves them unmatched — either way the
        // result differs from the gold one-to-one mapping.
        assert!(!e.evidence.contains_pair(1, 1));
    }

    #[test]
    fn degree_constraints_are_respected() {
        let t1 = canon(&[("X", 1.0)]);
        let t2 = canon(&[("X1", 1.0), ("X2", 1.0)]);
        let mapping: TupleMapping =
            vec![TupleMatch::new(0, 0, 0.9), TupleMatch::new(0, 1, 0.85)].into_iter().collect();
        let (_, evidence) = GreedyBaseline::default().explain(&t1, &t2, &attr(), &mapping);
        // Under ≡ the left tuple may only be matched once.
        assert_eq!(evidence.len(), 1);
        assert!(evidence.contains_pair(0, 0));
    }

    #[test]
    fn containment_allows_many_to_one_matches() {
        let t1 = canon(&[("ECE", 1.0), ("EE", 1.0)]);
        let t2 = canon(&[("Engineering", 2.0)]);
        let mapping: TupleMapping =
            vec![TupleMatch::new(0, 0, 0.8), TupleMatch::new(1, 0, 0.8)].into_iter().collect();
        let matches = AttributeMatches::single_less_general("k", "k");
        let (e, evidence) = GreedyBaseline::default().explain(&t1, &t2, &matches, &mapping);
        assert_eq!(evidence.len(), 2);
        assert!(e.is_empty());
    }
}
