//! The FORMALEXP baseline: a single-dataset explanation framework in the
//! style of Roy & Suciu (SIGMOD 2014) / Scorpion, adapted to the disjoint
//! setting as described in Section 5.1.3.
//!
//! The adaptation first compares the two query results, then asks, for each
//! dataset separately, "why is this result high (resp. low)?". Candidate
//! explanations are conjunctive predicates over the provenance attributes;
//! each predicate is scored by how much removing the tuples it covers moves
//! that query's result toward the other query's result (the intervention
//! effect). The tuples covered by the top-k predicates are reported as
//! provenance-based explanations. No evidence mapping is produced.

use explain3d_core::prelude::{CanonicalRelation, ExplanationSet, Side};
use explain3d_relation::prelude::Value;
use std::collections::BTreeMap;

/// A candidate predicate of the single-dataset explanation framework.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// The attribute the predicate constrains.
    pub attribute: String,
    /// The value the attribute must equal.
    pub value: Value,
    /// The intervention score of the predicate (higher = better explanation).
    pub score: f64,
    /// Canonical tuples covered by the predicate.
    pub covered: Vec<usize>,
}

/// The FORMALEXP-TopK baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormalExpBaseline {
    /// Number of top-ranked predicates to report (the paper uses k = 15).
    pub top_k: usize,
}

impl Default for FormalExpBaseline {
    fn default() -> Self {
        FormalExpBaseline { top_k: 15 }
    }
}

impl FormalExpBaseline {
    /// Creates the baseline with a custom `k`.
    pub fn new(top_k: usize) -> Self {
        FormalExpBaseline { top_k }
    }

    /// Ranks candidate predicates for one relation: how much does removing
    /// the covered tuples move `own_total` toward `other_total`?
    pub fn rank_predicates(
        &self,
        relation: &CanonicalRelation,
        own_total: f64,
        other_total: f64,
    ) -> Vec<Predicate> {
        // Candidate predicates: attribute = value over every provenance
        // attribute of the canonical tuples' representative rows.
        let mut by_pred: BTreeMap<(String, String), (Value, Vec<usize>, f64)> = BTreeMap::new();
        for (idx, t) in relation.tuples.iter().enumerate() {
            for (ci, value) in t.representative.values().iter().enumerate() {
                if value.is_null() {
                    continue;
                }
                let Some(col) = relation.schema.column(ci) else { continue };
                let key = (col.name.clone(), value.to_string().to_ascii_lowercase());
                let entry = by_pred.entry(key).or_insert_with(|| (value.clone(), Vec::new(), 0.0));
                entry.1.push(idx);
                entry.2 += t.impact;
            }
        }
        let target_gap = own_total - other_total;
        let mut predicates: Vec<(usize, Predicate)> = by_pred
            .into_iter()
            .map(|((attribute, _), (value, covered, removed_impact))| {
                // Removing the covered tuples changes the result by
                // -removed_impact; the score is the reduction in |gap|.
                let new_gap = target_gap - removed_impact;
                let score = target_gap.abs() - new_gap.abs();
                Predicate { attribute, value, score, covered }
            })
            .enumerate()
            .collect();
        // Descending score under `f64::total_cmp`, which stays a total order
        // when impacts produce NaN scores (a positive NaN ranks first but is
        // never *selected* — selection requires `score > 0.0`). Ties break
        // by fewest covered tuples, then by the BTreeMap enumeration index
        // (attribute, value) so equal-scoring predicates rank reproducibly.
        predicates.sort_by(|(ia, a), (ib, b)| {
            b.score.total_cmp(&a.score).then(a.covered.len().cmp(&b.covered.len())).then(ia.cmp(ib))
        });
        predicates.into_iter().map(|(_, p)| p).collect()
    }

    /// Runs the baseline on both relations, producing provenance-based
    /// explanations for the tuples covered by the top-k predicates on each
    /// side (only predicates with positive intervention scores are used).
    pub fn explain(&self, left: &CanonicalRelation, right: &CanonicalRelation) -> ExplanationSet {
        let left_total = left.total_impact();
        let right_total = right.total_impact();
        let mut out = ExplanationSet::new();

        let mut apply = |relation: &CanonicalRelation, side: Side, own: f64, other: f64| {
            let predicates = self.rank_predicates(relation, own, other);
            let mut marked: Vec<bool> = vec![false; relation.len()];
            for p in predicates.iter().filter(|p| p.score > 0.0).take(self.top_k) {
                for &idx in &p.covered {
                    marked[idx] = true;
                }
            }
            for (idx, &m) in marked.iter().enumerate() {
                if m {
                    out.add_provenance(side, idx);
                }
            }
        };
        // Ask "why high" on the larger side and "why low" on the smaller one;
        // both reduce to the same intervention scoring against the other
        // result.
        apply(left, Side::Left, left_total, right_total);
        apply(right, Side::Right, right_total, left_total);
        out.normalise();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_core::prelude::CanonicalTuple;
    use explain3d_relation::prelude::{Row, Schema, ValueType};

    fn canon(rows: &[(&str, &str, f64)]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: "Q".to_string(),
            schema: Schema::from_pairs(&[("program", ValueType::Str), ("degree", ValueType::Str)]),
            key_attrs: vec!["program".to_string()],
            tuples: rows
                .iter()
                .enumerate()
                .map(|(i, (prog, deg, imp))| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*prog)],
                    impact: *imp,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*prog), Value::str(*deg)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    #[test]
    fn predicates_that_close_the_gap_rank_first() {
        // Left total 6, right total 4: removing the two associate-degree
        // programs (impact 2) on the left closes the gap exactly.
        let left = canon(&[
            ("Turf", "Associate", 1.0),
            ("Equine", "Associate", 1.0),
            ("CS", "B.S.", 2.0),
            ("EE", "B.S.", 2.0),
        ]);
        let fx = FormalExpBaseline::default();
        let preds = fx.rank_predicates(&left, 6.0, 4.0);
        assert!(!preds.is_empty());
        // The top predicate closes the 2.0 gap exactly.
        assert!(preds[0].score >= 2.0 - 1e-9);
        // The Associate-degree predicate is among the gap-closing ones, while
        // the B.S. predicate (which overshoots badly) scores worse.
        let assoc = preds.iter().find(|p| p.value == Value::str("Associate")).unwrap();
        let bs = preds.iter().find(|p| p.value == Value::str("B.S.")).unwrap();
        assert!(assoc.score >= 2.0 - 1e-9);
        assert!(assoc.score > bs.score);
    }

    #[test]
    fn top_k_limits_reported_tuples() {
        let left = canon(&[("A", "d1", 1.0), ("B", "d2", 1.0), ("C", "d3", 1.0), ("D", "d4", 1.0)]);
        let right = canon(&[("A", "d1", 1.0)]);
        let all = FormalExpBaseline::new(50).explain(&left, &right);
        let one = FormalExpBaseline::new(1).explain(&left, &right);
        assert!(one.provenance.len() <= all.provenance.len());
        assert!(!all.provenance.is_empty());
        // FORMALEXP produces no evidence mapping at all.
        assert!(all.evidence.is_empty());
        assert!(all.value.is_empty());
    }

    #[test]
    fn balanced_results_produce_no_explanations() {
        let left = canon(&[("A", "d", 2.0)]);
        let right = canon(&[("A", "d", 2.0)]);
        let e = FormalExpBaseline::default().explain(&left, &right);
        assert!(e.is_empty());
    }

    #[test]
    fn nan_impacts_rank_deterministically_and_are_never_selected() {
        // A NaN impact poisons every score it touches. The ranking must
        // stay a total order (no comparator panic, same permutation every
        // time) and NaN-scored predicates must never be *selected*, since
        // selection requires `score > 0.0`.
        let left = canon(&[
            ("Poisoned", "Associate", f64::NAN),
            ("Turf", "Associate", 1.0),
            ("CS", "B.S.", 2.0),
        ]);
        let fx = FormalExpBaseline::default();
        // NaN != NaN under PartialEq, so compare score *bit patterns*.
        let fingerprint = |preds: &[Predicate]| -> Vec<(String, String, u64, Vec<usize>)> {
            preds
                .iter()
                .map(|p| {
                    (p.attribute.clone(), p.value.to_string(), p.score.to_bits(), p.covered.clone())
                })
                .collect()
        };
        let first = fingerprint(&fx.rank_predicates(&left, 6.0, 4.0));
        for _ in 0..5 {
            assert_eq!(first, fingerprint(&fx.rank_predicates(&left, 6.0, 4.0)));
        }
        // The "Associate" predicate covers the NaN tuple, so its score is
        // NaN; it must not contribute provenance explanations.
        let right = canon(&[("CS", "B.S.", 2.0)]);
        let e = fx.explain(&left, &right);
        assert!(e.provenance.iter().all(|p| p.tuple != 0), "NaN-scored predicate selected: {e:?}");
    }

    #[test]
    fn tied_scores_break_by_coverage_then_enumeration_order() {
        // Both single-tuple predicates close the 1.0 gap equally; the
        // (attribute, value) enumeration order must decide reproducibly.
        let left = canon(&[("Alpha", "d1", 1.0), ("Beta", "d2", 1.0)]);
        let preds = FormalExpBaseline::default().rank_predicates(&left, 2.0, 1.0);
        let tied: Vec<&Predicate> =
            preds.iter().filter(|p| (p.score - 1.0).abs() < 1e-9 && p.covered.len() == 1).collect();
        assert!(tied.len() >= 2);
        // program=Alpha sorts before program=Beta in BTreeMap order; degree
        // predicates (attribute "degree") come before "program" ones.
        let names: Vec<String> =
            tied.iter().map(|p| format!("{}={}", p.attribute, p.value)).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "tie-break does not follow enumeration order");
    }

    #[test]
    fn over_removal_is_penalised() {
        // Removing a predicate covering far more impact than the gap should
        // score worse than one matching the gap.
        let left = canon(&[("Huge", "x", 10.0), ("Small", "y", 1.0)]);
        let fx = FormalExpBaseline::default();
        let preds = fx.rank_predicates(&left, 11.0, 10.0);
        let huge = preds.iter().find(|p| p.value == Value::str("Huge")).unwrap();
        let small = preds.iter().find(|p| p.value == Value::str("Small")).unwrap();
        assert!(small.score > huge.score);
    }
}
