//! # explain3d-baselines
//!
//! The comparison algorithms evaluated against Explain3D in Section 5.1.3 of
//! the paper:
//!
//! * [`threshold::ThresholdBaseline`] — keep initial matches above a fixed
//!   probability threshold (THRESHOLD-0.9);
//! * [`rswoosh_adapter::RSwooshBaseline`] — R-Swoosh entity resolution with
//!   deterministic matches (RSWOOSH);
//! * [`greedy::GreedyBaseline`] — greedy evidence construction driven by
//!   Explain3D's objective (GREEDY);
//! * [`exactcover::ExactCoverBaseline`] — an integer-programming adaptation
//!   of the Exact Cover problem (EXACTCOVER);
//! * [`formalexp::FormalExpBaseline`] — a single-dataset "why high / why
//!   low" predicate-explanation framework (FORMALEXP-TopK).
//!
//! All evidence-based baselines translate their evidence mapping into
//! explanations the same way ([`common::explanations_from_evidence`]), so
//! accuracy differences in the benchmarks reflect the mapping quality.

#![warn(missing_docs)]

pub mod common;
pub mod exactcover;
pub mod formalexp;
pub mod greedy;
pub mod rswoosh_adapter;
pub mod threshold;

pub use common::explanations_from_evidence;
pub use exactcover::ExactCoverBaseline;
pub use formalexp::{FormalExpBaseline, Predicate};
pub use greedy::GreedyBaseline;
pub use rswoosh_adapter::RSwooshBaseline;
pub use threshold::ThresholdBaseline;
