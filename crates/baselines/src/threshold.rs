//! The THRESHOLD baseline: refine the initial probabilistic mapping by a
//! fixed probability threshold (the paper uses THRESHOLD-0.9).

use crate::common::explanations_from_evidence;
use explain3d_core::prelude::{CanonicalRelation, ExplanationSet};
use explain3d_linkage::TupleMapping;

/// The THRESHOLD-t baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdBaseline {
    /// Minimum probability for a match to be kept as evidence.
    pub threshold: f64,
}

impl Default for ThresholdBaseline {
    fn default() -> Self {
        ThresholdBaseline { threshold: 0.9 }
    }
}

impl ThresholdBaseline {
    /// Creates a baseline with the given threshold.
    pub fn new(threshold: f64) -> Self {
        ThresholdBaseline { threshold }
    }

    /// Runs the baseline: evidence = matches with `p ≥ threshold`,
    /// explanations derived as for RSWOOSH.
    pub fn explain(
        &self,
        left: &CanonicalRelation,
        right: &CanonicalRelation,
        mapping: &TupleMapping,
    ) -> ExplanationSet {
        let evidence = mapping.filter_by_threshold(self.threshold);
        explanations_from_evidence(left, right, &evidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_core::prelude::{CanonicalTuple, Side};
    use explain3d_linkage::TupleMatch;
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn canon(entries: &[(&str, f64)]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: "Q".to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: entries
                .iter()
                .enumerate()
                .map(|(i, (k, imp))| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: *imp,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    #[test]
    fn high_threshold_keeps_only_confident_matches() {
        let t1 = canon(&[("A", 1.0), ("B", 1.0)]);
        let t2 = canon(&[("A", 1.0), ("B", 1.0)]);
        let mapping: TupleMapping =
            vec![TupleMatch::new(0, 0, 0.95), TupleMatch::new(1, 1, 0.6)].into_iter().collect();
        let e = ThresholdBaseline::default().explain(&t1, &t2, &mapping);
        // Only the 0.95 match survives; B/B is missed, so both B tuples are
        // (incorrectly) reported as provenance explanations — exactly the
        // low-recall behaviour the paper attributes to THRESHOLD.
        assert_eq!(e.evidence.len(), 1);
        assert!(e.provenance_tuples(Side::Left).contains(&1));
        assert!(e.provenance_tuples(Side::Right).contains(&1));
    }

    #[test]
    fn lower_threshold_recovers_more_matches() {
        let t1 = canon(&[("A", 1.0), ("B", 1.0)]);
        let t2 = canon(&[("A", 1.0), ("B", 1.0)]);
        let mapping: TupleMapping =
            vec![TupleMatch::new(0, 0, 0.95), TupleMatch::new(1, 1, 0.6)].into_iter().collect();
        let e = ThresholdBaseline::new(0.5).explain(&t1, &t2, &mapping);
        assert_eq!(e.evidence.len(), 2);
        assert!(e.is_empty());
    }
}
