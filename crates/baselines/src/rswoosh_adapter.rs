//! The RSWOOSH baseline: run R-Swoosh entity resolution over the canonical
//! tuples of both relations and use the resulting deterministic matches as
//! the evidence mapping (Section 5.1.3).

use crate::common::explanations_from_evidence;
use explain3d_core::prelude::{CanonicalRelation, ExplanationSet};
use explain3d_linkage::{RSwoosh, RSwooshConfig, StringMetric, TupleMapping};

/// The RSWOOSH baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RSwooshBaseline {
    /// Similarity threshold for the match predicate (the paper's default is
    /// Jaccard at 0.75).
    pub threshold: f64,
    /// String similarity metric.
    pub metric: StringMetric,
}

impl Default for RSwooshBaseline {
    fn default() -> Self {
        RSwooshBaseline { threshold: 0.75, metric: StringMetric::Jaccard }
    }
}

impl RSwooshBaseline {
    /// Creates a baseline with a custom threshold.
    pub fn new(threshold: f64) -> Self {
        RSwooshBaseline { threshold, ..Default::default() }
    }

    /// Runs R-Swoosh over the canonical key values and derives explanations
    /// from the resolved matches.
    pub fn explain(
        &self,
        left: &CanonicalRelation,
        right: &CanonicalRelation,
    ) -> (ExplanationSet, TupleMapping) {
        let rswoosh =
            RSwoosh::new(RSwooshConfig { threshold: self.threshold, metric: self.metric });
        let left_values: Vec<_> = left.tuples.iter().map(|t| t.key.clone()).collect();
        let right_values: Vec<_> = right.tuples.iter().map(|t| t.key.clone()).collect();
        let (_clusters, evidence) = rswoosh.cross_mapping(&left_values, &right_values);
        let explanations = explanations_from_evidence(left, right, &evidence);
        (explanations, evidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_core::prelude::{CanonicalTuple, Side};
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn canon(entries: &[(&str, f64)]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: "Q".to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: entries
                .iter()
                .enumerate()
                .map(|(i, (k, imp))| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: *imp,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    #[test]
    fn exact_names_match_and_divergent_names_do_not() {
        let t1 = canon(&[
            ("Accounting", 1.0),
            ("Computer Science", 2.0),
            ("Foodservice Systems Administration", 1.0),
        ]);
        let t2 = canon(&[
            ("Accounting", 1.0),
            ("Computer Science", 1.0),
            ("Food Business Management", 1.0),
        ]);
        let (e, evidence) = RSwooshBaseline::default().explain(&t1, &t2);
        // Exact and near-exact names match with probability 1.
        assert!(evidence.contains_pair(0, 0));
        assert!(evidence.contains_pair(1, 1));
        // The renamed programme is missed (the paper's observed weakness),
        // so both sides report it as a provenance explanation.
        assert!(!evidence.contains_pair(2, 2));
        assert!(e.provenance_tuples(Side::Left).contains(&2));
        assert!(e.provenance_tuples(Side::Right).contains(&2));
        // Impact mismatch on Computer Science becomes a value explanation.
        assert_eq!(e.value.len(), 1);
    }

    #[test]
    fn lower_threshold_merges_more() {
        let t1 = canon(&[("Food Systems Administration", 1.0)]);
        let t2 = canon(&[("Food Administration", 1.0)]);
        let (_, strict) = RSwooshBaseline::default().explain(&t1, &t2);
        let (_, loose) = RSwooshBaseline::new(0.5).explain(&t1, &t2);
        assert!(!strict.contains_pair(0, 0));
        assert!(loose.contains_pair(0, 0));
    }
}
