//! # explain3d-incremental
//!
//! Incremental re-explanation for the Explain3D reproduction (VLDB 2019):
//! analysts iterate on *evolving* disjoint datasets, but the stateless
//! pipeline re-runs candidate generation, partitioning, and every MILP from
//! scratch on each call. This crate adds the session layer that makes
//! repeated explanation calls over changing data cheap:
//!
//! * [`RelationDelta`] / [`delta::apply_delta`] — an ordered tuple-edit
//!   language (insert / update / delete) whose application tracks monotone
//!   old→new index maps and per-tuple dirty flags;
//! * [`ExplainSession`] — owns the relations plus three memo layers: the
//!   hash-keyed pair-similarity [`explain3d_linkage::cache::ScoreCache`],
//!   the carried-over candidate list, and a content-hashed per-component
//!   MILP solution cache (local coordinates, so solutions survive index
//!   shifts); dirty components optionally warm-start from persisted
//!   `milp::revised` bases ([`SessionConfig::warm_start_dirty`]);
//! * [`session::report_fingerprint`] — the canonical byte serialisation
//!   under which `re_explain` output is **byte-identical** to a cold run on
//!   the post-delta data (pinned by `tests/incremental_equivalence.rs`).
//!
//! ```
//! use explain3d_incremental::{ExplainSession, RelationDelta, SessionConfig};
//! use explain3d_core::prelude::*;
//! # use explain3d_relation::prelude::{Row, Schema, Value, ValueType};
//! # fn canon(name: &str, entries: &[(&str, f64)]) -> CanonicalRelation {
//! #     CanonicalRelation {
//! #         query_name: name.to_string(),
//! #         schema: Schema::from_pairs(&[("k", ValueType::Str)]),
//! #         key_attrs: vec!["k".to_string()],
//! #         tuples: entries.iter().enumerate().map(|(i, (k, imp))| CanonicalTuple {
//! #             id: i, key: vec![Value::str(*k)], impact: *imp, members: vec![i],
//! #             representative: Row::new(vec![Value::str(*k)]),
//! #         }).collect(),
//! #         aggregate: None,
//! #     }
//! # }
//! let t1 = canon("Q1", &[("CS", 2.0), ("Design", 1.0)]);
//! let t2 = canon("Q2", &[("CSE", 1.0)]);
//! let matches = AttributeMatches::single_equivalent("k", "k");
//! let mut session = ExplainSession::new(t1, t2, matches, SessionConfig::default());
//! let first = session.explain();
//! assert!(first.complete);
//!
//! // The right dataset gains a "Design" row: re-explain incrementally.
//! let delta = RelationDelta::new().insert(Side::Right, CanonicalTuple {
//!     id: 0, key: vec![Value::str("Design")], impact: 1.0, members: vec![],
//!     representative: Row::new(vec![Value::str("Design")]),
//! });
//! let second = session.re_explain(&delta).unwrap();
//! assert!(second.complete);
//! assert!(session.delta_stats().component_cache_hits > 0);
//! ```

#![warn(missing_docs)]

pub mod delta;
pub mod session;

pub use delta::{apply_delta, DeltaError, RelationDelta, SideTrace, TupleOp};
pub use session::{report_fingerprint, ExplainSession, SessionConfig};
