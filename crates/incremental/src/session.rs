//! The incremental re-explanation session.
//!
//! [`ExplainSession`] owns a pair of canonical relations and memoises the
//! expensive artefacts of explaining them — pairwise similarity scores
//! (hash-keyed [`ScoreCache`] in the linkage crate) and per-component MILP
//! solutions (content-hashed, stored in local coordinates) — so that
//! [`ExplainSession::re_explain`] after a small [`RelationDelta`] costs a
//! small fraction of a cold [`ExplainSession::explain`].
//!
//! ## The byte-identity invariant
//!
//! `re_explain(δ)` returns **exactly** the report a cold pipeline would
//! produce on the post-δ relations (explanations, evidence, log-probability
//! bits, completeness — everything except wall-clock timings and cache
//! statistics). The invariant holds by construction, not by luck:
//!
//! 1. **Candidates.** The retained candidate set is assembled from (a) the
//!    previous run's candidates between delta-untouched tuples, re-indexed
//!    through the delta's monotone index maps — valid because both blocking
//!    keys and similarities are pure functions of the two rows' contents —
//!    and (b) pairs with at least one dirty endpoint, enumerated through
//!    the same [`explain3d_linkage::generator::PairChunkStream`] blocking
//!    machinery restricted to the dirty rows and scored by the same
//!    [`explain3d_linkage::generator::PreparedScorer`] kernel (via the
//!    score cache, which memoises by content hash and therefore returns
//!    bit-identical values). The merged, `(left, right)`-sorted list equals
//!    the cold enumeration's output element for element.
//! 2. **Partition.** The job list is derived by the *same*
//!    [`explain3d_core::pipeline::component_jobs`] call the cold pipeline
//!    uses, on the identical mapping — batch packing is global (first-fit
//!    decreasing over all components), so it is deterministically recomputed
//!    rather than patched; what is reused across the new layout is the
//!    per-component solutions, which packing only groups, never alters.
//! 3. **Solutions.** A component's MILP outcome is a deterministic function
//!    of its *content* — member impacts and match probabilities in
//!    component order (tuple identities only name variables; the paper's
//!    Eq. 7–13 encoding never reads them). Cached outcomes are stored in
//!    local coordinates and re-bound to the new tuple indices on reuse, so
//!    a hit reproduces exactly what re-solving would produce. Misses are
//!    solved through the same [`explain3d_core::pipeline::solve_component`]
//!    entry point as the cold pipeline — by default **without** importing a
//!    persisted basis, because a warm-started search may legitimately pick
//!    a different equally-optimal solution
//!    ([`SessionConfig::warm_start_dirty`] opts into the faster,
//!    objective-equivalent mode and stores/imports bases via
//!    `milp::revised`).
//! 4. **Merge.** Outcomes are folded by the shared
//!    [`explain3d_core::pipeline::assemble_report`] in job order.
//!
//! `tests/incremental_equivalence.rs` pins the invariant over randomized
//! delta sequences, including component splits and merges.

use crate::delta::{apply_delta, DeltaError, RelationDelta, SideTrace};
use explain3d_core::pipeline::{
    assemble_report, component_jobs, solve_component, ComponentOutcome, DeltaStats,
    Explain3DConfig, ExplanationReport,
};
use explain3d_core::prelude::{
    AttributeMatches, CanonicalRelation, ExplanationSet, MappingOptions, Side, SubProblem,
};
use explain3d_linkage::cache::{candidate_pairs_cached, ContentHasher, ScoreCache};
use explain3d_linkage::generator::{Candidate, MappingConfig};
use explain3d_linkage::{BucketCalibrator, TupleMapping, TupleMatch};
use explain3d_milp::prelude::SparseBasis;
use explain3d_relation::prelude::Row;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Cached solution entries older than this many session runs are evicted
/// (a run is one `explain`/`re_explain` call). Keeping a few generations
/// lets oscillating deltas (edit → revert) hit without unbounded growth.
const KEEP_GENERATIONS: u64 = 4;

/// Configuration of an [`ExplainSession`].
#[derive(Debug, Clone, Default)]
pub struct SessionConfig {
    /// Stage-2 pipeline configuration (strategy, MILP limits, threads).
    pub explain: Explain3DConfig,
    /// Initial-mapping options (metric, similarity floor, blocking).
    pub mapping: MappingOptions,
    /// Warm-start dirty components from the persisted final basis of a
    /// previous structurally-matching solve. **Off by default**: a warm
    /// root can steer the branch-and-bound to a different equally-optimal
    /// solution, which would break the byte-identical-to-cold invariant;
    /// with it off, dirty components re-solve exactly as the cold pipeline
    /// does. Turn it on for latency-critical sessions that only need
    /// objective-equivalent output.
    pub warm_start_dirty: bool,
    /// Segment soft cap (entries) of the pair-similarity [`ScoreCache`];
    /// `None` uses [`explain3d_linkage::cache::DEFAULT_SCORE_CACHE_CAP`].
    /// Smaller caps bound [`ExplainSession::memory_footprint`] tighter at
    /// the cost of re-scoring evicted pair contents — eviction can cost
    /// time, never correctness.
    pub score_cache_soft_cap: Option<usize>,
}

/// One memoised component solution, in local coordinates: positions into
/// the owning sub-problem's `left_tuples`/`right_tuples` vectors, so the
/// entry re-binds to any later component with identical content regardless
/// of where its tuples now sit in the relations.
#[derive(Debug, Clone)]
struct CachedComponent {
    provenance: Vec<(Side, u32)>,
    value: Vec<(Side, u32, f64, f64)>,
    evidence: Vec<(u32, u32, f64)>,
    nodes: usize,
    suboptimal: usize,
    warm_lp_solves: usize,
    last_used: u64,
}

impl CachedComponent {
    /// Captures an outcome in local coordinates.
    fn capture(sub: &SubProblem, outcome: &ComponentOutcome, generation: u64) -> Self {
        let left_pos: HashMap<usize, u32> =
            sub.left_tuples.iter().enumerate().map(|(p, &t)| (t, p as u32)).collect();
        let right_pos: HashMap<usize, u32> =
            sub.right_tuples.iter().enumerate().map(|(p, &t)| (t, p as u32)).collect();
        let e = &outcome.explanations;
        let local = |side: Side, tuple: usize| -> u32 {
            match side {
                Side::Left => left_pos[&tuple],
                Side::Right => right_pos[&tuple],
            }
        };
        CachedComponent {
            provenance: e.provenance.iter().map(|p| (p.side, local(p.side, p.tuple))).collect(),
            value: e
                .value
                .iter()
                .map(|v| (v.side, local(v.side, v.tuple), v.old_impact, v.new_impact))
                .collect(),
            evidence: e
                .evidence
                .matches()
                .iter()
                .map(|m| (left_pos[&m.left], right_pos[&m.right], m.prob))
                .collect(),
            nodes: outcome.nodes,
            suboptimal: outcome.suboptimal,
            warm_lp_solves: outcome.warm_lp_solves,
            last_used: generation,
        }
    }

    /// Resident bytes of this cached solution (struct plus the three
    /// local-coordinate vectors).
    fn memory_footprint(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.provenance.capacity() * std::mem::size_of::<(Side, u32)>()
            + self.value.capacity() * std::mem::size_of::<(Side, u32, f64, f64)>()
            + self.evidence.capacity() * std::mem::size_of::<(u32, u32, f64)>()
    }

    /// Re-binds the memoised solution to a new component with identical
    /// content, reproducing exactly what re-solving it would decode.
    fn to_outcome(&self, sub: &SubProblem) -> ComponentOutcome {
        let abs = |side: Side, pos: u32| -> usize {
            match side {
                Side::Left => sub.left_tuples[pos as usize],
                Side::Right => sub.right_tuples[pos as usize],
            }
        };
        let mut e = ExplanationSet::new();
        for &(side, pos) in &self.provenance {
            e.add_provenance(side, abs(side, pos));
        }
        for &(side, pos, old, new) in &self.value {
            e.add_value(side, abs(side, pos), old, new);
        }
        for &(lp, rp, prob) in &self.evidence {
            e.evidence.push(TupleMatch::new(
                sub.left_tuples[lp as usize],
                sub.right_tuples[rp as usize],
                prob,
            ));
        }
        e.normalise();
        ComponentOutcome {
            explanations: e,
            nodes: self.nodes,
            suboptimal: self.suboptimal,
            warm_lp_solves: self.warm_lp_solves,
            solve_time: std::time::Duration::ZERO,
            final_basis: None,
            basis_imported: false,
        }
    }
}

/// A stateful explain session over one pair of canonical relations: run
/// [`explain`](ExplainSession::explain) once, then fold in updates with
/// [`re_explain`](ExplainSession::re_explain) at a fraction of the cost.
pub struct ExplainSession {
    config: SessionConfig,
    matches: AttributeMatches,
    mapping_config: MappingConfig,
    calibrator: BucketCalibrator,
    left: CanonicalRelation,
    right: CanonicalRelation,
    scores: ScoreCache,
    candidates: Vec<Candidate>,
    solutions: HashMap<u64, CachedComponent>,
    bases_by_shape: HashMap<(usize, usize, usize), SparseBasis>,
    generation: u64,
    stats: DeltaStats,
    explained: bool,
}

impl ExplainSession {
    /// Creates a session over the given relations.
    pub fn new(
        left: CanonicalRelation,
        right: CanonicalRelation,
        matches: AttributeMatches,
        mut config: SessionConfig,
    ) -> Self {
        // Warm mode needs each solve to export its root basis; the exact
        // mode leaves the export off so the cold path pays nothing for it.
        if config.warm_start_dirty {
            config.explain.milp.export_basis = true;
        }
        let mapping_config = config.mapping.mapping_config(&matches);
        let scores = match config.score_cache_soft_cap {
            Some(cap) => ScoreCache::with_soft_cap(cap),
            None => ScoreCache::new(),
        };
        ExplainSession {
            config,
            matches,
            mapping_config,
            calibrator: BucketCalibrator::with_default_buckets(),
            left,
            right,
            scores,
            candidates: Vec::new(),
            solutions: HashMap::new(),
            bases_by_shape: HashMap::new(),
            generation: 0,
            stats: DeltaStats::default(),
            explained: false,
        }
    }

    /// The current left relation.
    pub fn left(&self) -> &CanonicalRelation {
        &self.left
    }

    /// The current right relation.
    pub fn right(&self) -> &CanonicalRelation {
        &self.right
    }

    /// The session's configuration (as normalised by [`ExplainSession::new`]).
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The attribute matches the session was created with.
    pub fn matches(&self) -> &AttributeMatches {
        &self.matches
    }

    /// The session's cumulative cache statistics (monotone across calls).
    pub fn delta_stats(&self) -> DeltaStats {
        self.stats
    }

    /// Number of memoised component solutions currently held.
    pub fn cached_solutions(&self) -> usize {
        self.solutions.len()
    }

    /// The current retained candidate list (sorted by `(left, right)`).
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// True once [`explain`](ExplainSession::explain) has populated the
    /// session's caches (so `re_explain` takes the incremental path).
    pub fn has_explained(&self) -> bool {
        self.explained
    }

    /// Estimated resident bytes of everything the session memoises: the
    /// pair-similarity cache segments, the carried-over candidate list, the
    /// per-component MILP solution cache, and the persisted warm-start
    /// bases. This is the quantity a hosting registry's memory budget is
    /// enforced against — it grows monotonically while caches fill and
    /// drops when a score-cache segment rotation or solution-cache eviction
    /// frees entries. The relations themselves are *not* counted: they are
    /// the session's working data, not reclaimable cache.
    pub fn memory_footprint(&self) -> usize {
        let solutions: usize = self
            .solutions
            .values()
            .map(|c| std::mem::size_of::<u64>() + c.memory_footprint())
            .sum();
        let bases: usize = self
            .bases_by_shape
            .values()
            .map(|b| std::mem::size_of::<(usize, usize, usize)>() + b.memory_footprint())
            .sum();
        self.scores.memory_footprint()
            + self.candidates.capacity() * std::mem::size_of::<Candidate>()
            + solutions
            + bases
    }

    /// Overrides the deterministic MILP deadline for subsequent solves,
    /// returning the previous value so a caller can scope the override to
    /// one request. The deadline is converted into a per-model **node
    /// budget**, so two runs with the same deadline still produce
    /// byte-identical reports; runs under *different* deadlines may
    /// legitimately stop at different search trees — which is why the
    /// solution cache keys include the budget (see `component_hash`): an
    /// outcome solved under one deadline is never served to a run under
    /// another.
    pub fn set_milp_deadline(
        &mut self,
        deadline: Option<std::time::Duration>,
    ) -> Option<std::time::Duration> {
        std::mem::replace(&mut self.config.explain.milp.deadline, deadline)
    }

    /// Explains the current relations from their contents, populating every
    /// cache along the way. The report is identical to what the stateless
    /// pipeline (`build_initial_mapping` + `Explain3D::explain`) produces
    /// for the same configuration.
    pub fn explain(&mut self) -> ExplanationReport {
        let start = Instant::now();
        let (left_rows, right_rows) = self.representative_rows();
        let (candidates, _, score_stats) = candidate_pairs_cached(
            &self.left.schema,
            &left_rows,
            &self.right.schema,
            &right_rows,
            &self.mapping_config,
            &mut self.scores,
        );
        self.stats.pair_cache_hits += score_stats.hits;
        self.stats.pair_cache_misses += score_stats.misses;
        self.candidates = candidates;
        let mapping = self.calibrated_mapping();
        let candidate_time = start.elapsed();
        let report = self.run(&mapping, start, candidate_time);
        self.explained = true;
        report
    }

    /// Applies a delta to the relations and re-explains incrementally:
    /// only pairs touching dirty tuples are re-scored and only components
    /// whose content changed are re-solved. The report is byte-identical
    /// (explanations, evidence, log-probability bits, completeness) to a
    /// cold run on the post-delta relations; on error the relations are
    /// unchanged.
    pub fn re_explain(&mut self, delta: &RelationDelta) -> Result<ExplanationReport, DeltaError> {
        if !self.explained {
            // Nothing memoised yet: apply and fall through to the cold path.
            apply_delta(&mut self.left, &mut self.right, delta)?;
            return Ok(self.explain());
        }
        let start = Instant::now();
        let (lt, rt) = apply_delta(&mut self.left, &mut self.right, delta)?;

        // 1. Carry over candidates between untouched tuples (monotone index
        //    maps keep the (left, right) sort order), dropping pairs that
        //    lost an endpoint.
        let mut clean: Vec<Candidate> = Vec::with_capacity(self.candidates.len());
        for c in &self.candidates {
            let (Some(&Some(ni)), Some(&Some(nj))) =
                (lt.index_map.get(c.left), rt.index_map.get(c.right))
            else {
                continue;
            };
            clean.push(Candidate { left: ni, right: nj, similarity: c.similarity });
        }
        self.stats.candidates_reused += clean.len();

        // 2. Enumerate and score the pairs with a dirty endpoint.
        let dirty = self.score_dirty_pairs(&lt, &rt);

        // 3. Merge the two sorted, disjoint runs.
        self.candidates = merge_candidates(clean, dirty);
        let mapping = self.calibrated_mapping();
        let candidate_time = start.elapsed();
        Ok(self.run(&mapping, start, candidate_time))
    }

    /// The representative rows of both relations (the linkage layer's
    /// input, mirroring `build_initial_mapping`).
    fn representative_rows(&self) -> (Vec<Row>, Vec<Row>) {
        (
            self.left.tuples.iter().map(|t| t.representative.clone()).collect(),
            self.right.tuples.iter().map(|t| t.representative.clone()).collect(),
        )
    }

    /// Candidates → calibrated probabilistic mapping, exactly as the
    /// stateless `build_initial_mapping` (no-gold branch) computes it.
    fn calibrated_mapping(&self) -> TupleMapping {
        self.candidates
            .iter()
            .map(|c| TupleMatch::new(c.left, c.right, self.calibrator.probability(c.similarity)))
            .collect()
    }

    /// Scores every pair with at least one dirty endpoint: dirty-left ×
    /// all-right plus clean-left × dirty-right, each run through
    /// [`candidate_pairs_cached`] — the same blocking enumeration, the same
    /// parallel chunked scorer, and the same content-hash score cache as
    /// the cold path, just over restricted row subsets (preparation and
    /// hashing are per-row, so subset results match the full-relation
    /// results bit for bit). Returns retained candidates re-indexed to the
    /// full relations and sorted by `(left, right)`.
    fn score_dirty_pairs(&mut self, lt: &SideTrace, rt: &SideTrace) -> Vec<Candidate> {
        let dirty_left: Vec<usize> =
            lt.dirty.iter().enumerate().filter_map(|(i, &d)| d.then_some(i)).collect();
        let dirty_right: Vec<usize> =
            rt.dirty.iter().enumerate().filter_map(|(j, &d)| d.then_some(j)).collect();
        if dirty_left.is_empty() && dirty_right.is_empty() {
            return Vec::new();
        }
        let left_row = |i: usize| self.left.tuples[i].representative.clone();
        let right_row = |j: usize| self.right.tuples[j].representative.clone();

        let mut out: Vec<Candidate> = Vec::new();
        // Dirty-left rows against the full right side.
        if !dirty_left.is_empty() && !self.right.is_empty() {
            let sub_rows: Vec<Row> = dirty_left.iter().map(|&i| left_row(i)).collect();
            let right_rows: Vec<Row> = (0..self.right.len()).map(right_row).collect();
            let (cands, _, score_stats) = candidate_pairs_cached(
                &self.left.schema,
                &sub_rows,
                &self.right.schema,
                &right_rows,
                &self.mapping_config,
                &mut self.scores,
            );
            self.stats.pair_cache_hits += score_stats.hits;
            self.stats.pair_cache_misses += score_stats.misses;
            out.extend(cands.into_iter().map(|c| Candidate {
                left: dirty_left[c.left],
                right: c.right,
                similarity: c.similarity,
            }));
        }
        // Clean-left rows against the dirty right rows (dirty × dirty is
        // already covered above, so restricting to clean left keeps the two
        // enumerations disjoint).
        if !dirty_right.is_empty() {
            let clean_left: Vec<usize> =
                lt.dirty.iter().enumerate().filter_map(|(i, &d)| (!d).then_some(i)).collect();
            if !clean_left.is_empty() {
                let left_sub: Vec<Row> = clean_left.iter().map(|&i| left_row(i)).collect();
                let right_sub: Vec<Row> = dirty_right.iter().map(|&j| right_row(j)).collect();
                let (cands, _, score_stats) = candidate_pairs_cached(
                    &self.left.schema,
                    &left_sub,
                    &self.right.schema,
                    &right_sub,
                    &self.mapping_config,
                    &mut self.scores,
                );
                self.stats.pair_cache_hits += score_stats.hits;
                self.stats.pair_cache_misses += score_stats.misses;
                out.extend(cands.into_iter().map(|c| Candidate {
                    left: clean_left[c.left],
                    right: dirty_right[c.right],
                    similarity: c.similarity,
                }));
            }
        }
        out.sort_unstable();
        out
    }

    /// The shared solve-and-assemble tail of `explain` / `re_explain`:
    /// derives the job list with the cold pipeline's own `component_jobs`,
    /// answers content-hash hits from the solution cache, solves the misses
    /// on the work-stealing pool, and assembles the report with the shared
    /// `assemble_report`.
    fn run(
        &mut self,
        mapping: &TupleMapping,
        start: Instant,
        candidate_time: Duration,
    ) -> ExplanationReport {
        let partition_start = Instant::now();
        let (jobs, meta) =
            component_jobs(self.config.explain.strategy, &self.left, &self.right, mapping);
        let hashes: Vec<u64> = jobs.iter().map(|(_, sub)| self.component_hash(sub)).collect();
        let partition_time = partition_start.elapsed();

        let solve_start = Instant::now();
        self.generation += 1;
        let generation = self.generation;

        // Resolve cache hits; collect misses with their job slots.
        let mut slots: Vec<Option<(usize, ComponentOutcome)>> = Vec::with_capacity(jobs.len());
        let mut missed: Vec<(usize, usize, SubProblem, Option<SparseBasis>)> = Vec::new();
        let mut part_missed = vec![false; meta.part_sizes.len()];
        for (slot, ((part, sub), hash)) in jobs.into_iter().zip(&hashes).enumerate() {
            if let Some(entry) = self.solutions.get_mut(hash) {
                entry.last_used = generation;
                self.stats.component_cache_hits += 1;
                slots.push(Some((part, entry.to_outcome(&sub))));
            } else {
                self.stats.component_cache_misses += 1;
                part_missed[part] = true;
                let warm = if self.config.warm_start_dirty {
                    self.bases_by_shape.get(&component_shape(&sub)).cloned()
                } else {
                    None
                };
                missed.push((slot, part, sub, warm));
                slots.push(None);
            }
        }
        for &m in &part_missed {
            if m {
                self.stats.parts_dirty += 1;
            } else {
                self.stats.parts_reused += 1;
            }
        }

        // Solve the misses on the work-stealing pool (cold path: all jobs).
        let left = &self.left;
        let right = &self.right;
        let relation = self.matches.mapping_relation();
        let explain_config = &self.config.explain;
        let requested = explain_config.requested_threads();
        let threads = requested.min(missed.len()).max(1);
        let (solved, sched) = explain3d_parallel::par_map_stealing_weighted(
            missed,
            requested,
            |(_, _, sub, _)| sub.size().max(1),
            |(slot, part, sub, warm)| {
                let outcome = solve_component(left, right, relation, explain_config, &sub, warm);
                (slot, part, sub, outcome)
            },
        );
        for (slot, part, sub, outcome) in solved {
            if outcome.basis_imported {
                self.stats.warm_basis_imports += 1;
            }
            // Bases are only exported (and worth retaining) in warm mode;
            // in the default exact mode `final_basis` is always `None`.
            if self.config.warm_start_dirty {
                if let Some(basis) = &outcome.final_basis {
                    self.bases_by_shape.insert(component_shape(&sub), basis.clone());
                }
            }
            self.solutions
                .insert(hashes[slot], CachedComponent::capture(&sub, &outcome, generation));
            slots[slot] = Some((part, outcome));
        }
        let outcomes: Vec<(usize, ComponentOutcome)> =
            slots.into_iter().map(|s| s.expect("every job slot resolved")).collect();

        // Evict entries that have not been touched for a few runs.
        self.solutions.retain(|_, e| generation.saturating_sub(e.last_used) <= KEEP_GENERATIONS);

        let mut report = assemble_report(
            &self.left,
            &self.right,
            &self.matches,
            mapping,
            &self.config.explain,
            &meta,
            outcomes,
        );
        report.stats.threads = threads;
        report.stats.steals = sched.steals;
        report.stats.candidate_time = candidate_time;
        report.stats.partition_time = partition_time;
        report.stats.solve_time = solve_start.elapsed();
        report.stats.total_time = start.elapsed();
        report.stats.delta = self.stats;
        report
    }

    /// Content hash of a component: everything its MILP solve depends on —
    /// member impacts (in component order), in-component matches as
    /// (local left, local right, probability) triples, and the **solve
    /// budget** (deadline + node cap). Tuple *identities* are deliberately
    /// excluded: the encoding only uses them to name variables, so
    /// content-equal components solve identically wherever their tuples
    /// sit. The budget is included because a budget-limited search can
    /// stop at a different tree: a solution obtained under one per-request
    /// deadline ([`ExplainSession::set_milp_deadline`]) must never answer
    /// a run under another — each budget keys its own cache entries, so
    /// byte-identity-to-cold holds *per budget*.
    fn component_hash(&self, sub: &SubProblem) -> u64 {
        let mut h = ContentHasher::new();
        let milp = &self.config.explain.milp;
        h.write_u64(milp.max_nodes as u64);
        match milp.deadline {
            Some(d) => {
                h.write_u64(1);
                h.write_u64(d.as_nanos() as u64);
            }
            None => h.write_u64(0),
        }
        h.write_u64(sub.left_tuples.len() as u64);
        for &i in &sub.left_tuples {
            h.write_u64(self.left.tuples[i].impact.to_bits());
        }
        h.write_u64(sub.right_tuples.len() as u64);
        for &j in &sub.right_tuples {
            h.write_u64(self.right.tuples[j].impact.to_bits());
        }
        let left_pos: HashMap<usize, u64> =
            sub.left_tuples.iter().enumerate().map(|(p, &t)| (t, p as u64)).collect();
        let right_pos: HashMap<usize, u64> =
            sub.right_tuples.iter().enumerate().map(|(p, &t)| (t, p as u64)).collect();
        for m in &sub.matches {
            // Matches referencing tuples outside the component are ignored
            // by the encoder and the heuristic alike, so they must not
            // perturb the hash either.
            let (Some(&lp), Some(&rp)) = (left_pos.get(&m.left), right_pos.get(&m.right)) else {
                continue;
            };
            h.write_u64(lp);
            h.write_u64(rp);
            h.write_u64(m.prob.to_bits());
        }
        h.finish()
    }
}

/// The structural shape of a component, the key for persisted warm-start
/// bases: components of equal shape produce LPs of equal dimensions, the
/// precondition for a basis import to be accepted.
fn component_shape(sub: &SubProblem) -> (usize, usize, usize) {
    (sub.left_tuples.len(), sub.right_tuples.len(), sub.matches.len())
}

/// Merges two `(left, right)`-sorted, pair-disjoint candidate runs.
fn merge_candidates(a: Vec<Candidate>, b: Vec<Candidate>) -> Vec<Candidate> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < a.len() && ib < b.len() {
        if (a[ia].left, a[ia].right) <= (b[ib].left, b[ib].right) {
            out.push(a[ia]);
            ia += 1;
        } else {
            out.push(b[ib]);
            ib += 1;
        }
    }
    out.extend_from_slice(&a[ia..]);
    out.extend_from_slice(&b[ib..]);
    out
}

/// A canonical byte serialisation of everything a report *asserts* —
/// explanations, value changes, evidence mapping, log-probability bits, and
/// completeness (timings and cache statistics excluded). Two reports are
/// byte-identical in the sense of the incremental invariant iff their
/// fingerprints are equal.
pub fn report_fingerprint(report: &ExplanationReport) -> Vec<u8> {
    let mut out = Vec::new();
    let side_byte = |s: Side| match s {
        Side::Left => 0u8,
        Side::Right => 1u8,
    };
    let e = &report.explanations;
    out.extend_from_slice(&(e.provenance.len() as u64).to_le_bytes());
    for p in &e.provenance {
        out.push(side_byte(p.side));
        out.extend_from_slice(&(p.tuple as u64).to_le_bytes());
    }
    out.extend_from_slice(&(e.value.len() as u64).to_le_bytes());
    for v in &e.value {
        out.push(side_byte(v.side));
        out.extend_from_slice(&(v.tuple as u64).to_le_bytes());
        out.extend_from_slice(&v.old_impact.to_bits().to_le_bytes());
        out.extend_from_slice(&v.new_impact.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&(e.evidence.len() as u64).to_le_bytes());
    for m in e.evidence.matches() {
        out.extend_from_slice(&(m.left as u64).to_le_bytes());
        out.extend_from_slice(&(m.right as u64).to_le_bytes());
        out.extend_from_slice(&m.prob.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&report.log_probability.to_bits().to_le_bytes());
    out.push(u8::from(report.complete));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_core::prelude::CanonicalTuple;
    use explain3d_relation::prelude::{Schema, Value, ValueType};

    fn canon(name: &str, entries: &[(&str, f64)]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: name.to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: entries
                .iter()
                .enumerate()
                .map(|(i, (k, imp))| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: *imp,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    fn tuple(key: &str, impact: f64) -> CanonicalTuple {
        CanonicalTuple {
            id: 0,
            key: vec![Value::str(key)],
            impact,
            members: vec![],
            representative: Row::new(vec![Value::str(key)]),
        }
    }

    fn session(left: CanonicalRelation, right: CanonicalRelation) -> ExplainSession {
        ExplainSession::new(
            left,
            right,
            AttributeMatches::single_equivalent("k", "k"),
            SessionConfig::default(),
        )
    }

    fn cold_fingerprint(s: &ExplainSession) -> Vec<u8> {
        let mut fresh = ExplainSession::new(
            s.left().clone(),
            s.right().clone(),
            AttributeMatches::single_equivalent("k", "k"),
            SessionConfig::default(),
        );
        report_fingerprint(&fresh.explain())
    }

    #[test]
    fn session_explain_matches_stateless_pipeline() {
        let t1 = canon("Q1", &[("alpha", 1.0), ("beta", 2.0), ("gamma", 1.0)]);
        let t2 = canon("Q2", &[("alpha", 1.0), ("beta", 1.0)]);
        let matches = AttributeMatches::single_equivalent("k", "k");
        let cfg = SessionConfig::default();
        let mapping =
            explain3d_core::prelude::build_initial_mapping(&t1, &t2, &matches, &cfg.mapping, None);
        let stateless = explain3d_core::prelude::Explain3D::new(cfg.explain.clone())
            .explain(&t1, &t2, &matches, &mapping);
        let mut s = session(t1, t2);
        let report = s.explain();
        assert_eq!(report.explanations, stateless.explanations);
        assert_eq!(report.log_probability.to_bits(), stateless.log_probability.to_bits());
        assert_eq!(report.complete, stateless.complete);
        assert_eq!(report.stats.milp_nodes, stateless.stats.milp_nodes);
    }

    #[test]
    fn re_explain_equals_cold_after_update() {
        let t1 = canon("Q1", &[("alpha", 1.0), ("beta", 2.0), ("gamma", 1.0)]);
        let t2 = canon("Q2", &[("alpha", 1.0), ("beta", 1.0), ("delta", 1.0)]);
        let mut s = session(t1, t2);
        s.explain();
        let delta = RelationDelta::new().update(Side::Right, 1, tuple("beta", 2.0));
        let incremental = s.re_explain(&delta).unwrap();
        assert_eq!(report_fingerprint(&incremental), cold_fingerprint(&s));
        let stats = s.delta_stats();
        assert!(stats.component_cache_hits > 0, "untouched components must hit: {stats:?}");
        assert!(stats.candidates_reused > 0);
    }

    #[test]
    fn re_explain_equals_cold_after_insert_and_delete() {
        let t1 = canon("Q1", &[("a", 1.0), ("b", 1.0), ("c", 3.0)]);
        let t2 = canon("Q2", &[("a", 1.0), ("c", 2.0)]);
        let mut s = session(t1, t2);
        s.explain();
        let delta = RelationDelta::new().insert(Side::Right, tuple("b", 1.0)).delete(Side::Left, 2);
        let incremental = s.re_explain(&delta).unwrap();
        assert_eq!(report_fingerprint(&incremental), cold_fingerprint(&s));
    }

    #[test]
    fn empty_delta_is_all_hits() {
        let t1 = canon("Q1", &[("a", 1.0), ("b", 2.0)]);
        let t2 = canon("Q2", &[("a", 1.0)]);
        let mut s = session(t1, t2);
        s.explain();
        let before = s.delta_stats();
        let report = s.re_explain(&RelationDelta::new()).unwrap();
        assert_eq!(report_fingerprint(&report), cold_fingerprint(&s));
        let after = s.delta_stats();
        assert_eq!(after.component_cache_misses, before.component_cache_misses);
        assert_eq!(after.pair_cache_misses, before.pair_cache_misses);
        assert!(after.component_cache_hits > before.component_cache_hits);
        assert_eq!(after.parts_dirty, before.parts_dirty);
    }

    #[test]
    fn failed_delta_leaves_session_usable() {
        let t1 = canon("Q1", &[("a", 1.0)]);
        let t2 = canon("Q2", &[("a", 1.0)]);
        let mut s = session(t1, t2);
        let first = s.explain();
        let err = s.re_explain(&RelationDelta::new().delete(Side::Left, 7)).unwrap_err();
        assert_eq!(err.index, 7);
        // The session state is untouched; re-running reproduces the report.
        let again = s.re_explain(&RelationDelta::new()).unwrap();
        assert_eq!(report_fingerprint(&again), report_fingerprint(&first));
    }

    #[test]
    fn merge_candidates_interleaves_sorted_runs() {
        let c = |l: usize, r: usize| Candidate { left: l, right: r, similarity: 0.5 };
        let merged = merge_candidates(vec![c(0, 1), c(2, 0)], vec![c(0, 0), c(1, 1), c(3, 0)]);
        let pairs: Vec<(usize, usize)> = merged.iter().map(|x| (x.left, x.right)).collect();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (1, 1), (2, 0), (3, 0)]);
        assert!(merge_candidates(vec![], vec![c(1, 1)]).len() == 1);
        assert!(merge_candidates(vec![c(1, 1)], vec![]).len() == 1);
    }

    #[test]
    fn memory_footprint_is_monotone_under_inserts() {
        let t1 = canon("Q1", &[("a", 1.0), ("b", 2.0), ("c", 1.0)]);
        let t2 = canon("Q2", &[("a", 1.0), ("b", 1.0)]);
        let mut s = session(t1, t2);
        let empty = s.memory_footprint();
        s.explain();
        let mut prev = s.memory_footprint();
        assert!(prev > empty, "explain must populate the caches");
        // Pure inserts only add cache entries (no rotation at the default
        // cap, no solution eviction while every old component still hits),
        // so the footprint must never shrink.
        for i in 0..4 {
            let delta = RelationDelta::new().insert(Side::Right, tuple(&format!("new{i}"), 1.0));
            s.re_explain(&delta).unwrap();
            let now = s.memory_footprint();
            assert!(now >= prev, "footprint shrank under insert {i}: {now} < {prev}");
            prev = now;
        }
    }

    #[test]
    fn memory_footprint_drops_after_segment_rotation() {
        // 12×12 with blocking off: one explain scores 144 distinct pair
        // contents, far past the soft cap, so the cache rotates and holds
        // them in its stale segment. A 2-tuple update then scores 24 fresh
        // pairs — past the cap again, so the rotation frees the 144-entry
        // segment and the footprint must drop despite the new entries.
        let keys: Vec<String> = (0..12).map(|i| format!("key{i}")).collect();
        let entries: Vec<(&str, f64)> = keys.iter().map(|k| (k.as_str(), 1.0)).collect();
        let config = SessionConfig {
            mapping: explain3d_core::prelude::MappingOptions {
                use_blocking: false,
                ..Default::default()
            },
            score_cache_soft_cap: Some(16),
            ..Default::default()
        };
        let mut s = ExplainSession::new(
            canon("Q1", &entries),
            canon("Q2", &entries),
            AttributeMatches::single_equivalent("k", "k"),
            config.clone(),
        );
        s.explain();
        let before = s.memory_footprint();
        let delta = RelationDelta::new().update(Side::Left, 0, tuple("fresh-a", 1.0)).update(
            Side::Left,
            1,
            tuple("fresh-b", 1.0),
        );
        s.re_explain(&delta).unwrap();
        let after = s.memory_footprint();
        assert!(after < before, "rotation must free the old segment: {after} >= {before}");
        // Correctness is untouched by the eviction: a fresh same-config
        // session on the post-delta relations reproduces the fingerprint.
        let mut fresh = ExplainSession::new(
            s.left().clone(),
            s.right().clone(),
            AttributeMatches::single_equivalent("k", "k"),
            config,
        );
        assert_eq!(
            report_fingerprint(&s.re_explain(&RelationDelta::new()).unwrap()),
            report_fingerprint(&fresh.explain())
        );
    }

    #[test]
    fn deadline_changes_invalidate_the_solution_cache() {
        let t1 = canon("Q1", &[("a", 1.0), ("b", 2.0), ("c", 1.0)]);
        let t2 = canon("Q2", &[("a", 1.0), ("b", 1.0)]);
        let mut s = session(t1, t2);
        s.explain();
        let baseline = s.delta_stats();

        // Same relations, different budget: the cached solutions were
        // obtained under the default deadline and must NOT answer — every
        // component re-solves (misses grow, no new hits).
        let default_deadline = s.set_milp_deadline(Some(std::time::Duration::from_millis(321)));
        let overridden = s.re_explain(&RelationDelta::new()).unwrap();
        let after_override = s.delta_stats();
        assert_eq!(after_override.component_cache_hits, baseline.component_cache_hits);
        assert!(after_override.component_cache_misses > baseline.component_cache_misses);
        // These tiny components solve to optimality under any budget, so
        // the report itself still matches a default-config cold run.
        assert_eq!(report_fingerprint(&overridden), cold_fingerprint(&s));

        // Restoring the default deadline hits the original entries again.
        s.set_milp_deadline(default_deadline);
        let restored = s.re_explain(&RelationDelta::new()).unwrap();
        let after_restore = s.delta_stats();
        assert!(after_restore.component_cache_hits > after_override.component_cache_hits);
        assert_eq!(after_restore.component_cache_misses, after_override.component_cache_misses);
        assert_eq!(report_fingerprint(&restored), cold_fingerprint(&s));
    }

    #[test]
    fn scoped_deadline_override_round_trips() {
        let t1 = canon("Q1", &[("a", 1.0), ("b", 2.0)]);
        let t2 = canon("Q2", &[("a", 1.0)]);
        let mut s = session(t1, t2);
        let default_deadline = s.set_milp_deadline(Some(std::time::Duration::from_millis(250)));
        assert!(default_deadline.is_some(), "MilpConfig defaults to a deterministic deadline");
        let report = s.explain();
        assert!(report.complete);
        let scoped = s.set_milp_deadline(default_deadline);
        assert_eq!(scoped, Some(std::time::Duration::from_millis(250)));
    }

    #[test]
    fn warm_start_dirty_reaches_the_same_objective() {
        // With warm starts on, the incremental result must stay complete
        // and score-equivalent (bit-identity is not promised in this mode).
        let t1 = canon("Q1", &[("a", 2.0), ("b", 1.0), ("c", 1.0)]);
        let t2 = canon("Q2", &[("a", 1.0), ("b", 1.0)]);
        let matches = AttributeMatches::single_equivalent("k", "k");
        let mut warm = ExplainSession::new(
            t1.clone(),
            t2.clone(),
            matches.clone(),
            SessionConfig { warm_start_dirty: true, ..Default::default() },
        );
        warm.explain();
        let delta = RelationDelta::new().update(Side::Left, 0, tuple("a", 3.0));
        let report = warm.re_explain(&delta).unwrap();
        let mut cold = ExplainSession::new(
            warm.left().clone(),
            warm.right().clone(),
            matches,
            SessionConfig::default(),
        );
        let cold_report = cold.explain();
        assert!(report.complete);
        assert!(
            (report.log_probability - cold_report.log_probability).abs()
                <= 1e-9 * (1.0 + cold_report.log_probability.abs()),
            "warm {} vs cold {}",
            report.log_probability,
            cold_report.log_probability
        );
    }
}
