//! Relation deltas: the edit language of [`crate::ExplainSession::re_explain`].
//!
//! A [`RelationDelta`] is an ordered list of tuple operations against the
//! two canonical relations of a session. Operations are applied
//! sequentially, each interpreted against the relation state *at the time
//! it is applied* (so a `Delete { index: 3 }` followed by another
//! `Delete { index: 3 }` removes two adjacent tuples). Application tracks,
//! per side,
//!
//! * the **index map** from pre-delta tuple indices to post-delta indices
//!   (`None` for deleted or replaced tuples), and
//! * per post-delta tuple, a **dirty flag** — `true` for inserted or
//!   updated tuples, whose pairs must be re-scored.
//!
//! Surviving untouched tuples keep their relative order (inserts append,
//! deletes shift), so the index maps are monotone — the property that lets
//! the session carry sorted candidate lists across a delta without
//! re-sorting.

use explain3d_core::prelude::{CanonicalRelation, CanonicalTuple, Side};
use std::fmt;

/// One tuple edit against a canonical relation.
#[derive(Debug, Clone)]
pub enum TupleOp {
    /// Appends a tuple to the given side.
    Insert {
        /// Which relation the tuple joins.
        side: Side,
        /// The new canonical tuple (its `id` is reassigned on application).
        tuple: CanonicalTuple,
    },
    /// Replaces the tuple at `index` (current state) on the given side.
    Update {
        /// Which relation is edited.
        side: Side,
        /// Index of the tuple to replace, in the relation state reached by
        /// the preceding operations.
        index: usize,
        /// The replacement tuple.
        tuple: CanonicalTuple,
    },
    /// Removes the tuple at `index` (current state) on the given side.
    Delete {
        /// Which relation is edited.
        side: Side,
        /// Index of the tuple to remove, in the relation state reached by
        /// the preceding operations.
        index: usize,
    },
}

/// An ordered batch of tuple edits.
#[derive(Debug, Clone, Default)]
pub struct RelationDelta {
    /// The operations, applied in order.
    pub ops: Vec<TupleOp>,
}

impl RelationDelta {
    /// An empty delta.
    pub fn new() -> Self {
        RelationDelta::default()
    }

    /// True when the delta contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends an insert.
    pub fn insert(mut self, side: Side, tuple: CanonicalTuple) -> Self {
        self.ops.push(TupleOp::Insert { side, tuple });
        self
    }

    /// Appends an update.
    pub fn update(mut self, side: Side, index: usize, tuple: CanonicalTuple) -> Self {
        self.ops.push(TupleOp::Update { side, index, tuple });
        self
    }

    /// Appends a delete.
    pub fn delete(mut self, side: Side, index: usize) -> Self {
        self.ops.push(TupleOp::Delete { side, index });
        self
    }
}

/// A delta operation referenced a tuple index that does not exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaError {
    /// Which side the bad operation addressed.
    pub side: Side,
    /// The out-of-range index.
    pub index: usize,
    /// The relation length at the time the operation was applied.
    pub len: usize,
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delta references tuple {} of the {:?} relation, which has {} tuples at that point",
            self.index, self.side, self.len
        )
    }
}

impl std::error::Error for DeltaError {}

/// Per-side application result: the index map and the dirty flags.
#[derive(Debug, Clone, Default)]
pub struct SideTrace {
    /// `old index → new index` for surviving untouched tuples; `None` for
    /// deleted or replaced ones. Monotone over the `Some` entries.
    pub index_map: Vec<Option<usize>>,
    /// Per post-delta tuple: `true` when inserted or updated by the delta.
    pub dirty: Vec<bool>,
}

impl SideTrace {
    /// Number of dirty (inserted/updated) post-delta tuples.
    pub fn dirty_count(&self) -> usize {
        self.dirty.iter().filter(|&&d| d).count()
    }
}

/// Applies a delta to the pair of canonical relations in place, returning
/// the per-side traces. On error the relations are left **unmodified**.
pub fn apply_delta(
    left: &mut CanonicalRelation,
    right: &mut CanonicalRelation,
    delta: &RelationDelta,
) -> Result<(SideTrace, SideTrace), DeltaError> {
    // Work on tracked copies so a failing op cannot half-apply.
    struct Tracked {
        tuple: CanonicalTuple,
        origin: Option<usize>,
        dirty: bool,
    }
    let mut sides: [Vec<Tracked>; 2] = [
        left.tuples
            .iter()
            .enumerate()
            .map(|(i, t)| Tracked { tuple: t.clone(), origin: Some(i), dirty: false })
            .collect(),
        right
            .tuples
            .iter()
            .enumerate()
            .map(|(i, t)| Tracked { tuple: t.clone(), origin: Some(i), dirty: false })
            .collect(),
    ];
    let slot = |side: Side| match side {
        Side::Left => 0usize,
        Side::Right => 1usize,
    };
    for op in &delta.ops {
        match op {
            TupleOp::Insert { side, tuple } => {
                sides[slot(*side)].push(Tracked {
                    tuple: tuple.clone(),
                    origin: None,
                    dirty: true,
                });
            }
            TupleOp::Update { side, index, tuple } => {
                let entries = &mut sides[slot(*side)];
                if *index >= entries.len() {
                    return Err(DeltaError { side: *side, index: *index, len: entries.len() });
                }
                entries[*index] = Tracked { tuple: tuple.clone(), origin: None, dirty: true };
            }
            TupleOp::Delete { side, index } => {
                let entries = &mut sides[slot(*side)];
                if *index >= entries.len() {
                    return Err(DeltaError { side: *side, index: *index, len: entries.len() });
                }
                entries.remove(*index);
            }
        }
    }

    let [tracked_left, tracked_right] = sides;
    let commit = |relation: &mut CanonicalRelation, tracked: Vec<Tracked>| -> SideTrace {
        let mut trace = SideTrace {
            index_map: vec![None; relation.tuples.len()],
            dirty: Vec::with_capacity(tracked.len()),
        };
        relation.tuples.clear();
        for (new_idx, entry) in tracked.into_iter().enumerate() {
            if let Some(old) = entry.origin {
                trace.index_map[old] = Some(new_idx);
            }
            trace.dirty.push(entry.dirty);
            let mut tuple = entry.tuple;
            tuple.id = new_idx;
            relation.tuples.push(tuple);
        }
        trace
    };
    let lt = commit(left, tracked_left);
    let rt = commit(right, tracked_right);
    Ok((lt, rt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn tuple(key: &str, impact: f64) -> CanonicalTuple {
        CanonicalTuple {
            id: 0,
            key: vec![Value::str(key)],
            impact,
            members: vec![],
            representative: Row::new(vec![Value::str(key)]),
        }
    }

    fn relation(keys: &[&str]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: "Q".to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: keys
                .iter()
                .enumerate()
                .map(|(i, k)| {
                    let mut t = tuple(k, 1.0);
                    t.id = i;
                    t
                })
                .collect(),
            aggregate: None,
        }
    }

    #[test]
    fn inserts_append_and_are_dirty() {
        let mut l = relation(&["a", "b"]);
        let mut r = relation(&["x"]);
        let delta = RelationDelta::new().insert(Side::Left, tuple("c", 2.0));
        let (lt, rt) = apply_delta(&mut l, &mut r, &delta).unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l.tuples[2].key, vec![Value::str("c")]);
        assert_eq!(l.tuples[2].id, 2);
        assert_eq!(lt.index_map, vec![Some(0), Some(1)]);
        assert_eq!(lt.dirty, vec![false, false, true]);
        assert_eq!(rt.index_map, vec![Some(0)]);
        assert_eq!(rt.dirty_count(), 0);
    }

    #[test]
    fn deletes_shift_monotonically() {
        let mut l = relation(&["a", "b", "c", "d"]);
        let mut r = relation(&[]);
        let delta = RelationDelta::new().delete(Side::Left, 1).delete(Side::Left, 1);
        // Removes "b" then (shifted) "c".
        let (lt, _) = apply_delta(&mut l, &mut r, &delta).unwrap();
        assert_eq!(l.len(), 2);
        assert_eq!(l.tuples[1].key, vec![Value::str("d")]);
        assert_eq!(lt.index_map, vec![Some(0), None, None, Some(1)]);
        assert_eq!(lt.dirty, vec![false, false]);
        // Ids are re-densified.
        assert_eq!(l.tuples[1].id, 1);
    }

    #[test]
    fn updates_replace_in_place() {
        let mut l = relation(&["a", "b"]);
        let mut r = relation(&["x"]);
        let delta = RelationDelta::new().update(Side::Right, 0, tuple("y", 3.0));
        let (lt, rt) = apply_delta(&mut l, &mut r, &delta).unwrap();
        assert_eq!(r.tuples[0].key, vec![Value::str("y")]);
        assert_eq!(r.tuples[0].impact, 3.0);
        // The replaced slot maps to None: the old tuple's cached pair
        // scores must not be carried over.
        assert_eq!(rt.index_map, vec![None]);
        assert_eq!(rt.dirty, vec![true]);
        assert_eq!(lt.dirty_count(), 0);
    }

    #[test]
    fn out_of_range_ops_leave_relations_untouched() {
        let mut l = relation(&["a"]);
        let mut r = relation(&["x"]);
        let delta = RelationDelta::new().insert(Side::Left, tuple("b", 1.0)).delete(Side::Right, 5);
        let err = apply_delta(&mut l, &mut r, &delta).unwrap_err();
        assert_eq!(err.index, 5);
        assert_eq!(err.len, 1);
        assert!(err.to_string().contains("tuple 5"));
        // The earlier insert of the same failing delta was rolled back too.
        assert_eq!(l.len(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn mixed_sequence_keeps_traces_consistent() {
        let mut l = relation(&["a", "b", "c"]);
        let mut r = relation(&["x", "y"]);
        let delta = RelationDelta::new()
            .delete(Side::Left, 0)
            .insert(Side::Left, tuple("d", 1.0))
            .update(Side::Left, 0, tuple("B", 2.0))
            .insert(Side::Right, tuple("z", 1.0));
        let (lt, rt) = apply_delta(&mut l, &mut r, &delta).unwrap();
        // Left: delete a → [b, c]; insert d → [b, c, d]; update 0 → [B, c, d].
        assert_eq!(l.len(), 3);
        assert_eq!(l.tuples[0].key, vec![Value::str("B")]);
        assert_eq!(lt.index_map, vec![None, None, Some(1)]);
        assert_eq!(lt.dirty, vec![true, false, true]);
        // Survivor order is monotone.
        let survivors: Vec<usize> = lt.index_map.iter().flatten().copied().collect();
        let mut sorted = survivors.clone();
        sorted.sort_unstable();
        assert_eq!(survivors, sorted);
        assert_eq!(rt.index_map, vec![Some(0), Some(1)]);
        assert_eq!(rt.dirty, vec![false, false, true]);
    }
}
