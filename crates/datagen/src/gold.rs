//! Gold-standard construction.
//!
//! All generators in this crate know the true entity correspondence between
//! the two datasets they emit (they created both from a single ground-truth
//! corpus). Given that correspondence at the canonical-tuple level, the gold
//! explanations follow mechanically:
//!
//! * canonical tuples with no counterpart → provenance-based explanations;
//! * matched groups whose impact totals differ → value-based explanations;
//! * the correspondence itself → the gold evidence mapping.

use explain3d_core::prelude::{CanonicalRelation, ExplanationSet, Side};
use explain3d_linkage::TupleMatch;
use std::collections::{BTreeMap, BTreeSet};

/// Builds the gold explanation set from the true canonical-tuple
/// correspondence `true_pairs` (left index, right index).
pub fn gold_from_truth(
    left: &CanonicalRelation,
    right: &CanonicalRelation,
    true_pairs: &[(usize, usize)],
) -> ExplanationSet {
    let mut gold = ExplanationSet::new();
    let mut matched_left: BTreeSet<usize> = BTreeSet::new();
    let mut matched_right: BTreeSet<usize> = BTreeSet::new();
    for &(l, r) in true_pairs {
        if l >= left.len() || r >= right.len() {
            continue;
        }
        gold.evidence.push(TupleMatch::new(l, r, 1.0));
        matched_left.insert(l);
        matched_right.insert(r);
    }

    // Unmatched tuples are provenance-based explanations.
    for i in 0..left.len() {
        if !matched_left.contains(&i) {
            gold.add_provenance(Side::Left, i);
        }
    }
    for j in 0..right.len() {
        if !matched_right.contains(&j) {
            gold.add_provenance(Side::Right, j);
        }
    }

    // Impact comparison per correspondence group (grouped by right tuple so
    // many-to-one containment matches compare totals).
    let mut group: BTreeMap<usize, (f64, Vec<usize>)> = BTreeMap::new();
    for &(l, r) in true_pairs {
        if l >= left.len() || r >= right.len() {
            continue;
        }
        let e = group.entry(r).or_insert((0.0, Vec::new()));
        e.0 += left.tuples[l].impact;
        e.1.push(l);
    }
    for (r, (left_total, _members)) in group {
        let right_impact = right.tuples[r].impact;
        if (left_total - right_impact).abs() > 1e-9 {
            gold.add_value(Side::Right, r, right_impact, left_total);
        }
    }
    gold.normalise();
    gold
}

/// Computes the true canonical-tuple correspondence from per-tuple entity
/// keys: tuple `i` of the left relation corresponds to tuple `j` of the right
/// relation when `left_keys[i] == right_keys[j]` (first right occurrence
/// wins; keys are compared case-insensitively).
pub fn pairs_from_entity_keys(left_keys: &[String], right_keys: &[String]) -> Vec<(usize, usize)> {
    let mut right_index: BTreeMap<String, usize> = BTreeMap::new();
    for (j, k) in right_keys.iter().enumerate() {
        right_index.entry(k.to_ascii_lowercase()).or_insert(j);
    }
    let mut pairs = Vec::new();
    for (i, k) in left_keys.iter().enumerate() {
        if let Some(&j) = right_index.get(&k.to_ascii_lowercase()) {
            pairs.push((i, j));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_core::prelude::CanonicalTuple;
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn canon(entries: &[(&str, f64)]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: "Q".to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: entries
                .iter()
                .enumerate()
                .map(|(i, (k, imp))| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: *imp,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    #[test]
    fn gold_covers_missing_and_mismatched_tuples() {
        let t1 = canon(&[("A", 1.0), ("CS", 2.0), ("Design", 1.0)]);
        let t2 = canon(&[("A", 1.0), ("CS", 1.0)]);
        let pairs = vec![(0, 0), (1, 1)];
        let gold = gold_from_truth(&t1, &t2, &pairs);
        assert_eq!(gold.evidence.len(), 2);
        assert_eq!(gold.provenance_tuples(Side::Left), BTreeSet::from([2]));
        assert!(gold.provenance_tuples(Side::Right).is_empty());
        assert_eq!(gold.value.len(), 1);
        assert_eq!(gold.value[0].tuple, 1);
        assert_eq!(gold.value[0].new_impact, 2.0);
    }

    #[test]
    fn many_to_one_groups_compare_totals() {
        let t1 = canon(&[("ECE", 1.0), ("EE", 1.0)]);
        let t2 = canon(&[("Engineering", 2.0)]);
        let gold = gold_from_truth(&t1, &t2, &[(0, 0), (1, 0)]);
        assert!(gold.value.is_empty());
        assert!(gold.provenance.is_empty());
        // Unbalanced totals produce one value explanation on the right.
        let t2b = canon(&[("Engineering", 3.0)]);
        let gold = gold_from_truth(&t1, &t2b, &[(0, 0), (1, 0)]);
        assert_eq!(gold.value.len(), 1);
        assert_eq!(gold.value[0].new_impact, 2.0);
    }

    #[test]
    fn out_of_range_pairs_are_ignored() {
        let t1 = canon(&[("A", 1.0)]);
        let t2 = canon(&[("A", 1.0)]);
        let gold = gold_from_truth(&t1, &t2, &[(0, 0), (5, 0), (0, 9)]);
        assert_eq!(gold.evidence.len(), 1);
        assert!(gold.is_empty());
    }

    #[test]
    fn entity_key_pairing_is_case_insensitive() {
        let left = vec!["Computer Science".to_string(), "Design".to_string()];
        let right = vec!["computer science".to_string(), "Art".to_string()];
        let pairs = pairs_from_entity_keys(&left, &right);
        assert_eq!(pairs, vec![(0, 0)]);
    }
}
