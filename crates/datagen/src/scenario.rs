//! Common scenario types shared by all generators.

use crate::gold::{gold_from_truth, pairs_from_entity_keys};
use explain3d_core::prelude::{
    build_initial_mapping, prepare, AttributeMatches, ExplanationSet, MappingOptions,
    PreparedComparison, QueryCase,
};
use explain3d_linkage::TupleMapping;
use explain3d_relation::prelude::RelationError;
use std::collections::HashSet;

/// A fully generated comparison case: datasets, queries, attribute matches,
/// Stage-1 outputs, the initial tuple mapping, and the gold standard.
#[derive(Debug, Clone)]
pub struct GeneratedCase {
    /// Human-readable name (e.g. `"synthetic n=1000 d=0.2 v=1000"`).
    pub name: String,
    /// Left database + query.
    pub left: QueryCase,
    /// Right database + query.
    pub right: QueryCase,
    /// The attribute matches `M_attr`.
    pub attribute_matches: AttributeMatches,
    /// Stage-1 output: provenance and canonical relations.
    pub prepared: PreparedComparison,
    /// The initial probabilistic tuple mapping `M_tuple`.
    pub initial_mapping: TupleMapping,
    /// The gold standard: true explanations and true evidence mapping.
    pub gold: ExplanationSet,
}

impl GeneratedCase {
    /// Dataset statistics in the style of Figure 4 of the paper.
    pub fn statistics(&self) -> CaseStatistics {
        CaseStatistics {
            name: self.name.clone(),
            left_rows: self.left.database.total_rows(),
            right_rows: self.right.database.total_rows(),
            left_provenance: self.prepared.left_output.provenance.len(),
            right_provenance: self.prepared.right_output.provenance.len(),
            left_canonical: self.prepared.left_canonical.len(),
            right_canonical: self.prepared.right_canonical.len(),
            initial_matches: self.initial_mapping.len(),
            gold_evidence: self.gold.evidence.len(),
            gold_explanations: self.gold.len(),
        }
    }
}

/// Figure-4-style statistics of one generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseStatistics {
    /// Case name.
    pub name: String,
    /// Total rows in the left database (`N`).
    pub left_rows: usize,
    /// Total rows in the right database (`N`).
    pub right_rows: usize,
    /// Left provenance size `|P1|`.
    pub left_provenance: usize,
    /// Right provenance size `|P2|`.
    pub right_provenance: usize,
    /// Left canonical size `|T1|`.
    pub left_canonical: usize,
    /// Right canonical size `|T2|`.
    pub right_canonical: usize,
    /// Initial mapping size `|M_tuple|`.
    pub initial_matches: usize,
    /// Gold evidence size `|M*_tuple|`.
    pub gold_evidence: usize,
    /// Gold explanation count `|E|`.
    pub gold_explanations: usize,
}

/// Assembles a [`GeneratedCase`] from its raw parts: runs Stage 1, computes
/// the true correspondence from per-canonical-tuple entity keys, builds the
/// gold standard, and generates the calibrated initial mapping.
///
/// `entity_key` maps a canonical tuple's key values to an entity identifier
/// string; tuples of the two relations with equal identifiers correspond.
pub fn assemble_case(
    name: impl Into<String>,
    left: QueryCase,
    right: QueryCase,
    attribute_matches: AttributeMatches,
    mapping_options: &MappingOptions,
    left_entity_key: impl Fn(&explain3d_core::prelude::CanonicalTuple) -> String,
    right_entity_key: impl Fn(&explain3d_core::prelude::CanonicalTuple) -> String,
) -> Result<GeneratedCase, RelationError> {
    let prepared = prepare(&left, &right, &attribute_matches)?;
    let left_keys: Vec<String> =
        prepared.left_canonical.tuples.iter().map(&left_entity_key).collect();
    let right_keys: Vec<String> =
        prepared.right_canonical.tuples.iter().map(&right_entity_key).collect();
    let true_pairs = pairs_from_entity_keys(&left_keys, &right_keys);
    let gold = gold_from_truth(&prepared.left_canonical, &prepared.right_canonical, &true_pairs);

    let gold_pairs: HashSet<(usize, usize)> =
        gold.evidence.matches().iter().map(|m| (m.left, m.right)).collect();
    let initial_mapping = build_initial_mapping(
        &prepared.left_canonical,
        &prepared.right_canonical,
        &attribute_matches,
        mapping_options,
        Some(&gold_pairs),
    );

    Ok(GeneratedCase {
        name: name.into(),
        left,
        right,
        attribute_matches,
        prepared,
        initial_mapping,
        gold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_core::prelude::QueryCase;
    use explain3d_relation::prelude::*;
    use explain3d_relation::row;

    fn tiny_case() -> (QueryCase, QueryCase, AttributeMatches) {
        let mut db1 = Database::new();
        db1.add(
            Relation::with_rows(
                "L",
                Schema::from_pairs(&[("name", ValueType::Str), ("v", ValueType::Int)]),
                vec![row!["alpha", 1], row!["beta", 2], row!["gamma", 3]],
            )
            .unwrap(),
        );
        let mut db2 = Database::new();
        db2.add(
            Relation::with_rows(
                "R",
                Schema::from_pairs(&[("name", ValueType::Str), ("v", ValueType::Int)]),
                vec![row!["alpha", 1], row!["beta", 5]],
            )
            .unwrap(),
        );
        let q1 = Query::scan("L").named("Q1").sum("v");
        let q2 = Query::scan("R").named("Q2").sum("v");
        (
            QueryCase::new(db1, q1),
            QueryCase::new(db2, q2),
            AttributeMatches::single_equivalent("name", "name"),
        )
    }

    #[test]
    fn assemble_builds_gold_and_mapping() {
        let (l, r, m) = tiny_case();
        let case = assemble_case(
            "tiny",
            l,
            r,
            m,
            &MappingOptions::default(),
            |t| t.key_text().to_ascii_lowercase(),
            |t| t.key_text().to_ascii_lowercase(),
        )
        .unwrap();
        assert_eq!(case.prepared.left_canonical.len(), 3);
        assert_eq!(case.prepared.right_canonical.len(), 2);
        // Gold: gamma missing on the right, beta impact mismatch.
        assert_eq!(case.gold.evidence.len(), 2);
        assert_eq!(case.gold.provenance.len(), 1);
        assert_eq!(case.gold.value.len(), 1);
        assert!(!case.initial_mapping.is_empty());

        let stats = case.statistics();
        assert_eq!(stats.left_rows, 3);
        assert_eq!(stats.right_rows, 2);
        assert_eq!(stats.left_canonical, 3);
        assert_eq!(stats.gold_explanations, 2);
        assert_eq!(stats.name, "tiny");
    }
}
