//! The academic-data simulator.
//!
//! The paper's first real-world experiment compares university course
//! catalogs (UMass-Amherst and OSU) against the National Center for Education
//! Statistics (NCES) dataset. The raw catalogs are not redistributable, so
//! this module generates *structurally equivalent* pairs: a campus catalog
//! that lists one row per (major, degree) and an NCES-style pair of tables
//! with per-program bachelor-degree counts. The phenomena that drive the
//! paper's explanations are reproduced:
//!
//! * programs offering several degree types are counted once per degree by
//!   the campus COUNT query but carry a single `bach_degr` value in NCES;
//! * associate-degree programs exist only in the campus catalog;
//! * a fraction of NCES `bach_degr` values are simply wrong;
//! * a fraction of program names differ between the sources (renames), which
//!   stresses the initial tuple mapping exactly as the paper observed.

use crate::rng::rngs::StdRng;
use crate::rng::{Rng, SeedableRng};
use crate::scenario::{assemble_case, GeneratedCase};
use crate::vocab::{pick, program_name, SUBJECT_WORDS};
use explain3d_core::prelude::{AttributeMatches, MappingOptions, QueryCase};
use explain3d_relation::prelude::*;

/// Configuration of the academic simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct AcademicConfig {
    /// Institution name used in the NCES-style `School` table and the query.
    pub university: String,
    /// Number of undergraduate programs in the campus catalog.
    pub num_programs: usize,
    /// Fraction of programs that offer two degree types (counted twice by Q1).
    pub multi_degree_fraction: f64,
    /// Fraction of programs that are associate-degree only and therefore
    /// missing from the NCES data.
    pub associate_only_fraction: f64,
    /// Fraction of NCES `bach_degr` values that are wrong.
    pub value_error_fraction: f64,
    /// Fraction of programs whose NCES name differs from the campus name.
    pub rename_fraction: f64,
    /// Number of unrelated universities added to the NCES tables (noise that
    /// the query's selection must filter out).
    pub other_universities: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AcademicConfig {
    fn default() -> Self {
        AcademicConfig {
            university: "UMass-Amherst".to_string(),
            num_programs: 113,
            multi_degree_fraction: 0.15,
            associate_only_fraction: 0.12,
            value_error_fraction: 0.05,
            rename_fraction: 0.08,
            other_universities: 30,
            seed: 17,
        }
    }
}

impl AcademicConfig {
    /// A UMass-Amherst-sized configuration (≈113 programs, Figure 4).
    pub fn umass() -> Self {
        AcademicConfig::default()
    }

    /// An OSU-sized configuration (≈282 programs, Figure 4).
    pub fn osu() -> Self {
        AcademicConfig {
            university: "OSU".to_string(),
            num_programs: 282,
            seed: 23,
            ..Default::default()
        }
    }

    /// A descriptive case name.
    pub fn name(&self) -> String {
        format!("academic {} vs NCES ({} programs)", self.university, self.num_programs)
    }
}

/// Generates the two databases and queries without running Stage 1.
pub fn generate_raw(config: &AcademicConfig) -> (QueryCase, QueryCase, AttributeMatches) {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Ground-truth program list.
    struct Program {
        campus_name: String,
        nces_name: String,
        degrees: Vec<&'static str>,
        associate_only: bool,
    }
    let mut programs = Vec::with_capacity(config.num_programs);
    for i in 0..config.num_programs {
        let campus_name = program_name(&mut rng, i);
        let associate_only = rng.gen_bool(config.associate_only_fraction);
        let degrees: Vec<&'static str> = if associate_only {
            vec!["Associate degree"]
        } else if rng.gen_bool(config.multi_degree_fraction) {
            vec!["B.S.", "B.A."]
        } else {
            vec![if rng.gen_bool(0.5) { "B.S." } else { "B.A." }]
        };
        let nces_name = if rng.gen_bool(config.rename_fraction) {
            // Rename: replace the leading word with a different subject word.
            let replacement = pick(&mut rng, SUBJECT_WORDS);
            let mut parts: Vec<&str> = campus_name.split_whitespace().collect();
            if !parts.is_empty() {
                parts[0] = replacement;
            }
            parts.join(" ")
        } else {
            campus_name.clone()
        };
        programs.push(Program { campus_name, nces_name, degrees, associate_only });
    }

    // Campus catalog: Major(major, degree, school).
    let mut major_rel = Relation::new(
        "Major",
        Schema::from_pairs(&[
            ("major", ValueType::Str),
            ("degree", ValueType::Str),
            ("school", ValueType::Str),
        ]),
    );
    for p in &programs {
        for d in &p.degrees {
            major_rel
                .insert(Row::new(vec![
                    Value::str(p.campus_name.clone()),
                    Value::str(*d),
                    Value::str(format!("{} school", pick(&mut rng, SUBJECT_WORDS))),
                ]))
                .expect("arity");
        }
    }
    let mut campus_db = Database::new();
    campus_db.add(major_rel);
    let q1 = Query::scan("Major").named("Q1").count("major");

    // NCES: School(id, univ_name, city, url) + Stats(id, program, bach_degr).
    let mut school_rel = Relation::new(
        "School",
        Schema::from_pairs(&[
            ("id", ValueType::Int),
            ("univ_name", ValueType::Str),
            ("city", ValueType::Str),
            ("url", ValueType::Str),
        ]),
    );
    let mut stats_rel = Relation::new(
        "Stats",
        Schema::from_pairs(&[
            ("id", ValueType::Int),
            ("program", ValueType::Str),
            ("bach_degr", ValueType::Int),
        ]),
    );
    let target_id = 1i64;
    school_rel
        .insert(Row::new(vec![
            Value::Int(target_id),
            Value::str(config.university.clone()),
            Value::str("amherst"),
            Value::str("https://example.edu"),
        ]))
        .expect("arity");
    for p in &programs {
        if p.associate_only {
            continue; // NCES only tracks bachelor programs.
        }
        let true_count = p.degrees.len() as i64;
        let reported = if rng.gen_bool(config.value_error_fraction) {
            // Wrong bachelor-degree count.
            (true_count + rng.gen_range(1..=2)) % 4 + 1
        } else if p.degrees.len() > 1 && rng.gen_bool(0.7) {
            // The paper's signature discrepancy: multi-degree programs are
            // usually reported with a single bachelor degree in NCES.
            1
        } else {
            true_count
        };
        stats_rel
            .insert(Row::new(vec![
                Value::Int(target_id),
                Value::str(p.nces_name.clone()),
                Value::Int(reported),
            ]))
            .expect("arity");
    }
    // Noise: programs of other universities (filtered out by the query).
    for u in 0..config.other_universities {
        let uid = 100 + u as i64;
        school_rel
            .insert(Row::new(vec![
                Value::Int(uid),
                Value::str(format!("University {u}")),
                Value::str("elsewhere"),
                Value::str("https://other.edu"),
            ]))
            .expect("arity");
        for k in 0..rng.gen_range(3..12) {
            stats_rel
                .insert(Row::new(vec![
                    Value::Int(uid),
                    Value::str(program_name(&mut rng, 10_000 + u * 100 + k)),
                    Value::Int(rng.gen_range(1..=3)),
                ]))
                .expect("arity");
        }
    }
    let mut nces_db = Database::new();
    nces_db.add(school_rel).add(stats_rel);
    let q2 = Query::scan("School")
        .named("Q2")
        .join("Stats", "School.id", "Stats.id")
        .filter(Expr::col("univ_name").eq(Expr::lit(config.university.clone())))
        .sum("bach_degr");

    // Figure 5: (Major.major) ⊑ (Stats.program).
    let matches = AttributeMatches::single_less_general("major", "program");

    (QueryCase::new(campus_db, q1), QueryCase::new(nces_db, q2), matches)
}

/// Generates a complete academic case with Stage-1 output, calibrated initial
/// mapping, and gold standard.
///
/// The gold correspondence links a campus program to the NCES program it was
/// generated from; renamed programs are still linked (the rename only makes
/// the *initial* mapping harder, as in the paper's observation about
/// "Foodservice Systems Administration" vs "Food Business Management").
pub fn generate(config: &AcademicConfig) -> GeneratedCase {
    let (left, right, matches) = generate_raw(config);

    // Rebuild the campus→NCES rename table to define entity keys.
    // Re-running the generator RNG would be fragile, so the correspondence is
    // recovered from the unique numeric suffix embedded in program names.
    let entity_key = |t: &explain3d_core::prelude::CanonicalTuple| -> String {
        let text = t.key_text().to_ascii_lowercase();
        // The trailing token is the unique program index added by
        // `program_name`, shared by both sides even after a rename.
        text.split_whitespace().last().unwrap_or(&text).to_string()
    };

    assemble_case(
        config.name(),
        left,
        right,
        matches,
        &MappingOptions::default(),
        entity_key,
        entity_key,
    )
    .expect("academic case assembly cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_core::prelude::Side;
    use explain3d_relation::prelude::Value;

    #[test]
    fn queries_disagree_like_the_paper_example() {
        let case = generate(&AcademicConfig::umass());
        let (r1, r2) = case.prepared.results();
        // Q1 counts (major, degree) rows; Q2 sums NCES bachelor counts.
        let c1 = r1.as_i64().unwrap();
        let c2 = r2.as_i64().unwrap();
        assert!(c1 > 0 && c2 > 0);
        assert_ne!(c1, c2, "the generated catalogs should disagree");
        // The campus catalog over-counts relative to NCES (associate-only and
        // multi-degree programs), as in Example 1 (113 vs 90).
        assert!(c1 > c2);
    }

    #[test]
    fn statistics_are_in_the_figure_4_ballpark() {
        let case = generate(&AcademicConfig::umass());
        let stats = case.statistics();
        assert_eq!(stats.name, case.name);
        // 113 programs, some with two degrees -> a bit more provenance rows.
        assert!(stats.left_provenance >= 113);
        assert!(stats.left_provenance <= 160);
        // Canonicalisation merges multi-degree programs back to ~113.
        assert_eq!(stats.left_canonical, 113);
        // NCES provenance only contains the target university's programs.
        assert!(stats.right_provenance < 113);
        assert!(stats.initial_matches > 0);
        assert!(stats.gold_evidence > 0);
        assert!(stats.gold_explanations > 0);
    }

    #[test]
    fn gold_contains_associate_only_programs_as_provenance_explanations() {
        let case = generate(&AcademicConfig::umass());
        let left_prov = case.gold.provenance_tuples(Side::Left);
        assert!(!left_prov.is_empty());
        // Every associate-only campus program must be a gold provenance
        // explanation (it has no NCES counterpart).
        let assoc_count = case
            .prepared
            .left_canonical
            .tuples
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                t.representative
                    .values()
                    .iter()
                    .any(|v| matches!(v, Value::Str(s) if s.contains("Associate")))
            })
            .filter(|(i, _)| left_prov.contains(i))
            .count();
        assert!(assoc_count > 0);
    }

    #[test]
    fn osu_configuration_is_larger() {
        let umass = generate(&AcademicConfig::umass());
        let osu = generate(&AcademicConfig::osu());
        assert!(osu.prepared.left_canonical.len() > umass.prepared.left_canonical.len());
        assert_eq!(osu.prepared.left_canonical.len(), 282);
        assert!(osu.name.contains("OSU"));
    }

    #[test]
    fn noise_universities_stay_out_of_the_provenance() {
        let cfg = AcademicConfig { other_universities: 10, ..AcademicConfig::umass() };
        let case = generate(&cfg);
        // The NCES Stats table has noise rows, but the provenance is limited
        // to the target university by the join + selection.
        let total_stats_rows = case.right.database.get("Stats").unwrap().len();
        assert!(total_stats_rows > case.prepared.right_output.provenance.len());
    }
}
