//! # explain3d-datagen
//!
//! Workload generators for the Explain3D reproduction (VLDB 2019). The
//! paper's evaluation uses two real-world dataset pairs (university catalogs
//! vs. NCES, and two views over IMDb) plus a parametric synthetic generator.
//! The raw real-world datasets are not redistributable, so this crate ships
//! simulators that reproduce their *structure* and the phenomena Explain3D
//! must detect, together with exact gold standards:
//!
//! * [`synthetic`] — the Section 5.3 generator (`Table(id, match_attr, val)`,
//!   parameters `n`, `d`, `v`);
//! * [`academic`] — campus catalog vs. NCES-style statistics (UMass and OSU
//!   sized configurations);
//! * [`imdb`] — two differently-shaped views over a generated film corpus
//!   with lossy migration, ~5% injected errors, and the ten query templates;
//! * [`gold`] / [`scenario`] — gold-standard construction and the common
//!   [`scenario::GeneratedCase`] bundle (data + queries + Stage-1 output +
//!   calibrated initial mapping + gold explanations).

#![warn(missing_docs)]

pub mod academic;
pub mod gold;
pub mod imdb;
pub mod rng;
pub mod scenario;
pub mod synthetic;
pub mod vocab;

pub use academic::{generate as generate_academic, AcademicConfig};
pub use gold::{gold_from_truth, pairs_from_entity_keys};
pub use imdb::{generate_views, ImdbConfig, ImdbTemplate, ImdbViews, TemplateParam};
pub use scenario::{assemble_case, CaseStatistics, GeneratedCase};
pub use synthetic::{
    generate as generate_synthetic, generate_raw as generate_synthetic_raw, SyntheticConfig,
};
