//! The synthetic data generator of Section 5.3.
//!
//! Both datasets share the schema `Table(id, match_attr, val)` and the query
//! `SELECT SUM(val) FROM Table`. Generation follows the paper's three steps:
//!
//! 1. create `n` tuples with random attribute values and add them to both
//!    datasets (`match_attr` is a phrase of 5 random words from a vocabulary
//!    of `v` words, `val` is an integer in `[1, 10]`);
//! 2. randomly drop a fraction `d` of the tuples (from the second dataset);
//! 3. randomly corrupt the `val` attribute of a fraction `d` of the tuples
//!    (in the second dataset).

use crate::rng::rngs::StdRng;
use crate::rng::{Rng, SeedableRng};
use crate::scenario::{assemble_case, GeneratedCase};
use crate::vocab::synthetic_phrase;
use explain3d_core::prelude::{AttributeMatches, MappingOptions, QueryCase};
use explain3d_relation::prelude::*;

/// Configuration of the synthetic generator (the paper's `n`, `d`, `v`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of tuples `n`.
    pub num_tuples: usize,
    /// Difference ratio `d ∈ [0, 1)`: fraction dropped and fraction corrupted.
    pub difference_ratio: f64,
    /// Vocabulary size `v` for the `match_attr` phrases.
    pub vocabulary_size: usize,
    /// Number of words per phrase (the paper uses 5).
    pub words_per_phrase: usize,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            num_tuples: 1000,
            difference_ratio: 0.2,
            vocabulary_size: 1000,
            words_per_phrase: 5,
            seed: 42,
        }
    }
}

impl SyntheticConfig {
    /// Creates a configuration with the paper's main knobs.
    pub fn new(num_tuples: usize, difference_ratio: f64, vocabulary_size: usize) -> Self {
        SyntheticConfig { num_tuples, difference_ratio, vocabulary_size, ..Default::default() }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A descriptive name for the configuration.
    pub fn name(&self) -> String {
        format!(
            "synthetic n={} d={} v={}",
            self.num_tuples, self.difference_ratio, self.vocabulary_size
        )
    }
}

fn table_schema() -> Schema {
    Schema::from_pairs(&[
        ("id", ValueType::Int),
        ("match_attr", ValueType::Str),
        ("val", ValueType::Int),
    ])
}

/// Generates only the two databases and queries (no Stage-1 execution); used
/// when the caller wants to time the full pipeline itself.
pub fn generate_raw(config: &SyntheticConfig) -> (QueryCase, QueryCase, AttributeMatches) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.num_tuples;

    // Step 1: n shared tuples.
    let mut base: Vec<(i64, String, i64)> = Vec::with_capacity(n);
    for i in 0..n {
        let phrase = synthetic_phrase(&mut rng, config.vocabulary_size, config.words_per_phrase);
        let val = rng.gen_range(1..=10i64);
        base.push((i as i64, phrase, val));
    }

    let mut left_rel = Relation::new("Table", table_schema());
    for (id, phrase, val) in &base {
        left_rel
            .insert(Row::new(vec![Value::Int(*id), Value::str(phrase.clone()), Value::Int(*val)]))
            .expect("arity");
    }

    // Steps 2-3: drop and corrupt in the second dataset.
    let mut right_rel = Relation::new("Table", table_schema());
    for (id, phrase, val) in &base {
        if rng.gen_bool(config.difference_ratio) {
            continue; // dropped
        }
        let mut v = *val;
        if rng.gen_bool(config.difference_ratio) {
            // Corrupt to a different value in [1, 10].
            let mut corrupted = rng.gen_range(1..=10i64);
            if corrupted == v {
                corrupted = (corrupted % 10) + 1;
            }
            v = corrupted;
        }
        right_rel
            .insert(Row::new(vec![Value::Int(*id), Value::str(phrase.clone()), Value::Int(v)]))
            .expect("arity");
    }

    let mut left_db = Database::new();
    left_db.add(left_rel);
    let mut right_db = Database::new();
    right_db.add(right_rel);

    let q1 = Query::scan("Table").named("Q1").sum("val");
    let q2 = Query::scan("Table").named("Q2").sum("val");
    let matches = AttributeMatches::single_equivalent("match_attr", "match_attr");

    (QueryCase::new(left_db, q1), QueryCase::new(right_db, q2), matches)
}

/// Generates a complete synthetic case: data, queries, Stage-1 output,
/// calibrated initial mapping, and gold standard.
pub fn generate(config: &SyntheticConfig) -> GeneratedCase {
    let (left, right, matches) = generate_raw(config);
    assemble_case(
        config.name(),
        left,
        right,
        matches,
        &MappingOptions::default(),
        |t| t.key_text().to_ascii_lowercase(),
        |t| t.key_text().to_ascii_lowercase(),
    )
    .expect("synthetic case assembly cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_core::prelude::Side;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig::new(50, 0.2, 100);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.left.database.total_rows(), b.left.database.total_rows());
        assert_eq!(a.right.database.total_rows(), b.right.database.total_rows());
        assert_eq!(a.gold.len(), b.gold.len());
        assert_eq!(a.initial_mapping.len(), b.initial_mapping.len());
    }

    #[test]
    fn sizes_follow_the_configuration() {
        let cfg = SyntheticConfig::new(200, 0.25, 500);
        let case = generate(&cfg);
        assert_eq!(case.left.database.total_rows(), 200);
        // Roughly d of the tuples are dropped (binomial, generous bounds).
        let right_rows = case.right.database.total_rows();
        assert!(right_rows < 200 && right_rows > 110, "right rows {right_rows}");
        // The two queries disagree.
        assert!(case.prepared.disagrees());
        assert_eq!(case.name, cfg.name());
    }

    #[test]
    fn gold_matches_injected_differences() {
        let cfg = SyntheticConfig::new(100, 0.3, 200).with_seed(7);
        let case = generate(&cfg);
        // Dropped tuples appear as left-side provenance explanations.
        let dropped = case.left.database.total_rows() - case.right.database.total_rows();
        assert_eq!(case.gold.provenance_tuples(Side::Left).len(), dropped);
        // There is at least one corrupted value for this seed/ratio.
        assert!(!case.gold.value.is_empty());
        // Every gold value explanation refers to a right-side tuple whose
        // impact really differs from its left counterpart.
        for v in &case.gold.value {
            assert_eq!(v.side, Side::Right);
            assert!((v.new_impact - v.old_impact).abs() > 1e-9);
        }
        // Evidence covers exactly the non-dropped tuples.
        assert_eq!(case.gold.evidence.len(), case.prepared.right_canonical.len());
    }

    #[test]
    fn zero_difference_ratio_produces_agreeing_queries() {
        let cfg = SyntheticConfig::new(60, 0.0, 100);
        let case = generate(&cfg);
        assert!(!case.prepared.disagrees());
        assert!(case.gold.is_empty());
    }

    #[test]
    fn smaller_vocabulary_produces_more_initial_matches() {
        let small_vocab = generate(&SyntheticConfig::new(150, 0.2, 20));
        let large_vocab = generate(&SyntheticConfig::new(150, 0.2, 5000));
        assert!(
            small_vocab.initial_mapping.len() > large_vocab.initial_mapping.len(),
            "small vocab {} vs large vocab {}",
            small_vocab.initial_mapping.len(),
            large_vocab.initial_mapping.len()
        );
    }
}
