//! Word lists and deterministic pseudo-random text helpers used by the
//! generators.

use crate::rng::rngs::StdRng;
use crate::rng::Rng;

/// Subject words used to build academic program names.
pub const SUBJECT_WORDS: &[&str] = &[
    "accounting",
    "anthropology",
    "architecture",
    "astronomy",
    "biochemistry",
    "biology",
    "business",
    "chemistry",
    "communication",
    "computer",
    "dance",
    "design",
    "economics",
    "education",
    "electrical",
    "engineering",
    "english",
    "environmental",
    "equine",
    "finance",
    "food",
    "french",
    "geography",
    "geology",
    "german",
    "history",
    "horticulture",
    "informatics",
    "italian",
    "japanese",
    "journalism",
    "kinesiology",
    "linguistics",
    "management",
    "marketing",
    "mathematics",
    "mechanical",
    "microbiology",
    "music",
    "neuroscience",
    "nursing",
    "nutrition",
    "philosophy",
    "physics",
    "politics",
    "psychology",
    "science",
    "sociology",
    "spanish",
    "statistics",
    "studies",
    "systems",
    "theatre",
    "turfgrass",
    "administration",
    "animal",
    "resource",
    "public",
    "health",
    "policy",
    "civil",
    "industrial",
    "materials",
    "aerospace",
];

/// College names used for the containment (⊑) attribute match.
pub const COLLEGE_NAMES: &[&str] = &[
    "College of Natural Sciences",
    "College of Engineering",
    "College of Computer Science",
    "School of Business",
    "College of Humanities",
    "College of Social Sciences",
    "School of Public Health",
    "College of Education",
    "School of Nursing",
    "College of Fine Arts",
];

/// Words used to build movie titles.
pub const TITLE_WORDS: &[&str] = &[
    "midnight",
    "shadow",
    "river",
    "garden",
    "empire",
    "silent",
    "crimson",
    "winter",
    "summer",
    "broken",
    "golden",
    "hidden",
    "last",
    "first",
    "lost",
    "city",
    "ocean",
    "mountain",
    "dream",
    "storm",
    "paper",
    "glass",
    "iron",
    "velvet",
    "electric",
    "distant",
    "burning",
    "frozen",
    "endless",
    "secret",
    "stolen",
    "forgotten",
    "wild",
    "quiet",
    "savage",
    "tender",
    "holy",
    "northern",
    "southern",
    "eastern",
    "western",
    "ancient",
    "modern",
    "final",
    "return",
];

/// First names for generated persons.
pub const FIRST_NAMES: &[&str] = &[
    "james",
    "mary",
    "robert",
    "patricia",
    "john",
    "jennifer",
    "michael",
    "linda",
    "david",
    "elizabeth",
    "william",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "sarah",
    "charles",
    "karen",
    "christopher",
    "nancy",
    "daniel",
    "lisa",
    "matthew",
    "betty",
    "anthony",
    "margaret",
    "mark",
    "sandra",
    "donald",
    "ashley",
    "steven",
    "kimberly",
    "paul",
    "emily",
    "andrew",
    "donna",
    "joshua",
    "michelle",
];

/// Last names for generated persons.
pub const LAST_NAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "perez",
    "thompson",
    "white",
    "harris",
    "sanchez",
    "clark",
    "ramirez",
    "lewis",
    "robinson",
    "walker",
    "young",
    "allen",
    "king",
    "wright",
    "scott",
    "torres",
    "nguyen",
    "hill",
    "flores",
];

/// Movie genres.
pub const GENRES: &[&str] = &[
    "comedy",
    "drama",
    "action",
    "thriller",
    "romance",
    "horror",
    "documentary",
    "animation",
    "crime",
    "adventure",
];

/// Countries.
pub const COUNTRIES: &[&str] =
    &["us", "uk", "france", "germany", "japan", "canada", "italy", "india"];

/// Picks one element of a slice uniformly at random.
pub fn pick<'a, T: ?Sized>(rng: &mut StdRng, items: &'a [&'a T]) -> &'a T {
    items[rng.gen_range(0..items.len())]
}

/// Builds a synthetic phrase of `words` words drawn from a numbered
/// vocabulary of size `vocab_size` (the paper's synthetic `match_attr`).
pub fn synthetic_phrase(rng: &mut StdRng, vocab_size: usize, words: usize) -> String {
    (0..words)
        .map(|_| format!("w{}", rng.gen_range(0..vocab_size.max(1))))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Builds a program name of 1–3 subject words.
pub fn program_name(rng: &mut StdRng, index: usize) -> String {
    let words = 1 + rng.gen_range(0..3usize.min(SUBJECT_WORDS.len()));
    let mut parts: Vec<String> = (0..words).map(|_| pick(rng, SUBJECT_WORDS).to_string()).collect();
    parts.dedup();
    // Suffix a stable index so program names are unique entities.
    format!("{} {}", parts.join(" "), index)
}

/// Builds a movie title of 2–3 title words plus a unique index.
pub fn movie_title(rng: &mut StdRng, index: usize) -> String {
    let words = 2 + rng.gen_range(0..2usize);
    let parts: Vec<String> = (0..words).map(|_| pick(rng, TITLE_WORDS).to_string()).collect();
    format!("{} {}", parts.join(" "), index)
}

/// Builds a person name `(first, last)` with a unique index in the last name.
pub fn person_name(rng: &mut StdRng, index: usize) -> (String, String) {
    (pick(rng, FIRST_NAMES).to_string(), format!("{} {}", pick(rng, LAST_NAMES), index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(synthetic_phrase(&mut a, 100, 5), synthetic_phrase(&mut b, 100, 5));
        assert_eq!(program_name(&mut a, 3), program_name(&mut b, 3));
        assert_eq!(movie_title(&mut a, 9), movie_title(&mut b, 9));
        assert_eq!(person_name(&mut a, 1), person_name(&mut b, 1));
    }

    #[test]
    fn phrases_have_the_requested_arity() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = synthetic_phrase(&mut rng, 50, 5);
        assert_eq!(p.split_whitespace().count(), 5);
        assert!(p.split_whitespace().all(|w| w.starts_with('w')));
        // Degenerate vocabulary still works.
        let p = synthetic_phrase(&mut rng, 0, 3);
        assert_eq!(p, "w0 w0 w0");
    }

    #[test]
    fn names_embed_unique_indexes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(program_name(&mut rng, 42).ends_with("42"));
        assert!(movie_title(&mut rng, 7).ends_with('7'));
        assert!(person_name(&mut rng, 5).1.ends_with('5'));
    }
}
