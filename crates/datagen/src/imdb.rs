//! The IMDb-style two-view generator.
//!
//! The paper builds a pair of disjoint datasets as two differently-shaped
//! views over the IMDb dump, loses some information in the first view by
//! design (one genre/country per movie), injects ~5% random errors with BART,
//! and evaluates ten query templates over both views. This module reproduces
//! that construction over a generated film corpus:
//!
//! * **View 1** — `Movie(movie_id, title, release_year, genre, country,
//!   runtimes, gross, budget)`, `Actor`, `Director`, `MovieActor`,
//!   `MovieDirector`;
//! * **View 2** — `Movie(m_id, title, release_year)`,
//!   `MovieInfo(m_id, info_type, info)`, `Person(p_id, name, gender, dob)`,
//!   `MoviePerson(m_id, p_id)`;
//! * lossy migration (view 1 keeps a single genre and country, and drops a
//!   fraction of movies and cast links), plus random numeric corruptions in
//!   both views;
//! * the ten query templates Q1–Q10 of Section 5.1.1.

use crate::rng::rngs::StdRng;
use crate::rng::{Rng, SeedableRng};
use crate::scenario::{assemble_case, GeneratedCase};
use crate::vocab::{movie_title, person_name, pick, COUNTRIES, GENRES};
use explain3d_core::prelude::{AttributeMatch, AttributeMatches, MappingOptions, QueryCase};
use explain3d_relation::prelude::*;

/// Configuration of the IMDb-style generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImdbConfig {
    /// Number of movies in the ground-truth corpus.
    pub num_movies: usize,
    /// Number of persons (actors and directors).
    pub num_persons: usize,
    /// Average number of actors per movie.
    pub actors_per_movie: usize,
    /// Fraction of randomly corrupted numeric cells in each view (~5% in the
    /// paper, injected with BART).
    pub error_rate: f64,
    /// Fraction of movies dropped from view 1 during the lossy migration.
    pub view1_drop_rate: f64,
    /// Release-year range (inclusive).
    pub year_range: (i64, i64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig {
            num_movies: 400,
            num_persons: 500,
            actors_per_movie: 3,
            error_rate: 0.05,
            view1_drop_rate: 0.04,
            year_range: (1970, 2003),
            seed: 11,
        }
    }
}

impl ImdbConfig {
    /// Scales the corpus so that per-year query provenance grows roughly
    /// linearly (used by the Figure 7c runtime sweep).
    pub fn with_movies(mut self, num_movies: usize) -> Self {
        self.num_movies = num_movies;
        self.num_persons = (num_movies * 5 / 4).max(10);
        self
    }
}

/// The ten query templates of Section 5.1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImdbTemplate {
    /// Q1: actors cast in short movies released in `year`.
    ActorsInShortMovies,
    /// Q2: movies directed by someone born in `year`.
    MoviesByDirectorBirthYear,
    /// Q3: number of comedy movies released in `year`.
    CountComedies,
    /// Q4: number of movies released in the US in `year`.
    CountUsMovies,
    /// Q5: total gross value for movies released in `year`.
    TotalGross,
    /// Q6: maximum gross value for movies released in `year`.
    MaxGross,
    /// Q7: the longest movie released in `year`.
    LongestMovie,
    /// Q8: average gross value for movies released in `year`.
    AvgGross,
    /// Q9: average runtime for movies released in `year`.
    AvgRuntime,
    /// Q10: actresses who have not starred in any `genre` movies.
    ActressesNotInGenre,
}

impl ImdbTemplate {
    /// All ten templates, in paper order.
    pub fn all() -> [ImdbTemplate; 10] {
        [
            ImdbTemplate::ActorsInShortMovies,
            ImdbTemplate::MoviesByDirectorBirthYear,
            ImdbTemplate::CountComedies,
            ImdbTemplate::CountUsMovies,
            ImdbTemplate::TotalGross,
            ImdbTemplate::MaxGross,
            ImdbTemplate::LongestMovie,
            ImdbTemplate::AvgGross,
            ImdbTemplate::AvgRuntime,
            ImdbTemplate::ActressesNotInGenre,
        ]
    }

    /// The template's paper label (`Q1`–`Q10`).
    pub fn label(&self) -> &'static str {
        match self {
            ImdbTemplate::ActorsInShortMovies => "Q1",
            ImdbTemplate::MoviesByDirectorBirthYear => "Q2",
            ImdbTemplate::CountComedies => "Q3",
            ImdbTemplate::CountUsMovies => "Q4",
            ImdbTemplate::TotalGross => "Q5",
            ImdbTemplate::MaxGross => "Q6",
            ImdbTemplate::LongestMovie => "Q7",
            ImdbTemplate::AvgGross => "Q8",
            ImdbTemplate::AvgRuntime => "Q9",
            ImdbTemplate::ActressesNotInGenre => "Q10",
        }
    }
}

/// A parameter instantiation for a template: a year for Q1–Q9, a genre for Q10.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateParam {
    /// A release year.
    Year(i64),
    /// A genre name.
    Genre(String),
}

/// The generated pair of views (databases), reusable across templates.
#[derive(Debug, Clone)]
pub struct ImdbViews {
    /// View 1 (wide movie table + separate actor/director tables).
    pub view1: Database,
    /// View 2 (narrow movie table + key/value MovieInfo + unified Person).
    pub view2: Database,
    config: ImdbConfig,
}

struct MovieRec {
    id: i64,
    title: String,
    year: i64,
    genres: Vec<String>,
    countries: Vec<String>,
    runtime: i64,
    gross: i64,
    budget: i64,
}

struct PersonRec {
    id: i64,
    first: String,
    last: String,
    gender: &'static str,
    dob: i64,
    is_director: bool,
}

/// Generates the two views from a fresh ground-truth corpus.
pub fn generate_views(config: &ImdbConfig) -> ImdbViews {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // --- Ground-truth corpus. ---
    let movies: Vec<MovieRec> = (0..config.num_movies)
        .map(|i| {
            let num_genres = 1 + rng.gen_range(0..2usize);
            let mut genres: Vec<String> =
                (0..num_genres).map(|_| pick(&mut rng, GENRES).to_string()).collect();
            genres.dedup();
            let num_countries = 1 + rng.gen_range(0..2usize);
            let mut countries: Vec<String> =
                (0..num_countries).map(|_| pick(&mut rng, COUNTRIES).to_string()).collect();
            countries.dedup();
            MovieRec {
                id: i as i64,
                title: movie_title(&mut rng, i),
                year: rng.gen_range(config.year_range.0..=config.year_range.1),
                genres,
                countries,
                runtime: rng.gen_range(45..=200),
                gross: rng.gen_range(1..=500) * 100_000,
                budget: rng.gen_range(1..=200) * 100_000,
            }
        })
        .collect();
    let persons: Vec<PersonRec> = (0..config.num_persons)
        .map(|i| {
            let (first, last) = person_name(&mut rng, i);
            PersonRec {
                id: i as i64,
                first,
                last,
                gender: if rng.gen_bool(0.5) { "f" } else { "m" },
                dob: rng.gen_range(1930..=1985),
                is_director: rng.gen_bool(0.2),
            }
        })
        .collect();
    let directors: Vec<&PersonRec> = persons.iter().filter(|p| p.is_director).collect();
    let actors: Vec<&PersonRec> = persons.iter().filter(|p| !p.is_director).collect();

    let mut movie_actors: Vec<(i64, i64)> = Vec::new();
    let mut movie_directors: Vec<(i64, i64)> = Vec::new();
    for m in &movies {
        if !directors.is_empty() {
            movie_directors.push((m.id, directors[rng.gen_range(0..directors.len())].id));
        }
        for _ in 0..config.actors_per_movie {
            if !actors.is_empty() {
                movie_actors.push((m.id, actors[rng.gen_range(0..actors.len())].id));
            }
        }
    }
    movie_actors.sort();
    movie_actors.dedup();

    // Helper: corrupt a numeric value with probability `error_rate`.
    let corrupt = |rng: &mut StdRng, v: i64| -> i64 {
        if rng.gen_bool(config.error_rate) {
            let factor = rng.gen_range(2..=5);
            if rng.gen_bool(0.5) {
                v * factor
            } else {
                (v / factor).max(1)
            }
        } else {
            v
        }
    };

    // --- View 1 (lossy wide schema). ---
    let mut movie1 = Relation::new(
        "Movie",
        Schema::from_pairs(&[
            ("movie_id", ValueType::Int),
            ("title", ValueType::Str),
            ("release_year", ValueType::Int),
            ("genre", ValueType::Str),
            ("country", ValueType::Str),
            ("runtimes", ValueType::Int),
            ("gross", ValueType::Int),
            ("budget", ValueType::Int),
        ]),
    );
    for m in &movies {
        if rng.gen_bool(config.view1_drop_rate) {
            continue; // lost during migration
        }
        movie1
            .insert(Row::new(vec![
                Value::Int(m.id),
                Value::str(m.title.clone()),
                Value::Int(m.year),
                Value::str(m.genres[0].clone()),
                Value::str(m.countries[0].clone()),
                Value::Int(corrupt(&mut rng, m.runtime)),
                Value::Int(corrupt(&mut rng, m.gross)),
                Value::Int(m.budget),
            ]))
            .expect("arity");
    }
    let person_schema = |id_name: &str| {
        Schema::from_pairs(&[
            (id_name, ValueType::Int),
            ("firstname", ValueType::Str),
            ("lastname", ValueType::Str),
            ("gender", ValueType::Str),
            ("dob", ValueType::Int),
        ])
    };
    let mut actor1 = Relation::new("Actor", person_schema("actor_id"));
    let mut director1 = Relation::new("Director", person_schema("director_id"));
    for p in &persons {
        let row = Row::new(vec![
            Value::Int(p.id),
            Value::str(p.first.clone()),
            Value::str(p.last.clone()),
            Value::str(p.gender),
            Value::Int(p.dob),
        ]);
        if p.is_director {
            director1.insert(row).expect("arity");
        } else {
            actor1.insert(row).expect("arity");
        }
    }
    let mut movie_actor1 = Relation::new(
        "MovieActor",
        Schema::from_pairs(&[("movie_id", ValueType::Int), ("actor_id", ValueType::Int)]),
    );
    for &(m, a) in &movie_actors {
        if rng.gen_bool(config.error_rate) {
            continue; // dropped link
        }
        movie_actor1.insert(Row::new(vec![Value::Int(m), Value::Int(a)])).expect("arity");
    }
    let mut movie_director1 = Relation::new(
        "MovieDirector",
        Schema::from_pairs(&[("movie_id", ValueType::Int), ("director_id", ValueType::Int)]),
    );
    for &(m, d) in &movie_directors {
        movie_director1.insert(Row::new(vec![Value::Int(m), Value::Int(d)])).expect("arity");
    }
    let mut view1 = Database::new();
    view1.add(movie1).add(actor1).add(director1).add(movie_actor1).add(movie_director1);

    // --- View 2 (narrow schema with MovieInfo). ---
    let mut movie2 = Relation::new(
        "Movie",
        Schema::from_pairs(&[
            ("m_id", ValueType::Int),
            ("title", ValueType::Str),
            ("release_year", ValueType::Int),
        ]),
    );
    let mut info2 = Relation::new(
        "MovieInfo",
        Schema::from_pairs(&[
            ("m_id", ValueType::Int),
            ("info_type", ValueType::Str),
            ("info", ValueType::Str),
        ]),
    );
    for m in &movies {
        movie2
            .insert(Row::new(vec![
                Value::Int(m.id),
                Value::str(m.title.clone()),
                Value::Int(m.year),
            ]))
            .expect("arity");
        for g in &m.genres {
            info2
                .insert(Row::new(vec![
                    Value::Int(m.id),
                    Value::str("genre"),
                    Value::str(g.clone()),
                ]))
                .expect("arity");
        }
        for c in &m.countries {
            info2
                .insert(Row::new(vec![
                    Value::Int(m.id),
                    Value::str("country"),
                    Value::str(c.clone()),
                ]))
                .expect("arity");
        }
        for (ty, v) in [("runtimes", m.runtime), ("gross", m.gross), ("budget", m.budget)] {
            info2
                .insert(Row::new(vec![
                    Value::Int(m.id),
                    Value::str(ty),
                    Value::Int(corrupt(&mut rng, v)),
                ]))
                .expect("arity");
        }
    }
    let mut person2 = Relation::new(
        "Person",
        Schema::from_pairs(&[
            ("p_id", ValueType::Int),
            ("name", ValueType::Str),
            ("gender", ValueType::Str),
            ("dob", ValueType::Int),
        ]),
    );
    for p in &persons {
        person2
            .insert(Row::new(vec![
                Value::Int(p.id),
                Value::str(format!("{} {}", p.first, p.last)),
                Value::str(p.gender),
                Value::Int(p.dob),
            ]))
            .expect("arity");
    }
    let mut movie_person2 = Relation::new(
        "MoviePerson",
        Schema::from_pairs(&[("m_id", ValueType::Int), ("p_id", ValueType::Int)]),
    );
    for &(m, a) in &movie_actors {
        movie_person2.insert(Row::new(vec![Value::Int(m), Value::Int(a)])).expect("arity");
    }
    for &(m, d) in &movie_directors {
        movie_person2.insert(Row::new(vec![Value::Int(m), Value::Int(d)])).expect("arity");
    }
    let mut view2 = Database::new();
    view2.add(movie2).add(info2).add(person2).add(movie_person2);

    ImdbViews { view1, view2, config: *config }
}

impl ImdbViews {
    /// Instantiates a template on both views, returning the two queries and
    /// the attribute matches appropriate for the template's provenance.
    pub fn instantiate(
        &self,
        template: ImdbTemplate,
        param: &TemplateParam,
    ) -> (Query, Query, AttributeMatches) {
        let year = match param {
            TemplateParam::Year(y) => *y,
            TemplateParam::Genre(_) => 0,
        };
        let genre = match param {
            TemplateParam::Genre(g) => g.clone(),
            TemplateParam::Year(_) => "comedy".to_string(),
        };
        let title_match = AttributeMatches::single_equivalent("title", "title");
        let person_match = AttributeMatches::new(vec![AttributeMatch::equivalent_sets(
            vec!["firstname".to_string(), "lastname".to_string()],
            vec!["name".to_string()],
        )]);

        // Movie-level source expressions with the year filter.
        let movie1_year =
            QueryExpr::scan("Movie").filter(Expr::col("release_year").eq(Expr::lit(year)));
        let movie2_year =
            QueryExpr::scan("Movie").filter(Expr::col("release_year").eq(Expr::lit(year)));
        // View-2 MovieInfo restricted to one info type.
        let info = |ty: &str| {
            QueryExpr::scan("MovieInfo").filter(Expr::col("info_type").eq(Expr::lit(ty)))
        };

        match template {
            ImdbTemplate::ActorsInShortMovies => {
                let q1 = Query::over(
                    movie1_year
                        .clone()
                        .filter(Expr::col("runtimes").lt(Expr::lit(80)))
                        .join_on(
                            QueryExpr::scan("MovieActor"),
                            "Movie.movie_id",
                            "MovieActor.movie_id",
                        )
                        .join_on(QueryExpr::scan("Actor"), "MovieActor.actor_id", "Actor.actor_id"),
                )
                .named("Q1-v1")
                .select(["firstname", "lastname"]);
                let q2 = Query::over(
                    movie2_year
                        .clone()
                        .join_on(info("runtimes"), "Movie.m_id", "MovieInfo.m_id")
                        .filter(Expr::col("info").lt(Expr::lit(80)))
                        .join_on(QueryExpr::scan("MoviePerson"), "Movie.m_id", "MoviePerson.m_id")
                        .join_on(QueryExpr::scan("Person"), "MoviePerson.p_id", "Person.p_id"),
                )
                .named("Q1-v2")
                .select(["name"]);
                (q1, q2, person_match)
            }
            ImdbTemplate::MoviesByDirectorBirthYear => {
                let q1 = Query::over(
                    QueryExpr::scan("Director")
                        .filter(Expr::col("dob").eq(Expr::lit(year)))
                        .join_on(
                            QueryExpr::scan("MovieDirector"),
                            "Director.director_id",
                            "MovieDirector.director_id",
                        )
                        .join_on(
                            QueryExpr::scan("Movie"),
                            "MovieDirector.movie_id",
                            "Movie.movie_id",
                        ),
                )
                .named("Q2-v1")
                .select(["title"]);
                let q2 = Query::over(
                    QueryExpr::scan("Person")
                        .filter(Expr::col("dob").eq(Expr::lit(year)))
                        .join_on(QueryExpr::scan("MoviePerson"), "Person.p_id", "MoviePerson.p_id")
                        .join_on(QueryExpr::scan("Movie"), "MoviePerson.m_id", "Movie.m_id"),
                )
                .named("Q2-v2")
                .select(["title"]);
                (q1, q2, title_match)
            }
            ImdbTemplate::CountComedies | ImdbTemplate::CountUsMovies => {
                let (ty, value) = if template == ImdbTemplate::CountComedies {
                    ("genre", "comedy")
                } else {
                    ("country", "us")
                };
                let q1 =
                    Query::over(movie1_year.clone().filter(Expr::col(ty).eq(Expr::lit(value))))
                        .named("Q3-v1")
                        .count("title");
                let q2 = Query::over(movie2_year.clone().join_on(
                    info(ty).filter(Expr::col("info").eq(Expr::lit(value))),
                    "Movie.m_id",
                    "MovieInfo.m_id",
                ))
                .named("Q3-v2")
                .count("title");
                (q1, q2, title_match)
            }
            ImdbTemplate::TotalGross
            | ImdbTemplate::MaxGross
            | ImdbTemplate::AvgGross
            | ImdbTemplate::LongestMovie
            | ImdbTemplate::AvgRuntime => {
                let (attr, ty) = match template {
                    ImdbTemplate::LongestMovie | ImdbTemplate::AvgRuntime => {
                        ("runtimes", "runtimes")
                    }
                    _ => ("gross", "gross"),
                };
                let b1 = Query::over(movie1_year.clone()).named("Qn-v1");
                let b2 = Query::over(movie2_year.clone().join_on(
                    info(ty),
                    "Movie.m_id",
                    "MovieInfo.m_id",
                ))
                .named("Qn-v2");
                let (q1, q2) = match template {
                    ImdbTemplate::TotalGross => (b1.sum(attr), b2.sum("info")),
                    ImdbTemplate::MaxGross | ImdbTemplate::LongestMovie => {
                        (b1.max(attr), b2.max("info"))
                    }
                    _ => (b1.avg(attr), b2.avg("info")),
                };
                (q1, q2, title_match)
            }
            ImdbTemplate::ActressesNotInGenre => {
                let genre_movies_1 = QueryExpr::scan("Movie")
                    .filter(Expr::col("genre").eq(Expr::lit(genre.clone())))
                    .join_on(
                        QueryExpr::scan("MovieActor"),
                        "Movie.movie_id",
                        "MovieActor.movie_id",
                    );
                let q1 = Query::over(
                    QueryExpr::scan("Actor")
                        .filter(Expr::col("gender").eq(Expr::lit("f")))
                        .anti_join(genre_movies_1, "actor_id", "MovieActor.actor_id"),
                )
                .named("Q10-v1")
                .select(["firstname", "lastname"]);
                let genre_movies_2 = info("genre")
                    .filter(Expr::col("info").eq(Expr::lit(genre)))
                    .join_on(QueryExpr::scan("MoviePerson"), "MovieInfo.m_id", "MoviePerson.m_id");
                let q2 = Query::over(
                    QueryExpr::scan("Person")
                        .filter(Expr::col("gender").eq(Expr::lit("f")))
                        .anti_join(genre_movies_2, "p_id", "MoviePerson.p_id"),
                )
                .named("Q10-v2")
                .select(["name"]);
                (q1, q2, person_match)
            }
        }
    }

    /// Builds a complete generated case for one template instantiation.
    pub fn case(&self, template: ImdbTemplate, param: &TemplateParam) -> GeneratedCase {
        let (q1, q2, matches) = self.instantiate(template, param);
        let left = QueryCase::new(self.view1.clone(), q1);
        let right = QueryCase::new(self.view2.clone(), q2);
        // Entity keys: canonical key text with separators and case removed,
        // so "james | smith 3" (firstname, lastname) equals "james smith 3"
        // (name) and titles compare directly.
        let entity_key = |t: &explain3d_core::prelude::CanonicalTuple| -> String {
            t.key_text().to_ascii_lowercase().chars().filter(|c| c.is_alphanumeric()).collect()
        };
        assemble_case(
            format!("imdb {} {:?}", template.label(), param),
            left,
            right,
            matches,
            &MappingOptions::default(),
            entity_key,
            entity_key,
        )
        .expect("imdb case assembly cannot fail")
    }

    /// A default parameter for a template: a mid-range year, or "comedy".
    pub fn default_param(&self, template: ImdbTemplate, instance: u64) -> TemplateParam {
        match template {
            ImdbTemplate::ActressesNotInGenre => {
                let idx = (instance as usize) % GENRES.len();
                TemplateParam::Genre(GENRES[idx].to_string())
            }
            _ => {
                let span = (self.config.year_range.1 - self.config.year_range.0).max(1);
                TemplateParam::Year(self.config.year_range.0 + (instance as i64 % span))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_views() -> ImdbViews {
        generate_views(&ImdbConfig { num_movies: 120, num_persons: 150, ..Default::default() })
    }

    #[test]
    fn views_have_the_expected_schemas() {
        let views = small_views();
        assert!(views.view1.get("Movie").is_ok());
        assert!(views.view1.get("Actor").is_ok());
        assert!(views.view1.get("MovieDirector").is_ok());
        assert!(views.view2.get("MovieInfo").is_ok());
        assert!(views.view2.get("Person").is_ok());
        // View 2 keeps every movie; view 1 loses a few.
        let m1 = views.view1.get("Movie").unwrap().len();
        let m2 = views.view2.get("Movie").unwrap().len();
        assert_eq!(m2, 120);
        assert!(m1 <= m2);
        // MovieInfo stores one row per info item (genres + countries + 3 numerics).
        assert!(views.view2.get("MovieInfo").unwrap().len() >= 5 * m2);
    }

    #[test]
    fn count_template_runs_and_may_disagree() {
        let views = small_views();
        let case = views.case(ImdbTemplate::CountComedies, &TemplateParam::Year(1999));
        let (r1, r2) = case.prepared.results();
        assert!(r1.as_i64().is_some());
        assert!(r2.as_i64().is_some());
        // Gold standard and initial mapping are consistent with canonical sizes.
        assert!(case.gold.evidence.len() <= case.prepared.left_canonical.len());
        assert!(case.gold.evidence.len() <= case.prepared.right_canonical.len());
    }

    #[test]
    fn aggregate_templates_produce_numeric_results() {
        let views = small_views();
        for template in [
            ImdbTemplate::TotalGross,
            ImdbTemplate::MaxGross,
            ImdbTemplate::AvgGross,
            ImdbTemplate::LongestMovie,
            ImdbTemplate::AvgRuntime,
        ] {
            let case = views.case(template, &TemplateParam::Year(1985));
            let (r1, r2) = case.prepared.results();
            assert!(r1.as_f64().is_some() || r1.is_null(), "{template:?} view1 result {r1:?}");
            assert!(r2.as_f64().is_some() || r2.is_null(), "{template:?} view2 result {r2:?}");
        }
    }

    #[test]
    fn person_templates_use_the_person_attribute_match() {
        let views = small_views();
        let (q1, q2, matches) =
            views.instantiate(ImdbTemplate::ActorsInShortMovies, &TemplateParam::Year(1990));
        assert!(matches.left_attrs().contains(&"firstname".to_string()));
        assert!(matches.right_attrs().contains(&"name".to_string()));
        assert!(q1.to_string().contains("Actor"));
        assert!(q2.to_string().contains("Person"));

        // Person entity keys line up across the two different name encodings:
        // with no injected errors or dropped links, the first year that has a
        // short movie must yield matching actor tuples on both sides.
        let clean = generate_views(&ImdbConfig {
            num_movies: 200,
            num_persons: 250,
            error_rate: 0.0,
            view1_drop_rate: 0.0,
            ..Default::default()
        });
        let mut found = false;
        for year in 1970..2004 {
            let case = clean.case(ImdbTemplate::ActorsInShortMovies, &TemplateParam::Year(year));
            if !case.prepared.left_canonical.is_empty() {
                assert!(
                    !case.gold.evidence.is_empty(),
                    "clean views must have aligned person keys for year {year}"
                );
                found = true;
                break;
            }
        }
        assert!(found, "no year with short movies in the generated corpus");
    }

    #[test]
    fn anti_join_template_runs() {
        let views = small_views();
        let case =
            views.case(ImdbTemplate::ActressesNotInGenre, &TemplateParam::Genre("comedy".into()));
        // Non-aggregate query: provenance impacts are all 1.
        assert!(case.prepared.left_output.provenance.tuples.iter().all(|t| t.impact == 1.0));
        assert!(!case.prepared.right_canonical.is_empty());
    }

    #[test]
    fn default_params_cycle_through_years_and_genres() {
        let views = small_views();
        let p0 = views.default_param(ImdbTemplate::CountComedies, 0);
        let p1 = views.default_param(ImdbTemplate::CountComedies, 1);
        assert_ne!(p0, p1);
        let g = views.default_param(ImdbTemplate::ActressesNotInGenre, 3);
        assert!(matches!(g, TemplateParam::Genre(_)));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_views(&ImdbConfig::default());
        let b = generate_views(&ImdbConfig::default());
        assert_eq!(a.view1.get("Movie").unwrap().len(), b.view1.get("Movie").unwrap().len());
        assert_eq!(
            a.view2.get("MovieInfo").unwrap().len(),
            b.view2.get("MovieInfo").unwrap().len()
        );
    }

    #[test]
    fn scaling_helper_grows_the_corpus() {
        let small = ImdbConfig::default().with_movies(100);
        let large = ImdbConfig::default().with_movies(400);
        assert!(large.num_movies > small.num_movies);
        assert!(large.num_persons > small.num_persons);
    }
}
