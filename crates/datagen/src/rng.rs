//! Minimal deterministic PRNG with a `rand`-compatible surface.
//!
//! The build environment has no access to crates.io, so the `rand` crate is
//! stubbed with this module: a [`StdRng`] driven by SplitMix64 seeding into
//! xoshiro256++, exposing exactly the API the generators use
//! (`seed_from_u64`, `gen_range`, `gen_bool`). Sequences are deterministic
//! per seed and stable across platforms, which is all the workload
//! generators require.

use std::ops::{Range, RangeInclusive};

/// Deterministic pseudo-random generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// Seeding constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..bound` (`bound > 0`) via Lemire-style rejection.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }
}

/// Types `gen_range` can sample uniformly.
pub trait SampleUniform: Copy {
    /// Uniform sample from the inclusive interval `[lo, hi]`.
    fn sample_inclusive(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
    /// The predecessor of a value (for converting exclusive upper bounds).
    fn prev(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range called with an empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as Self;
                }
                (lo as i128 + rng.bounded(span + 1) as i128) as Self
            }
            fn prev(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_sample_uniform!(i32, i64, u32, u64, usize);

/// Ranges `gen_range` accepts, mirroring `rand`'s argument shapes.
pub trait SampleRange<T> {
    /// The inclusive `[lo, hi]` bounds of the range.
    fn bounds(self) -> (T, T);
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn bounds(self) -> (T, T) {
        // Mirror `rand`: an empty range is a caller bug, not wrap-around.
        assert!(self.start < self.end, "cannot sample empty range");
        (self.start, self.end.prev())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        self.into_inner()
    }
}

/// Random-value methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Uniform sample from `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Bernoulli trial with success probability `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        T::sample_inclusive(self, lo, hi)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        // 53 random bits → uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Drop-in stand-in for the `rand::rngs` module path.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
            assert_eq!(a.gen_bool(0.3), b.gen_bool(0.3));
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..100).any(|_| a.gen_range(0..1000usize) != c.gen_range(0..1000usize));
        assert!(differs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(1..=10i64);
            assert!((1..=10).contains(&v));
            let w = rng.gen_range(3..12usize);
            assert!((3..12).contains(&w));
            let single = rng.gen_range(5..6i32);
            assert_eq!(single, 5);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics_like_rand() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(0..0usize);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        // p = 0.5 should produce both outcomes over a long run.
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..=700).contains(&heads));
    }
}
