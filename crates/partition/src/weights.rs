//! Edge re-weighting for the graph-partitioning objective (Section 4).
//!
//! Cutting a high-probability tuple match hurts the Explain3D objective far
//! more than cutting several low-probability matches, so the paper rescales
//! edge weights before partitioning: probabilities at or above `θ_h` are
//! multiplied by a reward factor `R`, probabilities at or below `θ_l` are
//! divided by `R`, and everything in between keeps its probability as weight.

/// Parameters of the re-weighting scheme. The paper uses
/// `θ_l = 0.1`, `θ_h = 0.9`, `R = 100`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightScheme {
    /// Low-probability threshold `θ_l`.
    pub theta_low: f64,
    /// High-probability threshold `θ_h`.
    pub theta_high: f64,
    /// Reward / penalty factor `R > 1`.
    pub reward: f64,
}

impl Default for WeightScheme {
    fn default() -> Self {
        WeightScheme { theta_low: 0.1, theta_high: 0.9, reward: 100.0 }
    }
}

impl WeightScheme {
    /// Creates a scheme, validating `0 ≤ θ_l < θ_h ≤ 1` and `R > 1`.
    pub fn new(theta_low: f64, theta_high: f64, reward: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&theta_low) && theta_low < theta_high && theta_high <= 1.0,
            "thresholds must satisfy 0 <= θ_l < θ_h <= 1"
        );
        assert!(reward > 1.0, "reward factor R must be greater than 1");
        WeightScheme { theta_low, theta_high, reward }
    }

    /// The edge weight assigned to a tuple match with probability `p`.
    pub fn weight(&self, p: f64) -> f64 {
        if p >= self.theta_high {
            p * self.reward
        } else if p <= self.theta_low {
            p / self.reward
        } else {
            p
        }
    }

    /// True when a match probability counts as "high" (candidates for the
    /// pre-partitioning merge of Algorithm 2).
    pub fn is_high(&self, p: f64) -> bool {
        p >= self.theta_high
    }

    /// True when a match probability counts as "low".
    pub fn is_low(&self, p: f64) -> bool {
        p <= self.theta_low
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let w = WeightScheme::default();
        assert_eq!(w.theta_low, 0.1);
        assert_eq!(w.theta_high, 0.9);
        assert_eq!(w.reward, 100.0);
    }

    #[test]
    fn weights_reward_high_and_penalise_low() {
        let w = WeightScheme::default();
        assert_eq!(w.weight(0.95), 95.0);
        assert_eq!(w.weight(0.9), 90.0);
        assert_eq!(w.weight(0.5), 0.5);
        assert!((w.weight(0.05) - 0.0005).abs() < 1e-12);
        assert!((w.weight(0.1) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn classification_helpers() {
        let w = WeightScheme::default();
        assert!(w.is_high(0.9));
        assert!(!w.is_high(0.89));
        assert!(w.is_low(0.1));
        assert!(!w.is_low(0.11));
    }

    #[test]
    fn high_probability_edges_dominate_many_low_ones() {
        // The rationale of the scheme: one 0.9 edge must outweigh several
        // 0.6 edges so the partitioner prefers cutting the latter.
        let w = WeightScheme::default();
        assert!(w.weight(0.9) > 10.0 * w.weight(0.6));
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn invalid_thresholds_rejected() {
        WeightScheme::new(0.9, 0.1, 100.0);
    }

    #[test]
    #[should_panic(expected = "reward")]
    fn invalid_reward_rejected() {
        WeightScheme::new(0.1, 0.9, 1.0);
    }
}
