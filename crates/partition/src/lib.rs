//! # explain3d-partition
//!
//! Graph-partitioning substrate for the Explain3D reproduction (VLDB 2019).
//! The paper's smart-partitioning optimiser (Section 4) splits the bipartite
//! mapping graph `G = (T1, T2, M_tuple)` into bounded-size sub-problems by
//! (1) re-weighting edges so high-probability matches are expensive to cut,
//! (2) pre-merging tuples connected by high-probability matches
//! (Algorithm 2), (3) running a standard graph partitioner on the coarse
//! graph, and (4) projecting the assignment back (Algorithm 3).
//!
//! The paper uses METIS/hMETIS as the off-the-shelf partitioner; this crate
//! ships its own size-bounded partitioner in the same multilevel spirit
//! (greedy graph growing plus FM boundary refinement).

#![warn(missing_docs)]

pub mod dsu;
pub mod graph;
pub mod packing;
pub mod partitioner;
pub mod prepartition;
pub mod smart;
pub mod weights;

pub use dsu::DisjointSet;
pub use graph::{Component, GraphEdge, MappingGraph, Node, Partition};
pub use packing::{pack_first_fit_decreasing, Packing};
pub use partitioner::{partition_weighted, PartitionerConfig, WeightedPartition};
pub use prepartition::{pre_partition, CoarseGraph};
pub use smart::{smart_partition, smart_partition_packed, PackedPartition, SmartPartitionConfig};
pub use weights::WeightScheme;
