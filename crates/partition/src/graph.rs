//! The bipartite mapping graph `G = (T1, T2, M_tuple)` and its partitions.

use crate::dsu::DisjointSet;
use std::collections::BTreeSet;

/// A weighted edge of the bipartite mapping graph: one tuple match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphEdge {
    /// Index of the left tuple (in `T1`).
    pub left: usize,
    /// Index of the right tuple (in `T2`).
    pub right: usize,
    /// Edge weight (the — possibly re-weighted — match probability).
    pub weight: f64,
}

/// A node of the bipartite graph, identified by side and index.
///
/// Internally nodes are also addressed by a single *global* id:
/// `0..left_count` for left nodes and `left_count..left_count+right_count`
/// for right nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Node {
    /// A tuple of `T1`.
    Left(usize),
    /// A tuple of `T2`.
    Right(usize),
}

/// The bipartite graph formed by two canonical relations and their tuple
/// matches (Problem 2 in the paper).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MappingGraph {
    left_count: usize,
    right_count: usize,
    edges: Vec<GraphEdge>,
}

impl MappingGraph {
    /// Creates a graph with `left_count` + `right_count` isolated nodes.
    pub fn new(left_count: usize, right_count: usize) -> Self {
        MappingGraph { left_count, right_count, edges: Vec::new() }
    }

    /// Number of left nodes (`|T1|`).
    pub fn left_count(&self) -> usize {
        self.left_count
    }

    /// Number of right nodes (`|T2|`).
    pub fn right_count(&self) -> usize {
        self.right_count
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.left_count + self.right_count
    }

    /// Number of edges (`|M_tuple|`).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edges.
    pub fn edges(&self) -> &[GraphEdge] {
        &self.edges
    }

    /// Adds an edge between left node `left` and right node `right`.
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, left: usize, right: usize, weight: f64) {
        assert!(left < self.left_count, "left node {left} out of range");
        assert!(right < self.right_count, "right node {right} out of range");
        self.edges.push(GraphEdge { left, right, weight });
    }

    /// Global node id of a left node.
    pub fn left_id(&self, left: usize) -> usize {
        left
    }

    /// Global node id of a right node.
    pub fn right_id(&self, right: usize) -> usize {
        self.left_count + right
    }

    /// Converts a global node id back into a [`Node`].
    pub fn node_of(&self, id: usize) -> Node {
        if id < self.left_count {
            Node::Left(id)
        } else {
            Node::Right(id - self.left_count)
        }
    }

    /// Adjacency list over global node ids: for each node, the list of
    /// `(neighbour id, edge index)` pairs.
    pub fn adjacency(&self) -> Vec<Vec<(usize, usize)>> {
        let mut adj = vec![Vec::new(); self.node_count()];
        for (e, edge) in self.edges.iter().enumerate() {
            let l = self.left_id(edge.left);
            let r = self.right_id(edge.right);
            adj[l].push((r, e));
            adj[r].push((l, e));
        }
        adj
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Splits the graph into maximal connected components. Isolated nodes
    /// form singleton components. Components are returned in deterministic
    /// order (by their smallest global node id).
    pub fn connected_components(&self) -> Vec<Component> {
        let n = self.node_count();
        let mut dsu = DisjointSet::new(n);
        for e in &self.edges {
            dsu.union(self.left_id(e.left), self.right_id(e.right));
        }
        let groups = dsu.groups();
        let mut comp_of = vec![usize::MAX; n];
        for (c, group) in groups.iter().enumerate() {
            for &id in group {
                comp_of[id] = c;
            }
        }
        let mut components: Vec<Component> = groups
            .iter()
            .map(|group| {
                let mut c = Component::default();
                for &id in group {
                    match self.node_of(id) {
                        Node::Left(i) => c.left.push(i),
                        Node::Right(j) => c.right.push(j),
                    }
                }
                c
            })
            .collect();
        for (e, edge) in self.edges.iter().enumerate() {
            let c = comp_of[self.left_id(edge.left)];
            components[c].edges.push(e);
        }
        components
    }

    /// Sum of the weights of edges whose endpoints live in different parts
    /// of `partition` (the objective of Problem 2).
    pub fn edge_cut(&self, partition: &Partition) -> f64 {
        self.edges
            .iter()
            .filter(|e| {
                partition.part_of(self.left_id(e.left)) != partition.part_of(self.right_id(e.right))
            })
            .map(|e| e.weight)
            .sum()
    }
}

/// A connected component: left/right tuple indexes plus the indexes of the
/// edges it contains.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Component {
    /// Left tuple indexes in the component.
    pub left: Vec<usize>,
    /// Right tuple indexes in the component.
    pub right: Vec<usize>,
    /// Indexes (into [`MappingGraph::edges`]) of the component's edges.
    pub edges: Vec<usize>,
}

impl Component {
    /// Number of tuples in the component (`|T1,i| + |T2,i|`).
    pub fn size(&self) -> usize {
        self.left.len() + self.right.len()
    }
}

/// An assignment of every node to one of `k` parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<usize>,
    k: usize,
}

impl Partition {
    /// Creates a partition from a per-node assignment vector.
    pub fn new(assignment: Vec<usize>, k: usize) -> Self {
        debug_assert!(assignment.iter().all(|&p| p < k.max(1)));
        Partition { assignment, k: k.max(1) }
    }

    /// Puts every node in part 0.
    pub fn single(node_count: usize) -> Self {
        Partition { assignment: vec![0; node_count], k: 1 }
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// The part of a global node id.
    pub fn part_of(&self, node_id: usize) -> usize {
        self.assignment[node_id]
    }

    /// The per-node assignment vector.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Sizes of each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &p in &self.assignment {
            sizes[p] += 1;
        }
        sizes
    }

    /// The largest part size.
    pub fn max_part_size(&self) -> usize {
        self.part_sizes().into_iter().max().unwrap_or(0)
    }

    /// Splits the partition into per-part left/right tuple index lists for a
    /// given graph. Empty parts are omitted.
    pub fn parts(&self, graph: &MappingGraph) -> Vec<Component> {
        let mut parts: Vec<Component> = vec![Component::default(); self.k];
        for id in 0..graph.node_count() {
            let p = self.assignment[id];
            match graph.node_of(id) {
                Node::Left(i) => parts[p].left.push(i),
                Node::Right(j) => parts[p].right.push(j),
            }
        }
        for (e, edge) in graph.edges().iter().enumerate() {
            let pl = self.assignment[graph.left_id(edge.left)];
            let pr = self.assignment[graph.right_id(edge.right)];
            if pl == pr {
                parts[pl].edges.push(e);
            }
        }
        parts.retain(|p| p.size() > 0);
        parts
    }

    /// The set of distinct non-empty parts.
    pub fn used_parts(&self) -> BTreeSet<usize> {
        self.assignment.iter().copied().collect()
    }

    /// Splits the partition into per-part lists of **connected components**
    /// (with respect to the part's own intra-part edges; isolated nodes
    /// become singleton components). Empty parts are omitted.
    ///
    /// A batch-packed part typically holds several independent components —
    /// packing merges small components to hit the target part count — and
    /// the MILP objective decomposes over them, so Stage 2 schedules
    /// *components*, not parts, on its worker pool. The partitioner already
    /// knows the component structure; exposing it here saves the solver a
    /// per-part union-find pass.
    ///
    /// Deterministic: parts in part-index order, components within a part
    /// ordered by their smallest global node id, nodes and edges in global
    /// order.
    pub fn component_parts(&self, graph: &MappingGraph) -> Vec<Vec<Component>> {
        let n = graph.node_count();
        let mut dsu = DisjointSet::new(n);
        for e in graph.edges() {
            let (l, r) = (graph.left_id(e.left), graph.right_id(e.right));
            if self.assignment[l] == self.assignment[r] {
                dsu.union(l, r);
            }
        }
        // One component per (part, root), in first-node order within the
        // part.
        let mut comp_of_root: Vec<usize> = vec![usize::MAX; n];
        let mut parts: Vec<Vec<Component>> = vec![Vec::new(); self.k];
        for id in 0..n {
            let p = self.assignment[id];
            let root = dsu.find(id);
            let comp = if comp_of_root[root] == usize::MAX {
                parts[p].push(Component::default());
                comp_of_root[root] = parts[p].len() - 1;
                parts[p].len() - 1
            } else {
                comp_of_root[root]
            };
            match graph.node_of(id) {
                Node::Left(i) => parts[p][comp].left.push(i),
                Node::Right(j) => parts[p][comp].right.push(j),
            }
        }
        for (e, edge) in graph.edges().iter().enumerate() {
            let (l, r) = (graph.left_id(edge.left), graph.right_id(edge.right));
            if self.assignment[l] == self.assignment[r] {
                let comp = comp_of_root[dsu.find(l)];
                parts[self.assignment[l]][comp].edges.push(e);
            }
        }
        parts.retain(|p| !p.is_empty());
        parts
    }

    /// Dirty-part tracking for incremental re-partitioning: given per-node
    /// dirty flags (global node ids, `true` for nodes whose tuple was
    /// inserted, updated, or sits adjacent to a deletion), returns one flag
    /// per **non-empty** part — aligned with the part order of
    /// [`parts`](Partition::parts) / [`component_parts`](Partition::component_parts)
    /// — saying whether the part contains any dirty node. Clean parts are
    /// the ones whose cached sub-problem solutions an incremental
    /// re-explanation can expect to reuse verbatim (the solution cache
    /// itself re-verifies via content hashing, so this flag is a tracking /
    /// diagnostic signal, not a correctness gate). Nodes beyond
    /// `dirty_nodes.len()` count as clean.
    pub fn dirty_parts(&self, dirty_nodes: &[bool]) -> Vec<bool> {
        let mut dirty = vec![false; self.k];
        let mut occupied = vec![false; self.k];
        for (node, &p) in self.assignment.iter().enumerate() {
            occupied[p] = true;
            if dirty_nodes.get(node).copied().unwrap_or(false) {
                dirty[p] = true;
            }
        }
        dirty.into_iter().zip(occupied).filter_map(|(d, occ)| occ.then_some(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 left, 4 right; two components plus one isolated right node.
    fn sample() -> MappingGraph {
        let mut g = MappingGraph::new(3, 4);
        g.add_edge(0, 0, 0.9);
        g.add_edge(0, 1, 0.3);
        g.add_edge(1, 1, 0.8);
        g.add_edge(2, 2, 1.0);
        g
    }

    #[test]
    fn counts_and_ids() {
        let g = sample();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.left_id(2), 2);
        assert_eq!(g.right_id(0), 3);
        assert_eq!(g.node_of(2), Node::Left(2));
        assert_eq!(g.node_of(5), Node::Right(2));
        assert!((g.total_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = MappingGraph::new(1, 1);
        g.add_edge(1, 0, 0.5);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = sample();
        let adj = g.adjacency();
        assert_eq!(adj[g.left_id(0)].len(), 2);
        assert_eq!(adj[g.right_id(1)].len(), 2);
        assert_eq!(adj[g.right_id(3)].len(), 0);
        // Edge index consistency.
        let (nbr, e) = adj[g.left_id(2)][0];
        assert_eq!(nbr, g.right_id(2));
        assert_eq!(g.edges()[e].weight, 1.0);
    }

    #[test]
    fn connected_components_are_found() {
        let g = sample();
        let comps = g.connected_components();
        // {L0, L1, R0, R1}, {L2, R2}, {R3}
        assert_eq!(comps.len(), 3);
        let big = comps.iter().find(|c| c.size() == 4).unwrap();
        assert_eq!(big.left, vec![0, 1]);
        assert_eq!(big.right, vec![0, 1]);
        assert_eq!(big.edges.len(), 3);
        let pair = comps.iter().find(|c| c.size() == 2).unwrap();
        assert_eq!(pair.left, vec![2]);
        assert_eq!(pair.right, vec![2]);
        let isolated = comps.iter().find(|c| c.size() == 1).unwrap();
        assert_eq!(isolated.right, vec![3]);
        assert!(isolated.edges.is_empty());
    }

    #[test]
    fn edge_cut_and_parts() {
        let g = sample();
        // Put L0,R0 in part 0 and everything else in part 1.
        let mut assignment = vec![1; g.node_count()];
        assignment[g.left_id(0)] = 0;
        assignment[g.right_id(0)] = 0;
        let p = Partition::new(assignment, 2);
        // Cut edges: (0,1,0.3) only.
        assert!((g.edge_cut(&p) - 0.3).abs() < 1e-12);
        assert_eq!(p.num_parts(), 2);
        assert_eq!(p.part_sizes(), vec![2, 5]);
        assert_eq!(p.max_part_size(), 5);
        let parts = p.parts(&g);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].left, vec![0]);
        assert_eq!(parts[0].right, vec![0]);
        assert_eq!(parts[0].edges.len(), 1);
        assert_eq!(p.used_parts().len(), 2);
    }

    #[test]
    fn single_partition_has_zero_cut() {
        let g = sample();
        let p = Partition::single(g.node_count());
        assert_eq!(g.edge_cut(&p), 0.0);
        assert_eq!(p.num_parts(), 1);
        assert_eq!(p.parts(&g).len(), 1);
    }
}
