//! Pre-partitioning (Algorithm 2): merge tuples connected by
//! high-probability matches into coarse clusters before graph partitioning.
//!
//! This acts as an extra coarsening level on top of the multilevel
//! partitioner: high-probability matches should never be cut, so their
//! endpoints are contracted into a single coarse node. Remaining edges are
//! re-weighted with the [`WeightScheme`] and accumulated between clusters.

use crate::dsu::DisjointSet;
use crate::graph::MappingGraph;
use crate::weights::WeightScheme;
use std::collections::HashMap;

/// The coarse graph produced by pre-partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct CoarseGraph {
    /// For each coarse node, the global node ids of the original graph that
    /// were merged into it (sorted, deterministic).
    pub clusters: Vec<Vec<usize>>,
    /// Maps each original global node id to its coarse node index.
    pub cluster_of: Vec<usize>,
    /// Coarse edges `(cluster a, cluster b, accumulated weight)` with `a < b`.
    pub edges: Vec<(usize, usize, f64)>,
}

impl CoarseGraph {
    /// Number of coarse nodes.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when there are no coarse nodes.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Node weights: number of original tuples merged into each coarse node.
    pub fn node_weights(&self) -> Vec<usize> {
        self.clusters.iter().map(Vec::len).collect()
    }
}

/// Runs Algorithm 2: merges nodes connected by matches with probability at
/// least `scheme.theta_high`, then accumulates re-weighted edge weights
/// between the resulting clusters.
pub fn pre_partition(graph: &MappingGraph, scheme: &WeightScheme) -> CoarseGraph {
    let n = graph.node_count();
    let mut dsu = DisjointSet::new(n);

    // Lines 2-7: traverse tuples and merge along high-probability matches.
    // (Union-find over the high-probability subgraph is equivalent to the
    // DFS-based merge in the pseudocode and is order-independent.)
    for e in graph.edges() {
        if scheme.is_high(e.weight) {
            dsu.union(graph.left_id(e.left), graph.right_id(e.right));
        }
    }

    let clusters = dsu.groups();
    let mut cluster_of = vec![usize::MAX; n];
    for (c, members) in clusters.iter().enumerate() {
        for &id in members {
            cluster_of[id] = c;
        }
    }

    // Lines 8-10: accumulate re-weighted edge weights between clusters.
    let mut weight_map: HashMap<(usize, usize), f64> = HashMap::new();
    for e in graph.edges() {
        let ca = cluster_of[graph.left_id(e.left)];
        let cb = cluster_of[graph.right_id(e.right)];
        if ca == cb {
            continue; // already merged; nothing to cut
        }
        let key = (ca.min(cb), ca.max(cb));
        *weight_map.entry(key).or_insert(0.0) += scheme.weight(e.weight);
    }
    let mut edges: Vec<(usize, usize, f64)> =
        weight_map.into_iter().map(|((a, b), w)| (a, b, w)).collect();
    edges.sort_by_key(|e| (e.0, e.1));

    CoarseGraph { clusters, cluster_of, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> MappingGraph {
        // Left: 0,1,2  Right: 0,1,2
        // High-prob: (0,0,0.95), (1,0,0.92)  -> cluster {L0, L1, R0}
        // Mid-prob:  (1,1,0.5), (2,1,0.6)
        // Low-prob:  (2,2,0.05)
        let mut g = MappingGraph::new(3, 3);
        g.add_edge(0, 0, 0.95);
        g.add_edge(1, 0, 0.92);
        g.add_edge(1, 1, 0.5);
        g.add_edge(2, 1, 0.6);
        g.add_edge(2, 2, 0.05);
        g
    }

    #[test]
    fn high_probability_edges_are_contracted() {
        let g = graph();
        let coarse = pre_partition(&g, &WeightScheme::default());
        // Clusters: {L0, L1, R0}, {L2}, {R1}, {R2}
        assert_eq!(coarse.len(), 4);
        assert!(!coarse.is_empty());
        let weights = coarse.node_weights();
        assert_eq!(weights.iter().sum::<usize>(), g.node_count());
        assert!(weights.contains(&3));
        // L0 and R0 are in the same cluster.
        assert_eq!(coarse.cluster_of[g.left_id(0)], coarse.cluster_of[g.right_id(0)]);
        assert_eq!(coarse.cluster_of[g.left_id(0)], coarse.cluster_of[g.left_id(1)]);
        assert_ne!(coarse.cluster_of[g.left_id(2)], coarse.cluster_of[g.right_id(2)]);
    }

    #[test]
    fn remaining_edges_are_reweighted_and_accumulated() {
        let g = graph();
        let scheme = WeightScheme::default();
        let coarse = pre_partition(&g, &scheme);
        // Edge (1,1,0.5) now connects the big cluster with R1's cluster at weight 0.5.
        // Edge (2,1,0.6) connects L2's cluster with R1's cluster at weight 0.6.
        // Edge (2,2,0.05) connects L2's cluster with R2's at weight 0.05/100.
        assert_eq!(coarse.edges.len(), 3);
        let total: f64 = coarse.edges.iter().map(|(_, _, w)| w).sum();
        assert!((total - (0.5 + 0.6 + 0.0005)).abs() < 1e-9);
        // No self-loop edges.
        assert!(coarse.edges.iter().all(|(a, b, _)| a != b));
    }

    #[test]
    fn parallel_edges_between_clusters_accumulate() {
        let mut g = MappingGraph::new(2, 2);
        g.add_edge(0, 0, 0.95); // merge L0,R0
        g.add_edge(1, 1, 0.95); // merge L1,R1
        g.add_edge(0, 1, 0.3); // cross edges between the two clusters
        g.add_edge(1, 0, 0.4);
        let coarse = pre_partition(&g, &WeightScheme::default());
        assert_eq!(coarse.len(), 2);
        assert_eq!(coarse.edges.len(), 1);
        assert!((coarse.edges[0].2 - 0.7).abs() < 1e-12);
    }

    #[test]
    fn graph_without_high_probability_edges_stays_fine_grained() {
        let mut g = MappingGraph::new(2, 2);
        g.add_edge(0, 0, 0.5);
        g.add_edge(1, 1, 0.5);
        let coarse = pre_partition(&g, &WeightScheme::default());
        assert_eq!(coarse.len(), 4);
        assert_eq!(coarse.edges.len(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = MappingGraph::new(0, 0);
        let coarse = pre_partition(&g, &WeightScheme::default());
        assert!(coarse.is_empty());
        assert!(coarse.edges.is_empty());
    }
}
