//! Smart partitioning (Algorithm 3): pre-partition, partition the coarse
//! graph, then project the assignment back onto the original tuples.

use crate::graph::{MappingGraph, Partition};
use crate::partitioner::{partition_weighted, PartitionerConfig};
use crate::prepartition::pre_partition;
use crate::weights::WeightScheme;

/// Configuration of the smart-partitioning optimiser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartPartitionConfig {
    /// Edge re-weighting scheme (`θ_l`, `θ_h`, `R`).
    pub scheme: WeightScheme,
    /// Target batch size: the number of partitions is
    /// `k = ⌈(|T1| + |T2|) / batch_size⌉` and `L_max = batch_size`,
    /// matching the paper's synthetic-data experiments.
    pub batch_size: usize,
    /// Number of FM refinement passes in the partitioner.
    pub refinement_passes: usize,
}

impl SmartPartitionConfig {
    /// Creates a configuration with the paper's default weight scheme.
    pub fn with_batch_size(batch_size: usize) -> Self {
        SmartPartitionConfig {
            scheme: WeightScheme::default(),
            batch_size: batch_size.max(1),
            refinement_passes: 2,
        }
    }

    /// The number of partitions for a graph with `node_count` tuples.
    pub fn num_partitions(&self, node_count: usize) -> usize {
        node_count.div_ceil(self.batch_size).max(1)
    }
}

impl Default for SmartPartitionConfig {
    fn default() -> Self {
        SmartPartitionConfig::with_batch_size(1000)
    }
}

/// Runs Algorithm 3 on the mapping graph, returning a node partition.
pub fn smart_partition(graph: &MappingGraph, config: &SmartPartitionConfig) -> Partition {
    let n = graph.node_count();
    if n == 0 {
        return Partition::new(vec![], 1);
    }
    if n <= config.batch_size {
        return Partition::single(n);
    }

    // Line 1: pre-partition (Algorithm 2) to obtain the coarse graph.
    let coarse = pre_partition(graph, &config.scheme);

    // Line 2: partition the coarse graph with a standard partitioner.
    let k = config.num_partitions(n);
    let mut part_cfg = PartitionerConfig::new(k, config.batch_size);
    part_cfg.refinement_passes = config.refinement_passes;
    let weighted = partition_weighted(&coarse.node_weights(), &coarse.edges, &part_cfg);

    // Lines 3-6: project cluster assignments back onto the original tuples.
    let mut assignment = vec![0usize; n];
    for (node_id, &cluster) in coarse.cluster_of.iter().enumerate() {
        assignment[node_id] = weighted.assignment[cluster];
    }
    Partition::new(assignment, weighted.num_parts.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A graph of `pairs` (left, right) couples joined by 0.95-probability
    /// matches, with consecutive couples linked by weak 0.2 matches.
    fn chained_pairs(pairs: usize) -> MappingGraph {
        let mut g = MappingGraph::new(pairs, pairs);
        for i in 0..pairs {
            g.add_edge(i, i, 0.95);
            if i + 1 < pairs {
                g.add_edge(i, i + 1, 0.2);
            }
        }
        g
    }

    #[test]
    fn small_graphs_stay_whole() {
        let g = chained_pairs(5);
        let cfg = SmartPartitionConfig::with_batch_size(100);
        let p = smart_partition(&g, &cfg);
        assert_eq!(p.num_parts(), 1);
        assert_eq!(g.edge_cut(&p), 0.0);
    }

    #[test]
    fn high_probability_matches_are_never_cut() {
        let g = chained_pairs(50);
        let cfg = SmartPartitionConfig::with_batch_size(10);
        let p = smart_partition(&g, &cfg);
        assert!(p.num_parts() > 1);
        for e in g.edges() {
            if e.weight >= 0.9 {
                assert_eq!(
                    p.part_of(g.left_id(e.left)),
                    p.part_of(g.right_id(e.right)),
                    "high-probability match ({}, {}) was cut",
                    e.left,
                    e.right
                );
            }
        }
    }

    #[test]
    fn partition_sizes_respect_the_batch_bound() {
        let g = chained_pairs(60);
        let cfg = SmartPartitionConfig::with_batch_size(16);
        let p = smart_partition(&g, &cfg);
        assert!(p.max_part_size() <= 16, "max part size {}", p.max_part_size());
        // Every node is assigned.
        assert_eq!(p.assignment().len(), g.node_count());
    }

    #[test]
    fn number_of_partitions_tracks_batch_size() {
        let cfg = SmartPartitionConfig::with_batch_size(1000);
        assert_eq!(cfg.num_partitions(100), 1);
        assert_eq!(cfg.num_partitions(1000), 1);
        assert_eq!(cfg.num_partitions(1001), 2);
        assert_eq!(cfg.num_partitions(10_000), 10);
        let small = SmartPartitionConfig::with_batch_size(100);
        assert_eq!(small.num_partitions(10_000), 100);
    }

    #[test]
    fn cut_prefers_weak_edges() {
        let g = chained_pairs(40);
        let cfg = SmartPartitionConfig::with_batch_size(20);
        let p = smart_partition(&g, &cfg);
        // The cut should consist only of the weak 0.2 chain links, so it is
        // bounded by 0.2 times the number of parts.
        let cut = g.edge_cut(&p);
        assert!(cut <= 0.2 * p.num_parts() as f64 + 1e-9, "cut {cut}");
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = MappingGraph::new(0, 0);
        let p = smart_partition(&g, &SmartPartitionConfig::default());
        assert_eq!(p.assignment().len(), 0);
    }

    #[test]
    fn default_config_uses_paper_batch_size() {
        let cfg = SmartPartitionConfig::default();
        assert_eq!(cfg.batch_size, 1000);
        assert_eq!(cfg.scheme, WeightScheme::default());
    }
}
