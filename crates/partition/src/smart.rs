//! Smart partitioning (Algorithm 3): pre-partition, partition the coarse
//! graph with batch packing, then project the assignment back onto the
//! original tuples.
//!
//! The partitioner packs connected components into
//! `k = ⌈(|T1| + |T2|) / batch⌉` parts (merging small components with
//! first-fit-decreasing bin packing, splitting oversized ones along
//! low-weight edges); [`smart_partition_packed`] additionally reports how
//! the packing went — the target part count, how many components had to be
//! split, and which parts exceed the batch bound because a single
//! high-probability cluster is larger than the batch itself.

use crate::dsu::DisjointSet;
use crate::graph::{Component, MappingGraph, Partition};
use crate::partitioner::{partition_weighted, PartitionerConfig};
use crate::prepartition::pre_partition;
use crate::weights::WeightScheme;

/// Configuration of the smart-partitioning optimiser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartPartitionConfig {
    /// Edge re-weighting scheme (`θ_l`, `θ_h`, `R`).
    pub scheme: WeightScheme,
    /// Target batch size: the number of partitions is
    /// `k = ⌈(|T1| + |T2|) / batch_size⌉` and `L_max = batch_size`,
    /// matching the paper's synthetic-data experiments.
    pub batch_size: usize,
    /// Number of FM refinement passes in the partitioner.
    pub refinement_passes: usize,
}

impl SmartPartitionConfig {
    /// Creates a configuration with the paper's default weight scheme.
    pub fn with_batch_size(batch_size: usize) -> Self {
        SmartPartitionConfig {
            scheme: WeightScheme::default(),
            batch_size: batch_size.max(1),
            refinement_passes: 2,
        }
    }

    /// The number of partitions for a graph with `node_count` tuples.
    pub fn num_partitions(&self, node_count: usize) -> usize {
        node_count.div_ceil(self.batch_size).max(1)
    }
}

impl Default for SmartPartitionConfig {
    fn default() -> Self {
        SmartPartitionConfig::with_batch_size(1000)
    }
}

/// A node partition plus the packing diagnostics of the run that built it.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedPartition {
    /// The node partition.
    pub partition: Partition,
    /// The target part count `k = ⌈nodes / batch⌉` of the run.
    pub target_parts: usize,
    /// Number of connected components of the (coarse) mapping graph that
    /// were split across parts because they exceeded the batch bound. Every
    /// split cuts only re-weighted (low-weight) edges; high-probability
    /// clusters are contracted before partitioning and never split.
    pub split_components: usize,
    /// Parts whose size exceeds the batch bound. This happens only when a
    /// single contracted high-probability cluster is itself larger than the
    /// batch — such a cluster must not be cut, so it gets a flagged part of
    /// its own instead of a silent constraint violation.
    pub oversized_parts: Vec<usize>,
}

impl PackedPartition {
    /// Packs an `n`-node graph into one unflagged part (small-graph case).
    fn single(n: usize) -> Self {
        PackedPartition {
            partition: Partition::single(n),
            target_parts: 1,
            split_components: 0,
            oversized_parts: vec![],
        }
    }

    /// The packed parts, each split into its connected components (see
    /// [`Partition::component_parts`]). This is the shape the Stage-2
    /// work-stealing scheduler consumes: a packed part holds several
    /// independent components by construction, and scheduling them
    /// individually keeps one huge component from serialising the phase.
    pub fn component_parts(&self, graph: &MappingGraph) -> Vec<Vec<Component>> {
        self.partition.component_parts(graph)
    }

    /// Dirty-part tracking (see [`Partition::dirty_parts`]): flags, per
    /// non-empty part, whether the part contains any delta-touched node.
    pub fn dirty_parts(&self, dirty_nodes: &[bool]) -> Vec<bool> {
        self.partition.dirty_parts(dirty_nodes)
    }
}

/// Runs Algorithm 3 on the mapping graph, returning a node partition.
///
/// Equivalent to [`smart_partition_packed`] with the diagnostics dropped.
pub fn smart_partition(graph: &MappingGraph, config: &SmartPartitionConfig) -> Partition {
    smart_partition_packed(graph, config).partition
}

/// Runs Algorithm 3 on the mapping graph, returning the partition together
/// with its packing diagnostics (target part count, component splits,
/// oversized parts).
pub fn smart_partition_packed(
    graph: &MappingGraph,
    config: &SmartPartitionConfig,
) -> PackedPartition {
    let n = graph.node_count();
    if n == 0 {
        return PackedPartition {
            partition: Partition::new(vec![], 1),
            target_parts: 1,
            split_components: 0,
            oversized_parts: vec![],
        };
    }
    if n <= config.batch_size {
        return PackedPartition::single(n);
    }

    // Line 1: pre-partition (Algorithm 2) to obtain the coarse graph.
    let coarse = pre_partition(graph, &config.scheme);

    // Line 2: partition the coarse graph with the packing partitioner.
    let k = config.num_partitions(n);
    let mut part_cfg = PartitionerConfig::new(k, config.batch_size);
    part_cfg.refinement_passes = config.refinement_passes;
    let weighted = partition_weighted(&coarse.node_weights(), &coarse.edges, &part_cfg);

    // Lines 3-6: project cluster assignments back onto the original tuples.
    let mut assignment = vec![0usize; n];
    for (node_id, &cluster) in coarse.cluster_of.iter().enumerate() {
        assignment[node_id] = weighted.assignment[cluster];
    }

    // Diagnostics: a coarse component is "split" when its clusters span
    // more than one part (that happens exactly when the component exceeded
    // the batch bound and was divided along its low-weight edges).
    let mut dsu = DisjointSet::new(coarse.len());
    for &(a, b, _) in &coarse.edges {
        dsu.union(a, b);
    }
    let mut split_components = 0usize;
    for component in dsu.groups() {
        let first = weighted.assignment[component[0]];
        if component.iter().any(|&c| weighted.assignment[c] != first) {
            split_components += 1;
        }
    }

    PackedPartition {
        partition: Partition::new(assignment, weighted.num_parts.max(1)),
        target_parts: k,
        split_components,
        oversized_parts: weighted.oversized_parts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A graph of `pairs` (left, right) couples joined by 0.95-probability
    /// matches, with consecutive couples linked by weak 0.2 matches.
    fn chained_pairs(pairs: usize) -> MappingGraph {
        let mut g = MappingGraph::new(pairs, pairs);
        for i in 0..pairs {
            g.add_edge(i, i, 0.95);
            if i + 1 < pairs {
                g.add_edge(i, i + 1, 0.2);
            }
        }
        g
    }

    #[test]
    fn small_graphs_stay_whole() {
        let g = chained_pairs(5);
        let cfg = SmartPartitionConfig::with_batch_size(100);
        let p = smart_partition(&g, &cfg);
        assert_eq!(p.num_parts(), 1);
        assert_eq!(g.edge_cut(&p), 0.0);
    }

    #[test]
    fn high_probability_matches_are_never_cut() {
        let g = chained_pairs(50);
        let cfg = SmartPartitionConfig::with_batch_size(10);
        let p = smart_partition(&g, &cfg);
        assert!(p.num_parts() > 1);
        for e in g.edges() {
            if e.weight >= 0.9 {
                assert_eq!(
                    p.part_of(g.left_id(e.left)),
                    p.part_of(g.right_id(e.right)),
                    "high-probability match ({}, {}) was cut",
                    e.left,
                    e.right
                );
            }
        }
    }

    #[test]
    fn partition_sizes_respect_the_batch_bound() {
        let g = chained_pairs(60);
        let cfg = SmartPartitionConfig::with_batch_size(16);
        let p = smart_partition(&g, &cfg);
        assert!(p.max_part_size() <= 16, "max part size {}", p.max_part_size());
        // Every node is assigned.
        assert_eq!(p.assignment().len(), g.node_count());
    }

    #[test]
    fn number_of_partitions_tracks_batch_size() {
        let cfg = SmartPartitionConfig::with_batch_size(1000);
        assert_eq!(cfg.num_partitions(100), 1);
        assert_eq!(cfg.num_partitions(1000), 1);
        assert_eq!(cfg.num_partitions(1001), 2);
        assert_eq!(cfg.num_partitions(10_000), 10);
        let small = SmartPartitionConfig::with_batch_size(100);
        assert_eq!(small.num_partitions(10_000), 100);
    }

    #[test]
    fn cut_prefers_weak_edges() {
        let g = chained_pairs(40);
        let cfg = SmartPartitionConfig::with_batch_size(20);
        let p = smart_partition(&g, &cfg);
        // The cut should consist only of the weak 0.2 chain links, so it is
        // bounded by 0.2 times the number of parts.
        let cut = g.edge_cut(&p);
        assert!(cut <= 0.2 * p.num_parts() as f64 + 1e-9, "cut {cut}");
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = MappingGraph::new(0, 0);
        let p = smart_partition(&g, &SmartPartitionConfig::default());
        assert_eq!(p.assignment().len(), 0);
    }

    /// `pairs` disconnected high-probability couples: the pre-packing
    /// partitioner emitted one part per couple; packing must hit `k`.
    fn isolated_pairs(pairs: usize) -> MappingGraph {
        let mut g = MappingGraph::new(pairs, pairs);
        for i in 0..pairs {
            g.add_edge(i, i, 0.95);
        }
        g
    }

    #[test]
    fn disconnected_components_pack_to_the_target_part_count() {
        let g = isolated_pairs(120); // 240 nodes in 120 two-node components
        let cfg = SmartPartitionConfig::with_batch_size(60);
        let packed = smart_partition_packed(&g, &cfg);
        assert_eq!(packed.target_parts, 4);
        assert_eq!(packed.partition.num_parts(), 4, "240 nodes / batch 60 must pack to 4 parts");
        assert_eq!(packed.split_components, 0);
        assert!(packed.oversized_parts.is_empty());
        assert_eq!(packed.partition.max_part_size(), 60);
        // No couple is separated by packing.
        for i in 0..120 {
            assert_eq!(
                packed.partition.part_of(g.left_id(i)),
                packed.partition.part_of(g.right_id(i))
            );
        }
    }

    #[test]
    fn oversized_clusters_are_flagged_not_split() {
        // One chain of 6 high-probability matches contracts into a single
        // 12-node cluster that cannot fit a batch of 8.
        let mut g = MappingGraph::new(8, 8);
        for i in 0..6 {
            g.add_edge(i, i, 0.95);
            g.add_edge(i + 1, i, 0.95); // chains the couples together
        }
        g.add_edge(7, 7, 0.95); // a separate small couple
        let cfg = SmartPartitionConfig::with_batch_size(8);
        let packed = smart_partition_packed(&g, &cfg);
        assert_eq!(packed.oversized_parts.len(), 1, "the 13-node cluster must be flagged");
        let oversized = packed.oversized_parts[0];
        // The oversized part contains the whole cluster (never cut) ...
        for i in 0..7 {
            assert_eq!(packed.partition.part_of(g.left_id(i)), oversized);
        }
        // ... and nothing else.
        assert_ne!(packed.partition.part_of(g.left_id(7)), oversized);
        assert_eq!(packed.split_components, 0);
    }

    #[test]
    fn oversized_components_split_along_weak_edges_and_are_counted() {
        // One 60-node component chained by weak links: must split into
        // parts of at most 16, counted as a single split component.
        let g = chained_pairs(30);
        let cfg = SmartPartitionConfig::with_batch_size(16);
        let packed = smart_partition_packed(&g, &cfg);
        assert_eq!(packed.split_components, 1);
        assert!(packed.oversized_parts.is_empty());
        assert!(packed.partition.max_part_size() <= 16);
        assert!(
            packed.partition.num_parts() <= packed.target_parts + packed.split_components,
            "{} parts for target {} + {} splits",
            packed.partition.num_parts(),
            packed.target_parts,
            packed.split_components
        );
    }

    #[test]
    fn component_parts_refine_parts_exactly() {
        let g = chained_pairs(40);
        let cfg = SmartPartitionConfig::with_batch_size(20);
        let packed = smart_partition_packed(&g, &cfg);
        let parts = packed.partition.parts(&g);
        let comp_parts = packed.component_parts(&g);
        assert_eq!(parts.len(), comp_parts.len());
        for (part, comps) in parts.iter().zip(comp_parts.iter()) {
            // The components of a part tile it exactly: same tuples, same
            // intra-part edges, nothing shared.
            let mut left: Vec<usize> = comps.iter().flat_map(|c| c.left.clone()).collect();
            let mut right: Vec<usize> = comps.iter().flat_map(|c| c.right.clone()).collect();
            let mut edges: Vec<usize> = comps.iter().flat_map(|c| c.edges.clone()).collect();
            left.sort_unstable();
            right.sort_unstable();
            edges.sort_unstable();
            let mut pl = part.left.clone();
            let mut pr = part.right.clone();
            let mut pe = part.edges.clone();
            pl.sort_unstable();
            pr.sort_unstable();
            pe.sort_unstable();
            assert_eq!(left, pl);
            assert_eq!(right, pr);
            assert_eq!(edges, pe);
            // Every component is internally connected to itself only:
            // its edges reference its own tuples.
            for c in comps {
                for &e in &c.edges {
                    let edge = &g.edges()[e];
                    assert!(c.left.contains(&edge.left));
                    assert!(c.right.contains(&edge.right));
                }
            }
        }
    }

    #[test]
    fn dirty_parts_flag_exactly_the_touched_parts() {
        let g = isolated_pairs(120); // 240 nodes packed into 4 parts of 60
        let cfg = SmartPartitionConfig::with_batch_size(60);
        let packed = smart_partition_packed(&g, &cfg);
        assert_eq!(packed.partition.num_parts(), 4);

        // No dirty nodes → every part is clean.
        let clean = packed.dirty_parts(&vec![false; g.node_count()]);
        assert_eq!(clean.len(), 4);
        assert!(clean.iter().all(|&d| !d));

        // Touch one couple: exactly its part goes dirty.
        let mut dirty_nodes = vec![false; g.node_count()];
        dirty_nodes[g.left_id(17)] = true;
        let dirty = packed.dirty_parts(&dirty_nodes);
        let expected = packed.partition.part_of(g.left_id(17));
        for (p, &d) in dirty.iter().enumerate() {
            assert_eq!(d, p == expected, "part {p}");
        }

        // A short flag vector treats the untracked tail as clean.
        let short = packed.dirty_parts(&[true]);
        assert_eq!(short.iter().filter(|&&d| d).count(), 1);

        // Every part dirty when every node is.
        let all = packed.dirty_parts(&vec![true; g.node_count()]);
        assert!(all.iter().all(|&d| d));
    }

    #[test]
    fn dirty_parts_align_with_nonempty_part_order() {
        // Build a partition with an empty middle part: flags must align
        // with the compacted order `parts()`/`component_parts()` emit.
        let mut g = MappingGraph::new(2, 2);
        g.add_edge(0, 0, 0.9);
        g.add_edge(1, 1, 0.9);
        let assignment = vec![0, 2, 0, 2]; // part 1 is empty
        let p = Partition::new(assignment, 3);
        let mut dirty_nodes = vec![false; 4];
        dirty_nodes[1] = true; // left tuple 1 → part 2
        let flags = p.dirty_parts(&dirty_nodes);
        assert_eq!(flags.len(), p.parts(&g).len());
        assert_eq!(flags, vec![false, true]);
    }

    #[test]
    fn packed_and_plain_smart_partition_agree() {
        let g = chained_pairs(40);
        let cfg = SmartPartitionConfig::with_batch_size(20);
        assert_eq!(smart_partition(&g, &cfg), smart_partition_packed(&g, &cfg).partition);
    }

    #[test]
    fn default_config_uses_paper_batch_size() {
        let cfg = SmartPartitionConfig::default();
        assert_eq!(cfg.batch_size, 1000);
        assert_eq!(cfg.scheme, WeightScheme::default());
    }
}
