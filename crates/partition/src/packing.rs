//! Batch packing: first-fit-decreasing bin packing of weighted items.
//!
//! The greedy graph grower of [`crate::partitioner`] produces one part per
//! seed, so a graph with many small connected components yields many small
//! parts — far more than the `k = ⌈n / L_max⌉` sub-problems the paper's
//! batching model calls for. This module packs those parts into bins of
//! capacity `L_max`, merging small parts while never exceeding the bound.
//!
//! First-fit-decreasing is deterministic (items are processed by descending
//! weight, ties broken by ascending index; bins are probed in creation
//! order) and carries a useful structural guarantee: **no two bins can be
//! merged without exceeding the capacity**. When a bin's first item was
//! placed, it did not fit in any earlier bin, and bins only gain weight
//! afterwards — so for any two bins the combined weight exceeds the
//! capacity. This is the invariant the partition property suite pins (it
//! bounds the bin count by `2·⌈total/capacity⌉ + 1` and in practice lands
//! on `⌈total/capacity⌉` for the workloads the pipeline sees).

/// The result of packing weighted items into capacity-bounded bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packing {
    /// Bin index per item.
    pub bin_of: Vec<usize>,
    /// Number of bins opened.
    pub num_bins: usize,
    /// Total weight per bin.
    pub bin_weights: Vec<usize>,
    /// Bins whose single item is heavier than the capacity. Such items can
    /// not be packed within the bound; they get a bin of their own and are
    /// flagged so callers can surface the violation instead of hiding it.
    pub oversized_bins: Vec<usize>,
}

impl Packing {
    /// True when every non-flagged bin respects `capacity`.
    pub fn respects_capacity(&self, capacity: usize) -> bool {
        self.bin_weights
            .iter()
            .enumerate()
            .all(|(b, &w)| w <= capacity || self.oversized_bins.contains(&b))
    }
}

/// Packs `weights` into bins of at most `capacity` using first-fit
/// decreasing. Items heavier than `capacity` are placed alone in their own
/// bin and reported in [`Packing::oversized_bins`]. Zero-weight items pack
/// into the first bin that exists (or a fresh one when none does).
pub fn pack_first_fit_decreasing(weights: &[usize], capacity: usize) -> Packing {
    let capacity = capacity.max(1);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));

    let mut bin_of = vec![usize::MAX; weights.len()];
    let mut bin_weights: Vec<usize> = Vec::new();
    let mut oversized_bins: Vec<usize> = Vec::new();

    for &item in &order {
        let w = weights[item];
        if w > capacity {
            // Oversized: always alone, always flagged. Because items are
            // processed in decreasing order these bins are opened first and
            // are never offered to later (smaller) items.
            let bin = bin_weights.len();
            bin_weights.push(w);
            oversized_bins.push(bin);
            bin_of[item] = bin;
            continue;
        }
        // Oversized bins occupy a contiguous prefix (descending order opens
        // them all before any packable item arrives), so skipping the
        // prefix suffices — no membership test per probe.
        let target = bin_weights
            .iter()
            .enumerate()
            .skip(oversized_bins.len())
            .find(|&(_, &bw)| bw + w <= capacity)
            .map(|(b, _)| b);
        match target {
            Some(bin) => {
                bin_weights[bin] += w;
                bin_of[item] = bin;
            }
            None => {
                let bin = bin_weights.len();
                bin_weights.push(w);
                bin_of[item] = bin;
            }
        }
    }

    Packing { num_bins: bin_weights.len(), bin_of, bin_weights, oversized_bins }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights_of(p: &Packing, weights: &[usize]) -> Vec<usize> {
        let mut out = vec![0usize; p.num_bins];
        for (i, &b) in p.bin_of.iter().enumerate() {
            out[b] += weights[i];
        }
        out
    }

    #[test]
    fn packs_small_items_tightly() {
        let weights = vec![1; 12];
        let p = pack_first_fit_decreasing(&weights, 4);
        assert_eq!(p.num_bins, 3);
        assert!(p.oversized_bins.is_empty());
        assert!(p.respects_capacity(4));
        assert_eq!(weights_of(&p, &weights), vec![4, 4, 4]);
    }

    #[test]
    fn mixed_sizes_pack_first_fit_decreasing() {
        // Sorted desc: 5, 3, 3, 2, 2, 1 with capacity 6:
        // [5, 1], [3, 3], [2, 2] — the classic FFD layout.
        let weights = vec![2, 3, 5, 1, 3, 2];
        let p = pack_first_fit_decreasing(&weights, 6);
        assert_eq!(p.num_bins, 3);
        assert_eq!(weights_of(&p, &weights), vec![6, 6, 4]);
        assert!(p.respects_capacity(6));
    }

    #[test]
    fn oversized_items_are_isolated_and_flagged() {
        let weights = vec![9, 2, 2];
        let p = pack_first_fit_decreasing(&weights, 4);
        assert_eq!(p.oversized_bins, vec![0]);
        assert_eq!(p.bin_of[0], 0);
        // The small items must not share the oversized bin.
        assert_ne!(p.bin_of[1], 0);
        assert_eq!(p.bin_of[1], p.bin_of[2]);
        assert!(p.respects_capacity(4));
        assert!(!p.respects_capacity(3));
    }

    #[test]
    fn no_two_bins_are_mergeable() {
        let weights = vec![7, 4, 4, 3, 3, 3, 2, 2, 1, 1];
        let cap = 10;
        let p = pack_first_fit_decreasing(&weights, cap);
        let bw = weights_of(&p, &weights);
        for a in 0..p.num_bins {
            for b in a + 1..p.num_bins {
                assert!(bw[a] + bw[b] > cap, "bins {a} and {b} could merge: {bw:?}");
            }
        }
    }

    #[test]
    fn deterministic_across_runs_and_tie_breaks() {
        let weights = vec![2, 2, 2, 2, 3, 3];
        let a = pack_first_fit_decreasing(&weights, 5);
        let b = pack_first_fit_decreasing(&weights, 5);
        assert_eq!(a, b);
        // Equal-weight items are placed in index order.
        assert_eq!(a.bin_of[4].min(a.bin_of[5]), a.bin_of[4]);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let p = pack_first_fit_decreasing(&[], 4);
        assert_eq!(p.num_bins, 0);
        assert!(p.bin_of.is_empty());

        // Zero capacity is clamped to 1.
        let p = pack_first_fit_decreasing(&[1, 1], 0);
        assert_eq!(p.num_bins, 2);

        // Zero-weight items join the first open bin.
        let p = pack_first_fit_decreasing(&[0, 0, 2], 2);
        assert_eq!(p.num_bins, 1);
    }
}
