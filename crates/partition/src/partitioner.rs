//! A size-bounded graph partitioner in the multilevel style of METIS:
//! greedy graph growing for the initial assignment, a first-fit-decreasing
//! batch-packing pass that merges under-full parts, then
//! Fiduccia–Mattheyses-style boundary refinement — all respecting a maximum
//! part size (the paper's balancing constraint `|T1,i| + |T2,j| ≤ L_max`).
//!
//! Graph growing alone opens one part per seed, so a graph with many small
//! connected components produces many small parts (one per component: the
//! grower's frontier never crosses components, and FM refinement only moves
//! nodes with positive gain, which disconnected nodes never have). The
//! packing pass ([`crate::packing`]) closes that gap: grown parts are bins
//! packed to `L_max`, so the part count lands near `⌈total / L_max⌉`
//! instead of near the component count.
//!
//! The partitioner operates on a generic weighted graph (node weights +
//! weighted undirected edges); the smart-partitioning driver feeds it the
//! coarse graph produced by [`pre_partition`](crate::prepartition::pre_partition),
//! which plays the role of the coarsening phase of a multilevel scheme.

use crate::packing::pack_first_fit_decreasing;

/// Configuration of the partitioner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionerConfig {
    /// Target number of parts `k` (more parts may be opened if the size
    /// bound makes `k` infeasible).
    pub k: usize,
    /// Maximum total node weight per part (`L_max`).
    pub max_part_weight: usize,
    /// Number of refinement sweeps.
    pub refinement_passes: usize,
}

impl PartitionerConfig {
    /// Creates a configuration with the given `k` and `L_max` and two
    /// refinement passes.
    pub fn new(k: usize, max_part_weight: usize) -> Self {
        PartitionerConfig {
            k: k.max(1),
            max_part_weight: max_part_weight.max(1),
            refinement_passes: 2,
        }
    }
}

/// Result of partitioning a weighted graph.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedPartition {
    /// Part index per node.
    pub assignment: Vec<usize>,
    /// Number of parts actually used.
    pub num_parts: usize,
    /// Total weight of cut edges.
    pub edge_cut: f64,
    /// Parts whose weight exceeds `max_part_weight` because they hold a
    /// single node heavier than the bound. No packing or refinement can fix
    /// those within the constraint, so they are flagged instead of hidden.
    pub oversized_parts: Vec<usize>,
}

/// Partitions a weighted graph.
///
/// * `node_weights[i]` is the weight of node `i` (e.g. how many original
///   tuples a coarse node represents);
/// * `edges` are undirected `(a, b, weight)` triples;
/// * the result respects `config.max_part_weight` except for single nodes
///   that are heavier than the bound, which get a part of their own.
pub fn partition_weighted(
    node_weights: &[usize],
    edges: &[(usize, usize, f64)],
    config: &PartitionerConfig,
) -> WeightedPartition {
    let n = node_weights.len();
    if n == 0 {
        return WeightedPartition {
            assignment: vec![],
            num_parts: 0,
            edge_cut: 0.0,
            oversized_parts: vec![],
        };
    }
    let total_weight: usize = node_weights.iter().sum();
    if total_weight <= config.max_part_weight || config.k <= 1 {
        // A single part: only over the bound when the caller forced k = 1 on
        // an overweight graph, in which case the violation is flagged.
        let oversized = if total_weight > config.max_part_weight { vec![0] } else { vec![] };
        return WeightedPartition {
            assignment: vec![0; n],
            num_parts: 1,
            edge_cut: 0.0,
            oversized_parts: oversized,
        };
    }

    // Adjacency list.
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for &(a, b, w) in edges {
        if a == b || a >= n || b >= n {
            continue;
        }
        adj[a].push((b, w));
        adj[b].push((a, w));
    }

    // ---- Greedy graph growing ----
    // Visit nodes in order of decreasing weight (heavy clusters first), grow
    // a part by repeatedly absorbing the unassigned neighbour with the
    // strongest connection to the part until the size bound is reached.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| node_weights[b].cmp(&node_weights[a]).then(a.cmp(&b)));

    let mut assignment = vec![usize::MAX; n];
    let mut part_weights: Vec<usize> = Vec::new();

    // Connection strength of each unassigned node to the growing part.
    // One buffer for all parts: a graph with many small components opens
    // one part per component, and a fresh `vec![0.0; n]` per part would
    // make growing quadratic in the component count (tens of ms on a
    // 10k-singleton mapping graph — the regime incremental re-explanation
    // re-partitions in). Entries touched while growing a part are recorded
    // and reset before the next seed, which is behaviourally identical.
    let mut gain: Vec<f64> = vec![0.0; n];
    let mut touched: Vec<usize> = Vec::new();

    for &seed in &order {
        if assignment[seed] != usize::MAX {
            continue;
        }
        // Open a new part for this seed.
        let part = part_weights.len();
        part_weights.push(0);
        let mut frontier: Vec<usize> = vec![seed];
        gain[seed] = f64::INFINITY;
        touched.push(seed);

        while let Some(next) = pick_best(&frontier, &gain) {
            frontier.retain(|&x| x != next);
            if assignment[next] != usize::MAX {
                continue;
            }
            let w = node_weights[next];
            let fits = part_weights[part] + w <= config.max_part_weight || part_weights[part] == 0; // oversized singletons get their own part
            if !fits {
                continue;
            }
            assignment[next] = part;
            part_weights[part] += w;
            if part_weights[part] >= config.max_part_weight {
                break;
            }
            for &(nbr, ew) in &adj[next] {
                if assignment[nbr] == usize::MAX {
                    gain[nbr] += ew;
                    touched.push(nbr);
                    if !frontier.contains(&nbr) {
                        frontier.push(nbr);
                    }
                }
            }
        }
        for &t in &touched {
            gain[t] = 0.0;
        }
        touched.clear();
    }
    // ---- Batch packing ----
    // Growing opens one part per seed, so disconnected graphs come out of
    // the loop above with one (possibly tiny) part per component. Pack the
    // grown parts into bins of capacity `L_max` with first-fit decreasing;
    // a grown part can only exceed the bound when it is a single oversized
    // node, which the packer isolates and flags.
    let packing = pack_first_fit_decreasing(&part_weights, config.max_part_weight);
    for a in assignment.iter_mut() {
        *a = packing.bin_of[*a];
    }
    let mut part_weights = packing.bin_weights;
    let mut oversized_parts = packing.oversized_bins;
    let mut num_parts = part_weights.len();

    // ---- FM-style boundary refinement ----
    // Like the growing phase, the per-part connection buffer is allocated
    // once and reset via the node's own adjacency after each use.
    let mut conn: Vec<f64> = vec![0.0; num_parts];
    for _ in 0..config.refinement_passes {
        let mut moved_any = false;
        for node in 0..n {
            let current = assignment[node];
            // Connection weight from `node` to each part.
            for &(nbr, w) in &adj[node] {
                conn[assignment[nbr]] += w;
            }
            let mut best_part = current;
            let mut best_gain = 0.0f64;
            for p in 0..num_parts {
                if p == current {
                    continue;
                }
                if part_weights[p] + node_weights[node] > config.max_part_weight {
                    continue;
                }
                let gain = conn[p] - conn[current];
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_part = p;
                }
            }
            if best_part != current {
                part_weights[current] -= node_weights[node];
                part_weights[best_part] += node_weights[node];
                assignment[node] = best_part;
                moved_any = true;
            }
            // Reset only the entries this node touched (neighbour
            // assignments are unchanged within the node's processing).
            for &(nbr, _) in &adj[node] {
                conn[assignment[nbr]] = 0.0;
            }
        }
        if !moved_any {
            break;
        }
    }

    // Compact part ids (refinement can empty a part). Oversized parts are
    // never emptied — their single node cannot move within the bound — so
    // their remapped ids are always defined.
    let mut remap = vec![usize::MAX; num_parts];
    let mut next = 0usize;
    for a in assignment.iter_mut() {
        if remap[*a] == usize::MAX {
            remap[*a] = next;
            next += 1;
        }
        *a = remap[*a];
    }
    num_parts = next;
    let mut oversized_parts: Vec<usize> = oversized_parts.drain(..).map(|p| remap[p]).collect();
    oversized_parts.sort_unstable();

    let edge_cut = edges
        .iter()
        .filter(|&&(a, b, _)| a < n && b < n && assignment[a] != assignment[b])
        .map(|&(_, _, w)| w)
        .sum();

    WeightedPartition { assignment, num_parts, edge_cut, oversized_parts }
}

/// Picks the frontier node with the highest gain (ties by lowest index).
/// Gains are compared with `f64::total_cmp` so the selection stays a total
/// order — and therefore deterministic — even when NaN/±∞ gains leak in
/// through pathological edge weights (a positive NaN gain ranks highest,
/// but whichever node wins, it wins reproducibly).
fn pick_best(frontier: &[usize], gain: &[f64]) -> Option<usize> {
    frontier.iter().copied().max_by(|&a, &b| gain[a].total_cmp(&gain[b]).then(b.cmp(&a)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_graph_fits_in_one_part() {
        let weights = vec![1, 1, 1];
        let edges = vec![(0, 1, 1.0), (1, 2, 1.0)];
        let p = partition_weighted(&weights, &edges, &PartitionerConfig::new(4, 10));
        assert_eq!(p.num_parts, 1);
        assert_eq!(p.edge_cut, 0.0);
    }

    #[test]
    fn two_cliques_split_along_the_weak_bridge() {
        // Two triangles of heavy edges joined by one light edge.
        let weights = vec![1; 6];
        let edges = vec![
            (0, 1, 5.0),
            (1, 2, 5.0),
            (0, 2, 5.0),
            (3, 4, 5.0),
            (4, 5, 5.0),
            (3, 5, 5.0),
            (2, 3, 0.1), // bridge
        ];
        let p = partition_weighted(&weights, &edges, &PartitionerConfig::new(2, 3));
        assert!(p.num_parts >= 2);
        // The bridge should be the only cut edge.
        assert!((p.edge_cut - 0.1).abs() < 1e-9, "edge cut was {}", p.edge_cut);
        // All triangle members stay together.
        assert_eq!(p.assignment[0], p.assignment[1]);
        assert_eq!(p.assignment[1], p.assignment[2]);
        assert_eq!(p.assignment[3], p.assignment[4]);
        assert_eq!(p.assignment[4], p.assignment[5]);
        assert_ne!(p.assignment[0], p.assignment[3]);
    }

    #[test]
    fn nan_edge_weights_keep_growing_deterministic() {
        // Regression: `pick_best` compared gains with
        // `partial_cmp(..).unwrap_or(Equal)`, so a NaN gain (from a NaN edge
        // weight) collapsed the frontier ordering into a non-total relation
        // and the grown parts could differ between runs. `total_cmp` gives
        // NaN a fixed rank, so the assignment is reproducible.
        let weights = vec![1; 6];
        let edges = vec![(0, 1, f64::NAN), (1, 2, 1.0), (3, 4, 1.0), (4, 5, f64::NAN)];
        let cfg = PartitionerConfig::new(3, 2);
        let first = partition_weighted(&weights, &edges, &cfg);
        assert_eq!(first.assignment.len(), 6);
        for _ in 0..5 {
            // Compare assignments only: the edge cut itself is NaN-poisoned.
            assert_eq!(partition_weighted(&weights, &edges, &cfg).assignment, first.assignment);
        }
    }

    #[test]
    fn size_bound_is_respected() {
        let weights = vec![1; 10];
        let edges: Vec<(usize, usize, f64)> = (0..9).map(|i| (i, i + 1, 1.0)).collect();
        let cfg = PartitionerConfig::new(4, 3);
        let p = partition_weighted(&weights, &edges, &cfg);
        let mut sizes = vec![0usize; p.num_parts];
        for (i, &a) in p.assignment.iter().enumerate() {
            sizes[a] += weights[i];
        }
        assert!(sizes.iter().all(|&s| s <= 3), "part sizes {sizes:?}");
        assert!(p.num_parts >= 4);
    }

    #[test]
    fn oversized_single_node_gets_its_own_part() {
        let weights = vec![10, 1, 1];
        let edges = vec![(0, 1, 1.0), (1, 2, 1.0)];
        let cfg = PartitionerConfig::new(2, 4);
        let p = partition_weighted(&weights, &edges, &cfg);
        // Node 0 exceeds the bound on its own; it must be alone in its part.
        let part0 = p.assignment[0];
        assert!(p.assignment.iter().enumerate().filter(|&(i, _)| i != 0).all(|(_, &a)| a != part0));
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let p = partition_weighted(&[], &[], &PartitionerConfig::new(3, 5));
        assert_eq!(p.num_parts, 0);
        assert!(p.assignment.is_empty());

        let p = partition_weighted(&[2], &[], &PartitionerConfig::new(3, 5));
        assert_eq!(p.num_parts, 1);
        assert_eq!(p.assignment, vec![0]);
    }

    #[test]
    fn disconnected_nodes_are_all_assigned() {
        let weights = vec![1; 7];
        let edges = vec![(0, 1, 1.0)];
        let cfg = PartitionerConfig::new(3, 3);
        let p = partition_weighted(&weights, &edges, &cfg);
        assert_eq!(p.assignment.len(), 7);
        let mut sizes = vec![0usize; p.num_parts];
        for &a in &p.assignment {
            sizes[a] += 1;
        }
        assert!(sizes.iter().all(|&s| s <= 3));
        assert_eq!(sizes.iter().sum::<usize>(), 7);
    }

    #[test]
    fn many_small_components_pack_to_the_target_part_count() {
        // 40 isolated 2-node components (a pathological pre-packing case:
        // the grower alone would emit 40 parts). With L_max = 10 the packer
        // must land on k = ⌈80/10⌉ = 8 full parts.
        let weights = vec![1; 80];
        let edges: Vec<(usize, usize, f64)> = (0..40).map(|c| (2 * c, 2 * c + 1, 5.0)).collect();
        let cfg = PartitionerConfig::new(8, 10);
        let p = partition_weighted(&weights, &edges, &cfg);
        assert_eq!(p.num_parts, 8, "packing should hit k exactly");
        assert!(p.oversized_parts.is_empty());
        let mut sizes = vec![0usize; p.num_parts];
        for &a in &p.assignment {
            sizes[a] += 1;
        }
        assert!(sizes.iter().all(|&s| s <= 10));
        // Components are never split by packing: both halves stay together.
        for c in 0..40 {
            assert_eq!(p.assignment[2 * c], p.assignment[2 * c + 1], "component {c} split");
        }
        // Zero edges are cut: packing merges whole parts.
        assert_eq!(p.edge_cut, 0.0);
    }

    #[test]
    fn packed_parts_are_pairwise_unmergeable() {
        // Mixed component sizes; after packing, no two non-oversized parts
        // may fit in one bin together (the FFD structural guarantee).
        let weights = vec![1; 23];
        let mut edges = Vec::new();
        let mut next = 0usize;
        for size in [5usize, 4, 4, 3, 3, 2, 1, 1] {
            for i in 1..size {
                edges.push((next + i - 1, next + i, 2.0));
            }
            next += size;
        }
        let cap = 7;
        let p = partition_weighted(&weights, &edges, &PartitionerConfig::new(4, cap));
        let mut sizes = vec![0usize; p.num_parts];
        for &a in &p.assignment {
            sizes[a] += 1;
        }
        for a in 0..p.num_parts {
            for b in a + 1..p.num_parts {
                assert!(sizes[a] + sizes[b] > cap, "parts {a} and {b} could merge: {sizes:?}");
            }
        }
    }

    #[test]
    fn oversized_parts_are_reported() {
        let weights = vec![10, 1, 1, 1];
        let edges = vec![(1, 2, 1.0)];
        let p = partition_weighted(&weights, &edges, &PartitionerConfig::new(2, 4));
        assert_eq!(p.oversized_parts.len(), 1);
        let oversized = p.oversized_parts[0];
        assert_eq!(p.assignment[0], oversized);
        assert!((1..4).all(|i| p.assignment[i] != oversized));
        // Forcing k = 1 on an overweight graph flags the single part too.
        let p = partition_weighted(&weights, &edges, &PartitionerConfig::new(1, 4));
        assert_eq!(p.num_parts, 1);
        assert_eq!(p.oversized_parts, vec![0]);
    }

    #[test]
    fn refinement_reduces_cut_on_a_chain() {
        // A chain with strongly-coupled pairs; a good partition cuts only
        // weak links.
        let weights = vec![1; 8];
        let mut edges = Vec::new();
        for i in (0..8).step_by(2) {
            edges.push((i, i + 1, 10.0));
        }
        for i in (1..7).step_by(2) {
            edges.push((i, i + 1, 0.5));
        }
        let cfg = PartitionerConfig::new(4, 2);
        let p = partition_weighted(&weights, &edges, &cfg);
        // Strong pairs must never be separated.
        for i in (0..8).step_by(2) {
            assert_eq!(p.assignment[i], p.assignment[i + 1], "pair {i} split");
        }
        assert!(p.edge_cut <= 1.5 + 1e-9);
    }
}
