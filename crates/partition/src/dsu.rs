//! Disjoint-set (union-find) structure used by connected components and by
//! the pre-partitioning merge step.

/// Union-find with path compression and union by size.
#[derive(Debug, Clone)]
pub struct DisjointSet {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl DisjointSet {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSet { parent: (0..n).collect(), size: vec![1; n], components: n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently tracked.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Representative of the set containing `x`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns true when a merge
    /// actually happened (they were previously disjoint).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }

    /// Groups element indexes by their set representative, in ascending
    /// order of the smallest member of each group (deterministic).
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        // BTreeMap iteration is by root id; re-sort groups by smallest member.
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_find() {
        let mut d = DisjointSet::new(5);
        assert_eq!(d.num_components(), 5);
        assert!(d.union(0, 1));
        assert!(d.union(1, 2));
        assert!(!d.union(0, 2));
        assert!(d.same(0, 2));
        assert!(!d.same(0, 3));
        assert_eq!(d.num_components(), 3);
        assert_eq!(d.size_of(1), 3);
        assert_eq!(d.size_of(4), 1);
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
    }

    #[test]
    fn groups_are_deterministic() {
        let mut d = DisjointSet::new(6);
        d.union(5, 0);
        d.union(2, 3);
        let groups = d.groups();
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0], vec![0, 5]);
        assert_eq!(groups[1], vec![1]);
        assert_eq!(groups[2], vec![2, 3]);
        assert_eq!(groups[3], vec![4]);
    }

    #[test]
    fn empty_structure() {
        let mut d = DisjointSet::new(0);
        assert!(d.is_empty());
        assert_eq!(d.num_components(), 0);
        assert!(d.groups().is_empty());
    }
}
