//! Rows: ordered sequences of values conforming to a [`Schema`](crate::schema::Schema).

use crate::value::{GroupKey, Value};
use std::fmt;
use std::ops::Index;

/// A single row (tuple) of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Creates a row from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Builds a row from anything convertible into values.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I, V>(iter: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Row { values: iter.into_iter().map(Into::into).collect() }
    }

    /// Number of values in the row.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// True when the row has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the value at position `idx`, if present.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// All values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consumes the row, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Concatenates two rows (used by joins).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        Row { values }
    }

    /// Projects the row onto the given column indexes.
    pub fn project(&self, indexes: &[usize]) -> Row {
        Row {
            values: indexes
                .iter()
                .map(|&i| self.values.get(i).cloned().unwrap_or(Value::Null))
                .collect(),
        }
    }

    /// Grouping key over the given column indexes (numeric-coercing).
    pub fn group_key(&self, indexes: &[usize]) -> Vec<GroupKey> {
        indexes
            .iter()
            .map(|&i| self.values.get(i).map(Value::group_key).unwrap_or(GroupKey::Null))
            .collect()
    }

    /// Deterministic ordering across rows (column-wise total order).
    pub fn total_cmp(&self, other: &Row) -> std::cmp::Ordering {
        for (a, b) in self.values.iter().zip(other.values.iter()) {
            let ord = a.total_cmp(b);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        self.values.len().cmp(&other.values.len())
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        &self.values[index]
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row { values }
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience macro for building a [`Row`] from heterogeneous literals.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::row::Row::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let r = row!["CS", 2, 1.5, true];
        assert_eq!(r.arity(), 4);
        assert_eq!(r[0], Value::str("CS"));
        assert_eq!(r.get(1), Some(&Value::Int(2)));
        assert_eq!(r.get(9), None);
        assert!(!r.is_empty());
    }

    #[test]
    fn concat_and_project() {
        let a = row![1, "x"];
        let b = row![2.5];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        let p = c.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Float(2.5), Value::Int(1)]);
        // Out-of-range projection yields NULL rather than panicking.
        let q = c.project(&[7]);
        assert!(q[0].is_null());
    }

    #[test]
    fn group_keys_coerce_numerics() {
        let a = row![2, "x"];
        let b = row![2.0, "x"];
        assert_eq!(a.group_key(&[0, 1]), b.group_key(&[0, 1]));
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut rows = [row![2, "b"], row![1, "z"], row![1, "a"]];
        rows.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(rows[0], row![1, "a"]);
        assert_eq!(rows[1], row![1, "z"]);
        assert_eq!(rows[2], row![2, "b"]);
    }
}
