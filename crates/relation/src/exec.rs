//! Query execution: evaluates a [`Query`] against a [`Database`] and derives
//! both the result and the provenance relation of Definition 2.3.

use crate::error::RelationError;
use crate::provenance::ProvenanceRelation;
use crate::query::{Aggregate, Projection, Query, QueryExpr};
use crate::relation::{Database, Relation};
use crate::row::Row;
use crate::schema::{Column, Schema};
use crate::value::{GroupKey, Value, ValueType};
use std::collections::{HashMap, HashSet};

/// The output of executing one query: its result and its provenance relation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// The query result (a single-row relation for aggregate queries).
    pub result: Relation,
    /// The provenance relation `P` of Definition 2.3.
    pub provenance: ProvenanceRelation,
}

impl QueryOutput {
    /// The scalar result of an aggregate query.
    pub fn scalar(&self) -> Result<Value, RelationError> {
        self.result.scalar()
    }
}

/// Executes queries against a database.
#[derive(Debug, Default, Clone, Copy)]
pub struct Executor;

impl Executor {
    /// Creates an executor.
    pub fn new() -> Self {
        Executor
    }

    /// Executes `query` against `db`, producing the result and provenance.
    pub fn execute(&self, db: &Database, query: &Query) -> Result<QueryOutput, RelationError> {
        // Evaluate the source expression X.
        let source = self.eval_expr(db, &query.source)?;

        // Apply the final selection σ_C.
        let filtered: Vec<Row> = match &query.filter {
            Some(pred) => {
                let mut rows = Vec::new();
                for row in source.rows() {
                    if pred.eval_predicate(source.schema(), row)? {
                        rows.push(row.clone());
                    }
                }
                rows
            }
            None => source.rows().to_vec(),
        };

        // Build the provenance relation with per-tuple impacts.
        let mut provenance =
            ProvenanceRelation::new(query.name.clone(), source.schema().clone(), query.aggregate());
        for row in &filtered {
            let impact = match &query.projection {
                Projection::Columns(_) => 1.0,
                Projection::Aggregate { func: Aggregate::Count, .. } => 1.0,
                Projection::Aggregate { func: _, column } => {
                    let col = column.as_deref().ok_or_else(|| RelationError::InvalidAggregate {
                        message: "non-COUNT aggregate requires a column".to_string(),
                    })?;
                    let idx = source.schema().index_of(col)?;
                    row.get(idx).and_then(Value::as_f64).unwrap_or(0.0)
                }
            };
            provenance.push(row.clone(), impact);
        }

        // Compute the result π_o.
        let result = match &query.projection {
            Projection::Columns(cols) => {
                let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                let idx: Vec<usize> =
                    names.iter().map(|n| source.schema().index_of(n)).collect::<Result<_, _>>()?;
                let schema = source.schema().project(&names)?;
                let mut rel = Relation::new(query.name.clone(), schema);
                for row in &filtered {
                    rel.insert(row.project(&idx))?;
                }
                if query.distinct {
                    rel.distinct().renamed(query.name.clone())
                } else {
                    rel
                }
            }
            Projection::Aggregate { func, column } => {
                let value =
                    self.eval_aggregate(source.schema(), &filtered, *func, column.as_deref())?;
                let out_name = format!("{func}({})", column.as_deref().unwrap_or("*"));
                let ty = match value.value_type() {
                    ValueType::Unknown => ValueType::Float,
                    t => t,
                };
                let schema = Schema::new(vec![Column::new(out_name, ty)]);
                Relation::with_rows(query.name.clone(), schema, vec![Row::new(vec![value])])?
            }
        };

        Ok(QueryOutput { result, provenance })
    }

    /// Evaluates a source expression to a materialised relation.
    fn eval_expr(&self, db: &Database, expr: &QueryExpr) -> Result<Relation, RelationError> {
        match expr {
            QueryExpr::Scan { relation } => Ok(db.get(relation)?.qualified()),
            QueryExpr::Filter { input, predicate } => {
                let rel = self.eval_expr(db, input)?;
                let mut out = Relation::new(rel.name().to_string(), rel.schema().clone());
                for row in rel.rows() {
                    if predicate.eval_predicate(rel.schema(), row)? {
                        out.insert(row.clone())?;
                    }
                }
                Ok(out)
            }
            QueryExpr::Join { left, right, on } => {
                let l = self.eval_expr(db, left)?;
                let r = self.eval_expr(db, right)?;
                self.hash_join(&l, &r, on)
            }
            QueryExpr::Union { left, right } => {
                let l = self.eval_expr(db, left)?;
                let r = self.eval_expr(db, right)?;
                if !l.schema().union_compatible(r.schema()) {
                    return Err(RelationError::UnionMismatch {
                        left: l.schema().to_string(),
                        right: r.schema().to_string(),
                    });
                }
                let mut out = Relation::new(l.name().to_string(), l.schema().clone());
                for row in l.rows().iter().chain(r.rows().iter()) {
                    out.insert(row.clone())?;
                }
                Ok(out)
            }
            QueryExpr::Project { input, columns } => {
                let rel = self.eval_expr(db, input)?;
                let names: Vec<&str> = columns.iter().map(String::as_str).collect();
                rel.project(&names)
            }
            QueryExpr::SemiJoin { input, sub, on, anti } => {
                let outer = self.eval_expr(db, input)?;
                let inner = self.eval_expr(db, sub)?;
                let inner_idx = inner.schema().index_of(&on.1)?;
                let probe: HashSet<GroupKey> = inner
                    .rows()
                    .iter()
                    .filter(|r| !r[inner_idx].is_null())
                    .map(|r| r[inner_idx].group_key())
                    .collect();
                let outer_idx = outer.schema().index_of(&on.0)?;
                let mut out = Relation::new(outer.name().to_string(), outer.schema().clone());
                for row in outer.rows() {
                    let v = &row[outer_idx];
                    if v.is_null() {
                        continue;
                    }
                    let found = probe.contains(&v.group_key());
                    if found != *anti {
                        out.insert(row.clone())?;
                    }
                }
                Ok(out)
            }
        }
    }

    /// Hash equi-join on the first column pair, verifying remaining pairs.
    fn hash_join(
        &self,
        left: &Relation,
        right: &Relation,
        on: &[(String, String)],
    ) -> Result<Relation, RelationError> {
        if on.is_empty() {
            return Err(RelationError::invalid("equi-join requires at least one column pair"));
        }
        let schema = left.schema().concat(right.schema());
        let mut out = Relation::new(format!("{}_{}", left.name(), right.name()), schema);

        let l0 = left.schema().index_of(&on[0].0)?;
        let r0 = right.schema().index_of(&on[0].1)?;
        let rest: Vec<(usize, usize)> = on[1..]
            .iter()
            .map(|(lc, rc)| Ok((left.schema().index_of(lc)?, right.schema().index_of(rc)?)))
            .collect::<Result<_, RelationError>>()?;

        // Build side: right relation keyed by the first join column.
        let mut table: HashMap<GroupKey, Vec<usize>> = HashMap::new();
        for (i, row) in right.rows().iter().enumerate() {
            if row[r0].is_null() {
                continue;
            }
            table.entry(row[r0].group_key()).or_default().push(i);
        }

        for lrow in left.rows() {
            if lrow[l0].is_null() {
                continue;
            }
            if let Some(candidates) = table.get(&lrow[l0].group_key()) {
                for &ri in candidates {
                    let rrow = &right.rows()[ri];
                    let all_match =
                        rest.iter().all(|&(li, rj)| lrow[li].sql_eq(&rrow[rj]).unwrap_or(false));
                    if all_match {
                        out.insert(lrow.concat(rrow))?;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Evaluates an aggregate over the filtered rows.
    fn eval_aggregate(
        &self,
        schema: &Schema,
        rows: &[Row],
        func: Aggregate,
        column: Option<&str>,
    ) -> Result<Value, RelationError> {
        let idx = match column {
            Some(c) => Some(schema.index_of(c)?),
            None => None,
        };
        match func {
            Aggregate::Count => {
                let n = match idx {
                    None => rows.len(),
                    Some(i) => rows.iter().filter(|r| !r[i].is_null()).count(),
                };
                Ok(Value::Int(n as i64))
            }
            Aggregate::Sum | Aggregate::Avg => {
                let i = idx.ok_or_else(|| RelationError::InvalidAggregate {
                    message: format!("{func} requires a column"),
                })?;
                let vals: Vec<f64> = rows.iter().filter_map(|r| r[i].as_f64()).collect();
                if vals.is_empty() {
                    return Ok(Value::Null);
                }
                let sum: f64 = vals.iter().sum();
                if func == Aggregate::Avg {
                    Ok(Value::Float(sum / vals.len() as f64))
                } else if sum.fract() == 0.0 {
                    Ok(Value::Int(sum as i64))
                } else {
                    Ok(Value::Float(sum))
                }
            }
            Aggregate::Max | Aggregate::Min => {
                let i = idx.ok_or_else(|| RelationError::InvalidAggregate {
                    message: format!("{func} requires a column"),
                })?;
                let mut best: Option<Value> = None;
                for r in rows {
                    let v = &r[i];
                    if v.is_null() {
                        continue;
                    }
                    best = Some(match best {
                        None => v.clone(),
                        Some(b) => {
                            let keep_new = match v.sql_cmp(&b) {
                                Some(ord) => {
                                    if func == Aggregate::Max {
                                        ord.is_gt()
                                    } else {
                                        ord.is_lt()
                                    }
                                }
                                None => false,
                            };
                            if keep_new {
                                v.clone()
                            } else {
                                b
                            }
                        }
                    });
                }
                Ok(best.unwrap_or(Value::Null))
            }
        }
    }
}

/// Convenience function: execute a query against a database.
pub fn execute(db: &Database, query: &Query) -> Result<QueryOutput, RelationError> {
    Executor::new().execute(db, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::row;

    /// Builds the D1/D3 datasets of Figure 1 in the paper.
    fn figure1_db() -> Database {
        let mut db = Database::new();

        let d1 = Relation::with_rows(
            "D1",
            Schema::from_pairs(&[("program", ValueType::Str), ("degree", ValueType::Str)]),
            vec![
                row!["Accounting", "B.S."],
                row!["CS", "B.A."],
                row!["CS", "B.S."],
                row!["ECE", "B.S."],
                row!["EE", "B.S."],
                row!["Management", "B.A."],
                row!["Design", "B.A."],
            ],
        )
        .unwrap();

        let d2 = Relation::with_rows(
            "D2",
            Schema::from_pairs(&[("univ", ValueType::Str), ("major", ValueType::Str)]),
            vec![
                row!["A", "Accounting"],
                row!["A", "CSE"],
                row!["A", "ECE"],
                row!["A", "EE"],
                row!["A", "Management"],
                row!["A", "Design"],
                row!["B", "Art"],
            ],
        )
        .unwrap();

        let d3 = Relation::with_rows(
            "D3",
            Schema::from_pairs(&[("college", ValueType::Str), ("num_bach", ValueType::Int)]),
            vec![row!["Business", 2], row!["Engineering", 2], row!["Computer Science", 1]],
        )
        .unwrap();

        db.add(d1).add(d2).add(d3);
        db
    }

    #[test]
    fn figure1_query_results_match_paper() {
        let db = figure1_db();
        let exec = Executor::new();

        let q1 = Query::scan("D1").named("Q1").count("program");
        let q2 = Query::scan("D2")
            .named("Q2")
            .filter(Expr::col("univ").eq(Expr::lit("A")))
            .count("major");
        let q3 = Query::scan("D3").named("Q3").sum("num_bach");

        assert_eq!(exec.execute(&db, &q1).unwrap().scalar().unwrap(), Value::Int(7));
        assert_eq!(exec.execute(&db, &q2).unwrap().scalar().unwrap(), Value::Int(6));
        assert_eq!(exec.execute(&db, &q3).unwrap().scalar().unwrap(), Value::Int(5));
    }

    #[test]
    fn provenance_impacts_follow_definition_2_3() {
        let db = figure1_db();
        let exec = Executor::new();

        // COUNT query: every provenance tuple has impact 1.
        let q1 = Query::scan("D1").named("Q1").count("program");
        let p1 = exec.execute(&db, &q1).unwrap().provenance;
        assert_eq!(p1.len(), 7);
        assert!(p1.tuples.iter().all(|t| t.impact == 1.0));
        assert_eq!(p1.total_impact(), 7.0);

        // SUM query: impact equals the summed attribute.
        let q3 = Query::scan("D3").named("Q3").sum("num_bach");
        let p3 = exec.execute(&db, &q3).unwrap().provenance;
        assert_eq!(p3.len(), 3);
        assert_eq!(p3.total_impact(), 5.0);
        let impacts: Vec<f64> = p3.tuples.iter().map(|t| t.impact).collect();
        assert_eq!(impacts, vec![2.0, 2.0, 1.0]);

        // Selection limits provenance to satisfying tuples only.
        let q2 = Query::scan("D2")
            .named("Q2")
            .filter(Expr::col("univ").eq(Expr::lit("A")))
            .count("major");
        let p2 = exec.execute(&db, &q2).unwrap().provenance;
        assert_eq!(p2.len(), 6);
        assert_eq!(p2.aggregate, Some(Aggregate::Count));
    }

    #[test]
    fn join_query_with_filter() {
        let mut db = Database::new();
        let school = Relation::with_rows(
            "School",
            Schema::from_pairs(&[("ID", ValueType::Int), ("Univ_name", ValueType::Str)]),
            vec![row![1, "UMass-Amherst"], row![2, "OSU"]],
        )
        .unwrap();
        let stats = Relation::with_rows(
            "Stats",
            Schema::from_pairs(&[
                ("ID", ValueType::Int),
                ("Program", ValueType::Str),
                ("bach_degr", ValueType::Int),
            ]),
            vec![row![1, "CS", 1], row![1, "Math", 2], row![2, "Physics", 3]],
        )
        .unwrap();
        db.add(school).add(stats);

        let q = Query::scan("School")
            .named("Q2")
            .join("Stats", "School.ID", "Stats.ID")
            .filter(Expr::col("Univ_name").eq(Expr::lit("UMass-Amherst")))
            .sum("bach_degr");
        let out = execute(&db, &q).unwrap();
        assert_eq!(out.scalar().unwrap(), Value::Int(3));
        assert_eq!(out.provenance.len(), 2);
        // Joined schema keeps both sides' columns.
        assert!(out.provenance.schema.contains("School.Univ_name"));
        assert!(out.provenance.schema.contains("Stats.Program"));
    }

    #[test]
    fn non_aggregate_distinct_projection() {
        let db = figure1_db();
        let q = Query::scan("D1").distinct().select(["program"]);
        let out = execute(&db, &q).unwrap();
        assert_eq!(out.result.len(), 6); // CS deduplicated
        assert_eq!(out.provenance.len(), 7); // provenance keeps all source rows
        assert!(out.provenance.tuples.iter().all(|t| t.impact == 1.0));

        let q_dup = Query::scan("D1").select(["program"]);
        assert_eq!(execute(&db, &q_dup).unwrap().result.len(), 7);
    }

    #[test]
    fn avg_max_min_aggregates() {
        let db = figure1_db();
        let avg = Query::scan("D3").avg("num_bach");
        let max = Query::scan("D3").max("num_bach");
        let min = Query::scan("D3").min("num_bach");
        let out = execute(&db, &avg).unwrap();
        assert_eq!(out.scalar().unwrap(), Value::Float(5.0 / 3.0));
        assert_eq!(execute(&db, &max).unwrap().scalar().unwrap(), Value::Int(2));
        assert_eq!(execute(&db, &min).unwrap().scalar().unwrap(), Value::Int(1));
        // AVG provenance impact is the attribute value.
        assert_eq!(out.provenance.tuples[0].impact, 2.0);
    }

    #[test]
    fn empty_input_aggregates() {
        let db = figure1_db();
        let none = Expr::col("program").eq(Expr::lit("Nonexistent"));
        let count = Query::scan("D1").filter(none.clone()).count("program");
        let sum = Query::scan("D1").filter(none.clone()).sum("program");
        let max = Query::scan("D1").filter(none).max("program");
        assert_eq!(execute(&db, &count).unwrap().scalar().unwrap(), Value::Int(0));
        assert!(execute(&db, &sum).unwrap().scalar().unwrap().is_null());
        assert!(execute(&db, &max).unwrap().scalar().unwrap().is_null());
    }

    #[test]
    fn union_and_projection_sources() {
        let db = figure1_db();
        let source = QueryExpr::scan("D1").project(["program"]).union(
            QueryExpr::scan("D2").filter(Expr::col("univ").eq(Expr::lit("A"))).project(["major"]),
        );
        let q = Query::over(source).named("U").count_star();
        let out = execute(&db, &q).unwrap();
        assert_eq!(out.scalar().unwrap(), Value::Int(13));

        // Union of incompatible schemas fails.
        let bad = QueryExpr::scan("D1").union(QueryExpr::scan("D3"));
        assert!(execute(&db, &Query::over(bad).count_star()).is_err());
    }

    #[test]
    fn semi_and_anti_join_subqueries() {
        let db = figure1_db();
        // Programs in D1 that also appear as majors of university A in D2.
        let sub = QueryExpr::scan("D2").filter(Expr::col("univ").eq(Expr::lit("A")));
        let q_in = Query::over(QueryExpr::scan("D1").semi_join(sub.clone(), "program", "major"))
            .count("program");
        // CS/CSE differ lexically, so only 5 of 7 D1 rows match (Accounting, ECE, EE, Management, Design).
        assert_eq!(execute(&db, &q_in).unwrap().scalar().unwrap(), Value::Int(5));

        let q_not_in =
            Query::over(QueryExpr::scan("D1").anti_join(sub, "program", "major")).count("program");
        assert_eq!(execute(&db, &q_not_in).unwrap().scalar().unwrap(), Value::Int(2));
    }

    #[test]
    fn execution_errors_are_reported() {
        let db = figure1_db();
        let q = Query::scan("Missing").count_star();
        assert!(matches!(execute(&db, &q), Err(RelationError::UnknownRelation { .. })));
        let q = Query::scan("D1").count("nonexistent_column");
        assert!(execute(&db, &q).is_err());
        let q = Query::scan("D1").sum("program");
        // Summing a string column yields zero impacts but still runs; the
        // result is NULL because no value coerces to a number.
        let out = execute(&db, &q).unwrap();
        assert!(out.scalar().unwrap().is_null());
    }

    #[test]
    fn count_star_counts_rows_with_nulls() {
        let mut db = Database::new();
        let rel = Relation::with_rows(
            "T",
            Schema::from_pairs(&[("a", ValueType::Str)]),
            vec![row!["x"], Row::new(vec![Value::Null]), row!["y"]],
        )
        .unwrap();
        db.add(rel);
        let star = Query::scan("T").count_star();
        let col = Query::scan("T").count("a");
        assert_eq!(execute(&db, &star).unwrap().scalar().unwrap(), Value::Int(3));
        assert_eq!(execute(&db, &col).unwrap().scalar().unwrap(), Value::Int(2));
    }
}
