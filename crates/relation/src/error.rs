//! Error types for the relational engine.

use std::fmt;

/// Errors produced by schema resolution, query construction, and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A referenced column does not exist in the schema.
    UnknownColumn {
        /// The name that failed to resolve.
        name: String,
        /// The columns that were available.
        available: Vec<String>,
    },
    /// A column reference matched more than one column.
    AmbiguousColumn {
        /// The ambiguous name.
        name: String,
    },
    /// A referenced relation does not exist in the database.
    UnknownRelation {
        /// The missing relation name.
        name: String,
    },
    /// A row's arity does not match its schema.
    ArityMismatch {
        /// Expected number of columns.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// Relations combined by UNION have incompatible schemas.
    UnionMismatch {
        /// Left schema rendered as text.
        left: String,
        /// Right schema rendered as text.
        right: String,
    },
    /// An aggregate was applied to a non-numeric or empty input where it is
    /// not defined.
    InvalidAggregate {
        /// Description of the problem.
        message: String,
    },
    /// A scalar sub-query returned something other than a single value.
    ScalarSubqueryCardinality {
        /// Number of rows returned.
        rows: usize,
    },
    /// Generic query-construction or execution error.
    Invalid {
        /// Description of the problem.
        message: String,
    },
}

impl RelationError {
    /// Convenience constructor for [`RelationError::Invalid`].
    pub fn invalid(message: impl Into<String>) -> Self {
        RelationError::Invalid { message: message.into() }
    }
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::UnknownColumn { name, available } => {
                write!(f, "unknown column `{name}` (available: {})", available.join(", "))
            }
            RelationError::AmbiguousColumn { name } => {
                write!(f, "ambiguous column reference `{name}`")
            }
            RelationError::UnknownRelation { name } => {
                write!(f, "unknown relation `{name}`")
            }
            RelationError::ArityMismatch { expected, actual } => {
                write!(f, "row arity mismatch: expected {expected} values, got {actual}")
            }
            RelationError::UnionMismatch { left, right } => {
                write!(f, "union of incompatible schemas: {left} vs {right}")
            }
            RelationError::InvalidAggregate { message } => {
                write!(f, "invalid aggregate: {message}")
            }
            RelationError::ScalarSubqueryCardinality { rows } => {
                write!(f, "scalar sub-query returned {rows} rows (expected exactly 1)")
            }
            RelationError::Invalid { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelationError::UnknownColumn {
            name: "x".into(),
            available: vec!["a".into(), "b".into()],
        };
        let s = e.to_string();
        assert!(s.contains("x") && s.contains("a, b"));

        let e = RelationError::ArityMismatch { expected: 3, actual: 2 };
        assert!(e.to_string().contains("expected 3"));

        let e = RelationError::invalid("boom");
        assert_eq!(e.to_string(), "boom");
    }
}
