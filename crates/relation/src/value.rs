//! Typed cell values for the in-memory relational engine.
//!
//! The engine is deliberately small: it supports the value types that appear
//! in the paper's workloads (academic catalogs, IMDb views, synthetic
//! `Table(id, match_attr, val)` data) — 64-bit integers, 64-bit floats,
//! strings, booleans, and SQL-style NULL.

use std::cmp::Ordering;
use std::fmt;

/// The logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Column whose type is unknown (all-NULL or not yet inferred).
    Unknown,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "INT",
            ValueType::Float => "FLOAT",
            ValueType::Str => "TEXT",
            ValueType::Bool => "BOOL",
            ValueType::Unknown => "UNKNOWN",
        };
        f.write_str(s)
    }
}

/// A single cell value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Returns the type of this value, or [`ValueType::Unknown`] for NULL.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Null => ValueType::Unknown,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
            Value::Bool(_) => ValueType::Bool,
        }
    }

    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Interprets the value as a float where possible (Int, Float, Bool).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Interprets the value as an integer where it is exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Interprets the value as a string slice (only for `Str`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Interprets the value as a boolean. Numbers are truthy when non-zero.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            Value::Float(f) => Some(*f != 0.0),
            _ => None,
        }
    }

    /// SQL-style three-valued equality: NULL compares as `None`.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.loose_eq(other))
    }

    /// Equality that coerces numeric types (`Int(2) == Float(2.0)`), treating
    /// NULLs as equal to each other. Used for grouping and gold-standard
    /// comparison rather than SQL predicate evaluation.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }

    /// SQL-style comparison with numeric coercion. NULLs return `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                // lint:allow(float-total-order): SQL comparison semantics — a
                // NaN operand must yield None (UNKNOWN), exactly the partial
                // ordering; deterministic sorting uses `total_cmp` below.
                x.partial_cmp(&y)
            }
        }
    }

    /// Total ordering used for deterministic sorting of heterogeneous rows:
    /// NULL < Bool < numeric < Str, with numeric coercion inside the numeric
    /// class. Within the numeric class the ordering is [`f64::total_cmp`],
    /// so every NaN has a definite position (negative NaN below -∞, positive
    /// NaN above +∞) instead of comparing Equal to everything — sorting is
    /// total and deterministic for any input, non-finite floats included.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        let (ca, cb) = (class(self), class(other));
        if ca != cb {
            return ca.cmp(&cb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => {
                let x = a.as_f64().unwrap_or(f64::NAN);
                let y = b.as_f64().unwrap_or(f64::NAN);
                x.total_cmp(&y)
            }
        }
    }

    /// Key usable for hashing/grouping: canonicalises Int/Float to a shared
    /// representation and Strings by content.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Bool(*b),
            Value::Int(i) => GroupKey::Num((*i as f64).to_bits()),
            Value::Float(f) => GroupKey::Num(f.to_bits()),
            Value::Str(s) => GroupKey::Str(s.clone()),
        }
    }

    /// Numeric addition with NULL propagation; strings concatenate.
    pub fn add(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Str(a), Value::Str(b)) => Value::Str(format!("{a}{b}")),
            (Value::Int(a), Value::Int(b)) => Value::Int(a + b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Float(x + y),
                _ => Value::Null,
            },
        }
    }

    /// Numeric subtraction with NULL propagation.
    pub fn sub(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Value::Int(a - b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Float(x - y),
                _ => Value::Null,
            },
        }
    }

    /// Numeric multiplication with NULL propagation.
    pub fn mul(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Value::Int(a * b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Float(x * y),
                _ => Value::Null,
            },
        }
    }

    /// Numeric division; division by zero or non-numeric yields NULL.
    pub fn div(&self, other: &Value) -> Value {
        match (self.as_f64(), other.as_f64()) {
            (Some(x), Some(y)) if y != 0.0 => Value::Float(x / y),
            _ => Value::Null,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.loose_eq(other)
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Hashable canonical key for grouping values (numeric types unified).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupKey {
    /// NULL group.
    Null,
    /// Boolean group.
    Bool(bool),
    /// Numeric group keyed by the f64 bit pattern of the coerced value.
    Num(u64),
    /// String group.
    Str(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercion_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::Float(2.5));
        assert_eq!(Value::from("abc"), Value::str("abc"));
    }

    #[test]
    fn null_three_valued_logic() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn loose_eq_treats_nulls_equal() {
        assert!(Value::Null.loose_eq(&Value::Null));
        assert!(!Value::Null.loose_eq(&Value::Int(0)));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Value::Int(3).add(&Value::Int(4)), Value::Int(7));
        assert_eq!(Value::Int(3).add(&Value::Float(0.5)), Value::Float(3.5));
        assert_eq!(Value::Int(3).add(&Value::Null), Value::Null);
        assert_eq!(Value::str("a").add(&Value::str("b")), Value::str("ab"));
        assert_eq!(Value::Int(10).div(&Value::Int(0)), Value::Null);
        assert_eq!(Value::Int(10).div(&Value::Int(4)), Value::Float(2.5));
        assert_eq!(Value::Int(7).sub(&Value::Int(3)), Value::Int(4));
        assert_eq!(Value::Int(7).mul(&Value::Int(3)), Value::Int(21));
    }

    #[test]
    fn total_cmp_orders_classes() {
        let mut vals =
            [Value::str("z"), Value::Int(5), Value::Null, Value::Bool(true), Value::Float(1.5)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(1.5));
        assert_eq!(vals[3], Value::Int(5));
        assert_eq!(vals[4], Value::str("z"));
    }

    #[test]
    fn total_cmp_places_nan_deterministically() {
        // Regression: `partial_cmp(..).unwrap_or(Equal)` made NaN compare
        // Equal to every number, so sorts containing NaN were not total and
        // could produce different permutations per run. `f64::total_cmp`
        // pins positive NaN above +∞ (and negative NaN below -∞).
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&Value::Float(f64::INFINITY)), Ordering::Greater);
        assert_eq!(Value::Float(1.0).total_cmp(&nan), Ordering::Less);
        assert_eq!(Value::Float(f64::NEG_INFINITY).total_cmp(&nan), Ordering::Less);
        assert_eq!(nan.total_cmp(&Value::Float(f64::NAN)), Ordering::Equal);
        assert_eq!(
            Value::Float(-f64::NAN).total_cmp(&Value::Float(f64::NEG_INFINITY)),
            Ordering::Less
        );
        // Sorting a mixed vector with NaN is stable and deterministic.
        let mut vals = [
            Value::Float(f64::NAN),
            Value::Float(2.0),
            Value::Int(1),
            Value::Float(f64::NEG_INFINITY),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Float(f64::NEG_INFINITY));
        assert_eq!(vals[1], Value::Int(1));
        assert_eq!(vals[2], Value::Float(2.0));
        assert!(vals[3].as_f64().unwrap().is_nan());
    }

    #[test]
    fn group_key_unifies_int_and_float() {
        assert_eq!(Value::Int(3).group_key(), Value::Float(3.0).group_key());
        assert_ne!(Value::Int(3).group_key(), Value::Float(3.1).group_key());
        assert_ne!(Value::str("3").group_key(), Value::Int(3).group_key());
    }

    #[test]
    fn casts() {
        assert_eq!(Value::Float(2.0).as_i64(), Some(2));
        assert_eq!(Value::Float(2.5).as_i64(), None);
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Int(0).as_bool(), Some(false));
        assert_eq!(Value::Null.as_bool(), None);
    }

    #[test]
    fn display_round_trip_is_stable() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("hello").to_string(), "hello");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn value_type_reporting() {
        assert_eq!(Value::Int(1).value_type(), ValueType::Int);
        assert_eq!(Value::Null.value_type(), ValueType::Unknown);
        assert_eq!(Value::str("a").value_type(), ValueType::Str);
        assert_eq!(ValueType::Str.to_string(), "TEXT");
    }
}
