//! In-memory relations (tables) and the database catalog that holds them.

use crate::error::RelationError;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A named, in-memory relation: a schema plus a bag of rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
}

impl Relation {
    /// Creates an empty relation with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Relation { name: name.into(), schema, rows: Vec::new() }
    }

    /// Creates a relation and bulk-loads rows, validating arity.
    pub fn with_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Row>,
    ) -> Result<Self, RelationError> {
        let mut rel = Relation::new(name, schema);
        for row in rows {
            rel.insert(row)?;
        }
        Ok(rel)
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the relation (returns self for chaining).
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Row at position `idx`.
    pub fn row(&self, idx: usize) -> Option<&Row> {
        self.rows.get(idx)
    }

    /// Inserts a row, validating its arity against the schema.
    pub fn insert(&mut self, row: Row) -> Result<(), RelationError> {
        if row.arity() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                actual: row.arity(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Inserts a row built from convertible values.
    pub fn insert_values<I, V>(&mut self, values: I) -> Result<(), RelationError>
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        self.insert(Row::from_iter(values))
    }

    /// Removes rows matching a predicate; returns how many were removed.
    pub fn retain<F: FnMut(&Row) -> bool>(&mut self, mut keep: F) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| keep(r));
        before - self.rows.len()
    }

    /// Returns a copy of this relation with all column names qualified by the
    /// relation name (e.g. `title` becomes `movie.title`).
    pub fn qualified(&self) -> Relation {
        Relation {
            name: self.name.clone(),
            schema: self.schema.qualified(&self.name),
            rows: self.rows.clone(),
        }
    }

    /// Projects onto the named columns, preserving row order and duplicates.
    pub fn project(&self, names: &[&str]) -> Result<Relation, RelationError> {
        let idx: Vec<usize> =
            names.iter().map(|n| self.schema.index_of(n)).collect::<Result<_, _>>()?;
        let schema = self.schema.project(names)?;
        let rows = self.rows.iter().map(|r| r.project(&idx)).collect();
        Ok(Relation { name: self.name.clone(), schema, rows })
    }

    /// Returns a copy with duplicate rows removed (first occurrence kept).
    pub fn distinct(&self) -> Relation {
        let mut seen: Vec<Row> = Vec::new();
        let mut rows = Vec::new();
        for r in &self.rows {
            if !seen.iter().any(|s| s == r) {
                seen.push(r.clone());
                rows.push(r.clone());
            }
        }
        Relation { name: self.name.clone(), schema: self.schema.clone(), rows }
    }

    /// Returns a copy with rows sorted by the deterministic total order.
    pub fn sorted(&self) -> Relation {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| a.total_cmp(b));
        Relation { name: self.name.clone(), schema: self.schema.clone(), rows }
    }

    /// Extracts the single value of a 1×1 relation (e.g. an aggregate result).
    pub fn scalar(&self) -> Result<Value, RelationError> {
        if self.rows.len() != 1 || self.schema.arity() != 1 {
            return Err(RelationError::ScalarSubqueryCardinality { rows: self.rows.len() });
        }
        Ok(self.rows[0][0].clone())
    }

    /// Values of the named column, in row order.
    pub fn column_values(&self, name: &str) -> Result<Vec<Value>, RelationError> {
        let idx = self.schema.index_of(name)?;
        Ok(self.rows.iter().map(|r| r[idx].clone()).collect())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {}", self.name, self.schema)?;
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

/// A catalog of named relations (one "dataset" in the paper's terminology).
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds (or replaces) a relation, keyed by its lower-cased name.
    pub fn add(&mut self, relation: Relation) -> &mut Self {
        self.relations.insert(relation.name().to_ascii_lowercase(), relation);
        self
    }

    /// Looks up a relation by name (case-insensitive).
    pub fn get(&self, name: &str) -> Result<&Relation, RelationError> {
        self.relations
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| RelationError::UnknownRelation { name: name.to_string() })
    }

    /// Mutable lookup by name (case-insensitive).
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Relation, RelationError> {
        self.relations
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| RelationError::UnknownRelation { name: name.to_string() })
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.values().map(|r| r.name()).collect()
    }

    /// Number of relations in the catalog.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total number of rows across all relations.
    pub fn total_rows(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::ValueType;

    fn majors() -> Relation {
        let schema = Schema::from_pairs(&[("major", ValueType::Str), ("degree", ValueType::Str)]);
        Relation::with_rows(
            "Major",
            schema,
            vec![row!["CS", "B.S."], row!["CS", "B.A."], row!["ECE", "B.S."], row!["CS", "B.S."]],
        )
        .unwrap()
    }

    #[test]
    fn insert_validates_arity() {
        let mut rel = majors();
        assert_eq!(rel.len(), 4);
        let err = rel.insert(row!["only-one"]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { expected: 2, actual: 1 }));
        rel.insert_values(["EE", "B.S."]).unwrap();
        assert_eq!(rel.len(), 5);
    }

    #[test]
    fn project_and_distinct() {
        let rel = majors();
        let p = rel.project(&["major"]).unwrap();
        assert_eq!(p.schema().arity(), 1);
        assert_eq!(p.len(), 4);
        let d = p.distinct();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn qualified_schema_access() {
        let rel = majors().qualified();
        assert!(rel.schema().contains("Major.major"));
        assert!(rel.schema().contains("degree"));
    }

    #[test]
    fn retain_removes_rows() {
        let mut rel = majors();
        let removed = rel.retain(|r| r[0] != Value::str("CS"));
        assert_eq!(removed, 3);
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn scalar_extraction() {
        let schema = Schema::from_pairs(&[("count", ValueType::Int)]);
        let rel = Relation::with_rows("r", schema, vec![row![7]]).unwrap();
        assert_eq!(rel.scalar().unwrap(), Value::Int(7));
        assert!(majors().scalar().is_err());
    }

    #[test]
    fn column_values_and_sorted() {
        let rel = majors();
        let vals = rel.column_values("major").unwrap();
        assert_eq!(vals.len(), 4);
        let sorted = rel.sorted();
        assert_eq!(sorted.rows()[0][0], Value::str("CS"));
        assert_eq!(sorted.rows()[3][0], Value::str("ECE"));
        assert!(rel.column_values("nope").is_err());
    }

    #[test]
    fn database_catalog_roundtrip() {
        let mut db = Database::new();
        db.add(majors());
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
        assert_eq!(db.total_rows(), 4);
        assert!(db.get("major").is_ok());
        assert!(db.get("MAJOR").is_ok());
        assert!(db.get("missing").is_err());
        db.get_mut("major").unwrap().insert(row!["EE", "B.S."]).unwrap();
        assert_eq!(db.total_rows(), 5);
    }
}
