//! Scalar expressions used in selection predicates (`σ_C`).
//!
//! The paper allows any operators in the selection condition `C` except
//! user-defined functions. This module supports column references, literals,
//! comparison, boolean logic, arithmetic, NULL tests, LIKE-style substring
//! matching, and (NOT) IN over either a literal set or an uncorrelated
//! sub-query (materialised by the executor into a literal set before
//! evaluation).

use crate::error::RelationError;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition (string concatenation for strings).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (NULL on division by zero).
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// A scalar expression evaluated against a single row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by (possibly qualified) name.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// Binary comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Binary arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical AND (three-valued).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR (three-valued).
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT (three-valued).
    Not(Box<Expr>),
    /// `expr IS NULL`.
    IsNull(Box<Expr>),
    /// SQL LIKE with `%` wildcards (prefix/suffix/substring patterns).
    Like {
        /// The expression whose string value is matched.
        expr: Box<Expr>,
        /// Pattern with optional leading/trailing `%`.
        pattern: String,
    },
    /// `expr [NOT] IN (v1, v2, ...)` over a materialised set of values.
    InSet {
        /// The probed expression.
        expr: Box<Expr>,
        /// The literal set.
        set: Vec<Value>,
        /// True for NOT IN.
        negated: bool,
    },
}

impl Expr {
    /// Column reference helper.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Literal helper.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp { op: CmpOp::Eq, left: Box::new(self), right: Box::new(other) }
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp { op: CmpOp::Ne, left: Box::new(self), right: Box::new(other) }
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp { op: CmpOp::Lt, left: Box::new(self), right: Box::new(other) }
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp { op: CmpOp::Le, left: Box::new(self), right: Box::new(other) }
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp { op: CmpOp::Gt, left: Box::new(self), right: Box::new(other) }
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp { op: CmpOp::Ge, left: Box::new(self), right: Box::new(other) }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// `self LIKE pattern`.
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like { expr: Box::new(self), pattern: pattern.into() }
    }

    /// `self IN (values...)`.
    pub fn in_set<I, V>(self, values: I) -> Expr
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Expr::InSet {
            expr: Box::new(self),
            set: values.into_iter().map(Into::into).collect(),
            negated: false,
        }
    }

    /// `self NOT IN (values...)`.
    pub fn not_in_set<I, V>(self, values: I) -> Expr
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Expr::InSet {
            expr: Box::new(self),
            set: values.into_iter().map(Into::into).collect(),
            negated: true,
        }
    }

    /// Evaluates the expression against a row, returning a value.
    pub fn eval(&self, schema: &Schema, row: &Row) -> Result<Value, RelationError> {
        match self {
            Expr::Column(name) => {
                let idx = schema.index_of(name)?;
                Ok(row.get(idx).cloned().unwrap_or(Value::Null))
            }
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Cmp { op, left, right } => {
                let l = left.eval(schema, row)?;
                let r = right.eval(schema, row)?;
                Ok(eval_cmp(*op, &l, &r))
            }
            Expr::Arith { op, left, right } => {
                let l = left.eval(schema, row)?;
                let r = right.eval(schema, row)?;
                Ok(match op {
                    ArithOp::Add => l.add(&r),
                    ArithOp::Sub => l.sub(&r),
                    ArithOp::Mul => l.mul(&r),
                    ArithOp::Div => l.div(&r),
                })
            }
            Expr::And(a, b) => {
                let l = a.eval(schema, row)?;
                let r = b.eval(schema, row)?;
                Ok(three_valued_and(&l, &r))
            }
            Expr::Or(a, b) => {
                let l = a.eval(schema, row)?;
                let r = b.eval(schema, row)?;
                Ok(three_valued_or(&l, &r))
            }
            Expr::Not(e) => {
                let v = e.eval(schema, row)?;
                Ok(match v.as_bool() {
                    Some(b) => Value::Bool(!b),
                    None => Value::Null,
                })
            }
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(schema, row)?.is_null())),
            Expr::Like { expr, pattern } => {
                let v = expr.eval(schema, row)?;
                Ok(match v {
                    Value::Null => Value::Null,
                    other => Value::Bool(like_match(&other.to_string(), pattern)),
                })
            }
            Expr::InSet { expr, set, negated } => {
                let v = expr.eval(schema, row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let found = set.iter().any(|s| s.loose_eq(&v));
                Ok(Value::Bool(found != *negated))
            }
        }
    }

    /// Evaluates the expression as a predicate: NULL and false both reject.
    pub fn eval_predicate(&self, schema: &Schema, row: &Row) -> Result<bool, RelationError> {
        Ok(self.eval(schema, row)?.as_bool().unwrap_or(false))
    }

    /// Collects the column names referenced by the expression.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            Expr::Literal(_) => {}
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(e) | Expr::IsNull(e) => e.collect_columns(out),
            Expr::Like { expr, .. } => expr.collect_columns(out),
            Expr::InSet { expr, .. } => expr.collect_columns(out),
        }
    }
}

fn eval_cmp(op: CmpOp, l: &Value, r: &Value) -> Value {
    match op {
        CmpOp::Eq => match l.sql_eq(r) {
            Some(b) => Value::Bool(b),
            None => Value::Null,
        },
        CmpOp::Ne => match l.sql_eq(r) {
            Some(b) => Value::Bool(!b),
            None => Value::Null,
        },
        _ => match l.sql_cmp(r) {
            Some(ord) => Value::Bool(match op {
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            }),
            None => Value::Null,
        },
    }
}

fn three_valued_and(l: &Value, r: &Value) -> Value {
    match (l.as_bool(), r.as_bool()) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn three_valued_or(l: &Value, r: &Value) -> Value {
    match (l.as_bool(), r.as_bool()) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

/// SQL LIKE with `%` wildcards only (no `_`), case-insensitive.
fn like_match(text: &str, pattern: &str) -> bool {
    let text = text.to_ascii_lowercase();
    let pattern = pattern.to_ascii_lowercase();
    let parts: Vec<&str> = pattern.split('%').collect();
    if parts.len() == 1 {
        return text == pattern;
    }
    let mut pos = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            if !text.starts_with(part) {
                return false;
            }
            pos = part.len();
        } else if i == parts.len() - 1 {
            return text[pos..].ends_with(part);
        } else {
            match text[pos..].find(part) {
                Some(p) => pos += p + part.len(),
                None => return false,
            }
        }
    }
    true
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Cmp { op, left, right } => write!(f, "{left} {op} {right}"),
            Expr::Arith { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::IsNull(e) => write!(f, "{e} IS NULL"),
            Expr::Like { expr, pattern } => write!(f, "{expr} LIKE '{pattern}'"),
            Expr::InSet { expr, set, negated } => {
                let kw = if *negated { "NOT IN" } else { "IN" };
                write!(f, "{expr} {kw} ({} values)", set.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::ValueType;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("univ", ValueType::Str),
            ("major", ValueType::Str),
            ("year", ValueType::Int),
            ("gross", ValueType::Float),
        ])
    }

    #[test]
    fn column_and_literal() {
        let s = schema();
        let r = row!["A", "CS", 1999, 10.5];
        assert_eq!(Expr::col("major").eval(&s, &r).unwrap(), Value::str("CS"));
        assert_eq!(Expr::lit(3).eval(&s, &r).unwrap(), Value::Int(3));
        assert!(Expr::col("missing").eval(&s, &r).is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        let s = schema();
        let r = row!["A", "CS", 1999, 10.5];
        let p = Expr::col("univ").eq(Expr::lit("A")).and(Expr::col("year").ge(Expr::lit(1990)));
        assert!(p.eval_predicate(&s, &r).unwrap());
        let p2 = Expr::col("univ").eq(Expr::lit("B")).or(Expr::col("year").lt(Expr::lit(1990)));
        assert!(!p2.eval_predicate(&s, &r).unwrap());
        let p3 = Expr::col("gross").gt(Expr::lit(10)).not();
        assert!(!p3.eval_predicate(&s, &r).unwrap());
        assert!(Expr::col("year").ne(Expr::lit(2000)).eval_predicate(&s, &r).unwrap());
        assert!(Expr::col("year").le(Expr::lit(1999)).eval_predicate(&s, &r).unwrap());
    }

    #[test]
    fn null_semantics_in_predicates() {
        let s = schema();
        let r = Row::new(vec![Value::Null, Value::str("CS"), Value::Int(1999), Value::Null]);
        // NULL = 'A' is unknown -> predicate rejects.
        assert!(!Expr::col("univ").eq(Expr::lit("A")).eval_predicate(&s, &r).unwrap());
        // NOT (NULL = 'A') is still unknown -> rejects.
        assert!(!Expr::col("univ").eq(Expr::lit("A")).not().eval_predicate(&s, &r).unwrap());
        // IS NULL works.
        assert!(Expr::col("univ").is_null().eval_predicate(&s, &r).unwrap());
        // unknown AND false = false; unknown OR true = true.
        let unknown = Expr::col("univ").eq(Expr::lit("A"));
        assert!(!unknown.clone().and(Expr::lit(false)).eval_predicate(&s, &r).unwrap());
        assert!(unknown.or(Expr::lit(true)).eval_predicate(&s, &r).unwrap());
    }

    #[test]
    fn arithmetic_in_predicates() {
        let s = schema();
        let r = row!["A", "CS", 1999, 10.5];
        let e = Expr::Arith {
            op: ArithOp::Add,
            left: Box::new(Expr::col("year")),
            right: Box::new(Expr::lit(1)),
        };
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Int(2000));
        let e = Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(Expr::col("gross")),
            right: Box::new(Expr::lit(0)),
        };
        assert!(e.eval(&s, &r).unwrap().is_null());
    }

    #[test]
    fn like_matching() {
        let s = schema();
        let r = row!["A", "Computer Science", 1999, 1.0];
        assert!(Expr::col("major").like("%science").eval_predicate(&s, &r).unwrap());
        assert!(Expr::col("major").like("computer%").eval_predicate(&s, &r).unwrap());
        assert!(Expr::col("major").like("%puter%").eval_predicate(&s, &r).unwrap());
        assert!(!Expr::col("major").like("%biology%").eval_predicate(&s, &r).unwrap());
        assert!(Expr::col("major").like("computer science").eval_predicate(&s, &r).unwrap());
    }

    #[test]
    fn in_set_and_not_in_set() {
        let s = schema();
        let r = row!["A", "CS", 1999, 1.0];
        assert!(Expr::col("major").in_set(["CS", "EE"]).eval_predicate(&s, &r).unwrap());
        assert!(!Expr::col("major").not_in_set(["CS", "EE"]).eval_predicate(&s, &r).unwrap());
        assert!(Expr::col("major").not_in_set(["Art"]).eval_predicate(&s, &r).unwrap());
        // NULL probe -> unknown -> rejected in both polarities.
        let rn = Row::new(vec![Value::str("A"), Value::Null, Value::Int(1), Value::Null]);
        assert!(!Expr::col("major").in_set(["CS"]).eval_predicate(&s, &rn).unwrap());
        assert!(!Expr::col("major").not_in_set(["CS"]).eval_predicate(&s, &rn).unwrap());
    }

    #[test]
    fn referenced_columns_are_collected_once() {
        let e = Expr::col("a")
            .eq(Expr::lit(1))
            .and(Expr::col("b").gt(Expr::col("a")))
            .or(Expr::col("c").is_null());
        let cols = e.referenced_columns();
        assert_eq!(cols, vec!["a".to_string(), "b".to_string(), "c".to_string()]);
    }

    #[test]
    fn display_renders_sql_like_text() {
        let e = Expr::col("univ").eq(Expr::lit("A")).and(Expr::col("year").ge(Expr::lit(1990)));
        let s = e.to_string();
        assert!(s.contains("univ = 'A'"));
        assert!(s.contains("AND"));
    }
}
