//! # explain3d-relation
//!
//! A small, self-contained in-memory relational engine used as the data
//! substrate of the Explain3D reproduction (VLDB 2019).
//!
//! It provides:
//!
//! * typed [`value::Value`]s, [`schema::Schema`]s, [`row::Row`]s and
//!   [`relation::Relation`]s grouped into a [`relation::Database`] catalog;
//! * a query AST ([`query::Query`], [`query::QueryExpr`]) covering the
//!   paper's query class `Q = π_o σ_C(X)` with joins, unions, sub-queries
//!   and the five SQL aggregates;
//! * an [`exec::Executor`] that evaluates queries and derives the
//!   **provenance relation** of Definition 2.3
//!   ([`provenance::ProvenanceRelation`]), which is the input to the
//!   Explain3D explanation pipeline.
//!
//! ```
//! use explain3d_relation::prelude::*;
//!
//! let mut db = Database::new();
//! let mut majors = Relation::new(
//!     "Major",
//!     Schema::from_pairs(&[("major", ValueType::Str), ("degree", ValueType::Str)]),
//! );
//! majors.insert_values(["CS", "B.S."]).unwrap();
//! majors.insert_values(["CS", "B.A."]).unwrap();
//! db.add(majors);
//!
//! let q = Query::scan("Major").named("Q1").count("major");
//! let out = execute(&db, &q).unwrap();
//! assert_eq!(out.scalar().unwrap(), Value::Int(2));
//! assert_eq!(out.provenance.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod exec;
pub mod expr;
pub mod provenance;
pub mod query;
pub mod relation;
pub mod row;
pub mod schema;
pub mod value;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::error::RelationError;
    pub use crate::exec::{execute, Executor, QueryOutput};
    pub use crate::expr::{ArithOp, CmpOp, Expr};
    pub use crate::provenance::{ProvTuple, ProvenanceRelation};
    pub use crate::query::{Aggregate, Projection, Query, QueryBuilder, QueryExpr};
    pub use crate::relation::{Database, Relation};
    pub use crate::row::Row;
    pub use crate::schema::{Column, Schema};
    pub use crate::value::{Value, ValueType};
}

pub use prelude::*;
