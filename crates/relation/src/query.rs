//! Query AST for the paper's query class `Q = π_o σ_C(X)`.
//!
//! `X` may be a base relation or an arbitrary composition of filters,
//! equi-joins, unions, semi/anti-joins (IN / NOT IN sub-queries) and nested
//! queries; `C` is any scalar predicate without UDFs; `o` is either a list of
//! attributes or one of the five SQL aggregates (COUNT, SUM, AVG, MAX, MIN).

use crate::expr::Expr;
use std::fmt;

/// The five supported SQL aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// COUNT(column) or COUNT(*) when no column is given.
    Count,
    /// SUM(column).
    Sum,
    /// AVG(column).
    Avg,
    /// MAX(column).
    Max,
    /// MIN(column).
    Min,
}

impl Aggregate {
    /// True for aggregates whose canonicalisation requires a strict
    /// one-to-one mapping (AVG, MAX, MIN) per Definition 3.1 of the paper.
    pub fn requires_one_to_one(&self) -> bool {
        matches!(self, Aggregate::Avg | Aggregate::Max | Aggregate::Min)
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Aggregate::Count => "COUNT",
            Aggregate::Sum => "SUM",
            Aggregate::Avg => "AVG",
            Aggregate::Max => "MAX",
            Aggregate::Min => "MIN",
        };
        f.write_str(s)
    }
}

/// The projection `π_o` of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// Project a set of attributes.
    Columns(Vec<String>),
    /// Apply an aggregate function over an attribute (`None` = COUNT(*)).
    Aggregate {
        /// The aggregate function.
        func: Aggregate,
        /// The aggregated attribute; `None` is only meaningful for COUNT.
        column: Option<String>,
    },
}

impl Projection {
    /// The aggregate function, if the projection is an aggregate.
    pub fn aggregate(&self) -> Option<Aggregate> {
        match self {
            Projection::Aggregate { func, .. } => Some(*func),
            Projection::Columns(_) => None,
        }
    }
}

/// The relational-algebra expression `X` that feeds the final `σ_C` / `π_o`.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// Scan a base relation by name. Column names are qualified with the
    /// relation name so joins over same-named attributes stay unambiguous.
    Scan {
        /// Base relation name.
        relation: String,
    },
    /// Filter the input by a predicate.
    Filter {
        /// Input expression.
        input: Box<QueryExpr>,
        /// Selection predicate.
        predicate: Expr,
    },
    /// Equi-join of two inputs on pairs of columns.
    Join {
        /// Left input.
        left: Box<QueryExpr>,
        /// Right input.
        right: Box<QueryExpr>,
        /// Pairs of (left column, right column) that must be equal.
        on: Vec<(String, String)>,
    },
    /// Bag union of two union-compatible inputs.
    Union {
        /// Left input.
        left: Box<QueryExpr>,
        /// Right input.
        right: Box<QueryExpr>,
    },
    /// Intermediate projection (no aggregation, keeps duplicates).
    Project {
        /// Input expression.
        input: Box<QueryExpr>,
        /// Columns to keep, in order.
        columns: Vec<String>,
    },
    /// Semi-join (`IN` sub-query) or anti-join (`NOT IN` sub-query): keeps
    /// input rows whose `on.0` value does (not) appear in the sub-query's
    /// `on.1` column.
    SemiJoin {
        /// Outer input.
        input: Box<QueryExpr>,
        /// Uncorrelated sub-query.
        sub: Box<QueryExpr>,
        /// (outer column, sub-query column) pair.
        on: (String, String),
        /// True for NOT IN (anti-join).
        anti: bool,
    },
}

impl QueryExpr {
    /// Scans a base relation.
    pub fn scan(relation: impl Into<String>) -> QueryExpr {
        QueryExpr::Scan { relation: relation.into() }
    }

    /// Adds a filter on top of this expression.
    pub fn filter(self, predicate: Expr) -> QueryExpr {
        QueryExpr::Filter { input: Box::new(self), predicate }
    }

    /// Equi-joins this expression with another on one column pair.
    pub fn join_on(
        self,
        right: QueryExpr,
        left_col: impl Into<String>,
        right_col: impl Into<String>,
    ) -> QueryExpr {
        QueryExpr::Join {
            left: Box::new(self),
            right: Box::new(right),
            on: vec![(left_col.into(), right_col.into())],
        }
    }

    /// Equi-joins on several column pairs.
    pub fn join_on_all(self, right: QueryExpr, on: Vec<(String, String)>) -> QueryExpr {
        QueryExpr::Join { left: Box::new(self), right: Box::new(right), on }
    }

    /// Unions this expression with another.
    pub fn union(self, right: QueryExpr) -> QueryExpr {
        QueryExpr::Union { left: Box::new(self), right: Box::new(right) }
    }

    /// Projects the expression onto the given columns.
    pub fn project<I, S>(self, columns: I) -> QueryExpr
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        QueryExpr::Project {
            input: Box::new(self),
            columns: columns.into_iter().map(Into::into).collect(),
        }
    }

    /// Keeps rows whose `col` value appears in `sub`'s `sub_col` column.
    pub fn semi_join(
        self,
        sub: QueryExpr,
        col: impl Into<String>,
        sub_col: impl Into<String>,
    ) -> QueryExpr {
        QueryExpr::SemiJoin {
            input: Box::new(self),
            sub: Box::new(sub),
            on: (col.into(), sub_col.into()),
            anti: false,
        }
    }

    /// Keeps rows whose `col` value does NOT appear in `sub`'s `sub_col`.
    pub fn anti_join(
        self,
        sub: QueryExpr,
        col: impl Into<String>,
        sub_col: impl Into<String>,
    ) -> QueryExpr {
        QueryExpr::SemiJoin {
            input: Box::new(self),
            sub: Box::new(sub),
            on: (col.into(), sub_col.into()),
            anti: true,
        }
    }

    /// Names of all base relations scanned by the expression.
    pub fn scanned_relations(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_scans(&mut out);
        out
    }

    fn collect_scans(&self, out: &mut Vec<String>) {
        match self {
            QueryExpr::Scan { relation } => {
                if !out.contains(relation) {
                    out.push(relation.clone());
                }
            }
            QueryExpr::Filter { input, .. } | QueryExpr::Project { input, .. } => {
                input.collect_scans(out)
            }
            QueryExpr::Join { left, right, .. } | QueryExpr::Union { left, right } => {
                left.collect_scans(out);
                right.collect_scans(out);
            }
            QueryExpr::SemiJoin { input, sub, .. } => {
                input.collect_scans(out);
                sub.collect_scans(out);
            }
        }
    }
}

/// A complete query `π_o σ_C(X)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Optional human-readable name (used in reports and provenance).
    pub name: String,
    /// The source expression `X`.
    pub source: QueryExpr,
    /// The final selection predicate `C` (in addition to any filters inside `X`).
    pub filter: Option<Expr>,
    /// The projection `o`.
    pub projection: Projection,
    /// Whether a column projection should deduplicate its output
    /// (`SELECT DISTINCT`). Ignored for aggregate projections.
    pub distinct: bool,
}

impl Query {
    /// Starts building a query over a scanned base relation.
    pub fn scan(relation: impl Into<String>) -> QueryBuilder {
        QueryBuilder::new(QueryExpr::scan(relation))
    }

    /// Starts building a query over an arbitrary source expression.
    pub fn over(source: QueryExpr) -> QueryBuilder {
        QueryBuilder::new(source)
    }

    /// The aggregate used by this query, if any.
    pub fn aggregate(&self) -> Option<Aggregate> {
        self.projection.aggregate()
    }

    /// True when the query is an aggregate query.
    pub fn is_aggregate(&self) -> bool {
        self.aggregate().is_some()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.projection {
            Projection::Columns(cols) => {
                write!(
                    f,
                    "SELECT {}{}",
                    if self.distinct { "DISTINCT " } else { "" },
                    cols.join(", ")
                )?;
            }
            Projection::Aggregate { func, column } => {
                write!(f, "SELECT {func}({})", column.as_deref().unwrap_or("*"))?;
            }
        }
        let rels = self.source.scanned_relations();
        write!(f, " FROM {}", rels.join(", "))?;
        if let Some(p) = &self.filter {
            write!(f, " WHERE {p}")?;
        }
        Ok(())
    }
}

/// Fluent builder for [`Query`].
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    name: String,
    source: QueryExpr,
    filter: Option<Expr>,
    distinct: bool,
}

impl QueryBuilder {
    fn new(source: QueryExpr) -> Self {
        QueryBuilder { name: "Q".to_string(), source, filter: None, distinct: false }
    }

    /// Names the query (used in provenance and reports).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Adds (ANDs) a final selection predicate.
    pub fn filter(mut self, predicate: Expr) -> Self {
        self.filter = Some(match self.filter {
            Some(existing) => existing.and(predicate),
            None => predicate,
        });
        self
    }

    /// Equi-joins the current source with a scan of `relation`.
    pub fn join(
        mut self,
        relation: impl Into<String>,
        left_col: impl Into<String>,
        right_col: impl Into<String>,
    ) -> Self {
        self.source = self.source.join_on(QueryExpr::scan(relation), left_col, right_col);
        self
    }

    /// Replaces the source with a semi-join against a sub-query.
    pub fn where_in(
        mut self,
        col: impl Into<String>,
        sub: QueryExpr,
        sub_col: impl Into<String>,
    ) -> Self {
        self.source = self.source.semi_join(sub, col, sub_col);
        self
    }

    /// Replaces the source with an anti-join against a sub-query.
    pub fn where_not_in(
        mut self,
        col: impl Into<String>,
        sub: QueryExpr,
        sub_col: impl Into<String>,
    ) -> Self {
        self.source = self.source.anti_join(sub, col, sub_col);
        self
    }

    /// Finishes with `SELECT [DISTINCT] col1, col2, ...`.
    pub fn select<I, S>(self, columns: I) -> Query
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Query {
            name: self.name,
            source: self.source,
            filter: self.filter,
            projection: Projection::Columns(columns.into_iter().map(Into::into).collect()),
            distinct: self.distinct,
        }
    }

    /// Marks the projection as DISTINCT.
    pub fn distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    /// Finishes with `SELECT COUNT(column)`.
    pub fn count(self, column: impl Into<String>) -> Query {
        self.aggregate(Aggregate::Count, Some(column.into()))
    }

    /// Finishes with `SELECT COUNT(*)`.
    pub fn count_star(self) -> Query {
        self.aggregate(Aggregate::Count, None)
    }

    /// Finishes with `SELECT SUM(column)`.
    pub fn sum(self, column: impl Into<String>) -> Query {
        self.aggregate(Aggregate::Sum, Some(column.into()))
    }

    /// Finishes with `SELECT AVG(column)`.
    pub fn avg(self, column: impl Into<String>) -> Query {
        self.aggregate(Aggregate::Avg, Some(column.into()))
    }

    /// Finishes with `SELECT MAX(column)`.
    pub fn max(self, column: impl Into<String>) -> Query {
        self.aggregate(Aggregate::Max, Some(column.into()))
    }

    /// Finishes with `SELECT MIN(column)`.
    pub fn min(self, column: impl Into<String>) -> Query {
        self.aggregate(Aggregate::Min, Some(column.into()))
    }

    fn aggregate(self, func: Aggregate, column: Option<String>) -> Query {
        Query {
            name: self.name,
            source: self.source,
            filter: self.filter,
            projection: Projection::Aggregate { func, column },
            distinct: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn builder_produces_expected_shapes() {
        let q = Query::scan("Major").named("Q1").count("Major");
        assert_eq!(q.name, "Q1");
        assert_eq!(q.aggregate(), Some(Aggregate::Count));
        assert!(q.is_aggregate());
        assert_eq!(q.source.scanned_relations(), vec!["Major".to_string()]);

        let q2 = Query::scan("School")
            .named("Q2")
            .join("Stats", "School.ID", "Stats.ID")
            .filter(Expr::col("Univ_name").eq(Expr::lit("UMass-Amherst")))
            .sum("bach_degr");
        assert_eq!(q2.aggregate(), Some(Aggregate::Sum));
        assert_eq!(q2.source.scanned_relations(), vec!["School".to_string(), "Stats".to_string()]);
        assert!(q2.filter.is_some());
    }

    #[test]
    fn non_aggregate_select() {
        let q = Query::scan("Movie")
            .filter(Expr::col("release_year").eq(Expr::lit(1999)))
            .select(["title"]);
        assert!(!q.is_aggregate());
        assert_eq!(q.projection, Projection::Columns(vec!["title".to_string()]));
    }

    #[test]
    fn filters_compose_with_and() {
        let q = Query::scan("Movie")
            .filter(Expr::col("a").eq(Expr::lit(1)))
            .filter(Expr::col("b").eq(Expr::lit(2)))
            .count_star();
        let f = q.filter.unwrap();
        assert!(matches!(f, Expr::And(_, _)));
    }

    #[test]
    fn anti_join_collects_sub_scans() {
        let sub = QueryExpr::scan("MoviePerson").join_on(
            QueryExpr::scan("Movie"),
            "MoviePerson.m_id",
            "Movie.m_id",
        );
        let q =
            Query::scan("Person").where_not_in("p_id", sub, "MoviePerson.p_id").select(["name"]);
        let rels = q.source.scanned_relations();
        assert!(rels.contains(&"Person".to_string()));
        assert!(rels.contains(&"MoviePerson".to_string()));
        assert!(rels.contains(&"Movie".to_string()));
    }

    #[test]
    fn one_to_one_aggregates_flagged() {
        assert!(Aggregate::Avg.requires_one_to_one());
        assert!(Aggregate::Max.requires_one_to_one());
        assert!(Aggregate::Min.requires_one_to_one());
        assert!(!Aggregate::Sum.requires_one_to_one());
        assert!(!Aggregate::Count.requires_one_to_one());
    }

    #[test]
    fn display_renders_sql() {
        let q = Query::scan("Major").named("Q1").count("Major");
        let s = q.to_string();
        assert!(s.contains("SELECT COUNT(Major)"));
        assert!(s.contains("FROM Major"));

        let q2 = Query::scan("Movie").distinct().select(["title"]);
        assert!(q2.to_string().contains("DISTINCT"));
    }
}
