//! Provenance relations (Definition 2.3 of the paper).
//!
//! For a query `Q = π_o σ_C(X)`, the provenance relation `P(A1, ..., Ak, I)`
//! contains one tuple per row of `σ_C(X)` together with its *impact* `I`:
//! the row's statistical contribution to the query result (1 for
//! non-aggregate and COUNT queries, the aggregated attribute value for
//! SUM/AVG/MAX/MIN queries).

use crate::query::Aggregate;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// A provenance tuple: a source row plus its impact on the query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvTuple {
    /// Identifier of the tuple within its provenance relation (stable index).
    pub tid: usize,
    /// The source row (schema = the provenance relation's schema minus `I`).
    pub row: Row,
    /// The tuple's impact on the query result.
    pub impact: f64,
}

impl ProvTuple {
    /// The value of the named attribute, resolved against `schema`.
    pub fn attr(&self, schema: &Schema, name: &str) -> Option<Value> {
        schema.index_of(name).ok().and_then(|i| self.row.get(i).cloned())
    }
}

/// The provenance relation `P` of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceRelation {
    /// The name of the query this provenance belongs to.
    pub query_name: String,
    /// Schema of the source rows (the impact column `I` is stored separately).
    pub schema: Schema,
    /// The provenance tuples.
    pub tuples: Vec<ProvTuple>,
    /// The aggregate used by the query, if any. Needed by canonicalisation,
    /// which must not merge tuples for AVG/MAX/MIN queries.
    pub aggregate: Option<Aggregate>,
}

impl ProvenanceRelation {
    /// Creates an empty provenance relation.
    pub fn new(
        query_name: impl Into<String>,
        schema: Schema,
        aggregate: Option<Aggregate>,
    ) -> Self {
        ProvenanceRelation { query_name: query_name.into(), schema, tuples: Vec::new(), aggregate }
    }

    /// Number of provenance tuples (the paper's `|P|`).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the provenance is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Appends a row with the given impact, assigning the next tuple id.
    pub fn push(&mut self, row: Row, impact: f64) -> usize {
        let tid = self.tuples.len();
        self.tuples.push(ProvTuple { tid, row, impact });
        tid
    }

    /// Total impact across all tuples.
    pub fn total_impact(&self) -> f64 {
        self.tuples.iter().map(|t| t.impact).sum()
    }

    /// The tuple with the given id.
    pub fn tuple(&self, tid: usize) -> Option<&ProvTuple> {
        self.tuples.get(tid)
    }

    /// Values of the named attribute across all tuples, in tuple order.
    pub fn attr_values(&self, name: &str) -> Vec<Value> {
        match self.schema.index_of(name) {
            Ok(idx) => {
                self.tuples.iter().map(|t| t.row.get(idx).cloned().unwrap_or(Value::Null)).collect()
            }
            Err(_) => vec![Value::Null; self.tuples.len()],
        }
    }
}

impl fmt::Display for ProvenanceRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "P[{}] {} + I", self.query_name, self.schema)?;
        for t in &self.tuples {
            writeln!(f, "  #{} {} I={}", t.tid, t.row, t.impact)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::ValueType;

    fn prov() -> ProvenanceRelation {
        let schema =
            Schema::from_pairs(&[("college", ValueType::Str), ("num_bach", ValueType::Int)]);
        let mut p = ProvenanceRelation::new("Q3", schema, Some(Aggregate::Sum));
        p.push(row!["Business", 2], 2.0);
        p.push(row!["Engineering", 2], 2.0);
        p.push(row!["Computer Science", 1], 1.0);
        p
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let p = prov();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.tuples[0].tid, 0);
        assert_eq!(p.tuples[2].tid, 2);
        assert_eq!(p.tuple(1).unwrap().row, row!["Engineering", 2]);
        assert!(p.tuple(9).is_none());
    }

    #[test]
    fn total_impact_matches_sum_query_semantics() {
        let p = prov();
        assert_eq!(p.total_impact(), 5.0);
    }

    #[test]
    fn attribute_access() {
        let p = prov();
        let t = &p.tuples[2];
        assert_eq!(t.attr(&p.schema, "college"), Some(Value::str("Computer Science")));
        assert_eq!(t.attr(&p.schema, "missing"), None);
        let vals = p.attr_values("num_bach");
        assert_eq!(vals, vec![Value::Int(2), Value::Int(2), Value::Int(1)]);
        let missing = p.attr_values("nope");
        assert!(missing.iter().all(Value::is_null));
    }
}
