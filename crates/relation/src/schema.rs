//! Relation schemas: ordered, named, typed columns.

use crate::error::RelationError;
use crate::value::ValueType;
use std::fmt;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name. Qualified names (`movie.title`) are allowed and the
    /// unqualified suffix is also resolvable as long as it is unambiguous.
    pub name: String,
    /// Declared logical type.
    pub ty: ValueType,
}

impl Column {
    /// Creates a column with the given name and type.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Column { name: name.into(), ty }
    }

    /// The unqualified part of the column name (after the last `.`).
    pub fn short_name(&self) -> &str {
        self.name.rsplit('.').next().unwrap_or(&self.name)
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema from a list of columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, ValueType)]) -> Self {
        Schema { columns: pairs.iter().map(|(n, t)| Column::new(*n, *t)).collect() }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Iterates over the columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Returns the column at position `idx`.
    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// All column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Resolves a column name to an index.
    ///
    /// Resolution is case-insensitive and accepts either the fully qualified
    /// name or an unambiguous unqualified suffix. Ambiguous or unknown names
    /// return an error that lists the available columns.
    pub fn index_of(&self, name: &str) -> Result<usize, RelationError> {
        let lname = name.to_ascii_lowercase();
        // Exact (case-insensitive) match first.
        let exact: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.name.to_ascii_lowercase() == lname)
            .map(|(i, _)| i)
            .collect();
        match exact.len() {
            1 => return Ok(exact[0]),
            n if n > 1 => return Err(RelationError::AmbiguousColumn { name: name.to_string() }),
            _ => {}
        }
        // Fall back to matching the unqualified suffix.
        let suffix: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.short_name().to_ascii_lowercase() == lname)
            .map(|(i, _)| i)
            .collect();
        match suffix.len() {
            1 => Ok(suffix[0]),
            0 => Err(RelationError::UnknownColumn {
                name: name.to_string(),
                available: self.columns.iter().map(|c| c.name.clone()).collect(),
            }),
            _ => Err(RelationError::AmbiguousColumn { name: name.to_string() }),
        }
    }

    /// True when the named column resolves in this schema.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_ok()
    }

    /// Creates a new schema with every column name prefixed by `alias.`
    /// (stripping any previous qualifier).
    pub fn qualified(&self, alias: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column::new(format!("{alias}.{}", c.short_name()), c.ty))
                .collect(),
        }
    }

    /// Concatenates two schemas (used by joins / cartesian products).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Projects the schema onto the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema, RelationError> {
        let mut columns = Vec::with_capacity(names.len());
        for n in names {
            let idx = self.index_of(n)?;
            columns.push(self.columns[idx].clone());
        }
        Ok(Schema { columns })
    }

    /// Checks union compatibility (same arity and compatible column types).
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.arity() == other.arity()
            && self.columns.iter().zip(other.columns.iter()).all(|(a, b)| {
                a.ty == b.ty || a.ty == ValueType::Unknown || b.ty == ValueType::Unknown
            })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_pairs(&[
            ("movie.title", ValueType::Str),
            ("movie.release_year", ValueType::Int),
            ("movie.gross", ValueType::Float),
        ])
    }

    #[test]
    fn resolves_qualified_and_short_names() {
        let s = sample();
        assert_eq!(s.index_of("movie.title").unwrap(), 0);
        assert_eq!(s.index_of("title").unwrap(), 0);
        assert_eq!(s.index_of("RELEASE_YEAR").unwrap(), 1);
    }

    #[test]
    fn unknown_column_errors_with_candidates() {
        let s = sample();
        let err = s.index_of("budget").unwrap_err();
        match err {
            RelationError::UnknownColumn { name, available } => {
                assert_eq!(name, "budget");
                assert_eq!(available.len(), 3);
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn ambiguous_suffix_is_an_error() {
        let s = Schema::from_pairs(&[("a.id", ValueType::Int), ("b.id", ValueType::Int)]);
        assert!(matches!(s.index_of("id"), Err(RelationError::AmbiguousColumn { .. })));
        assert_eq!(s.index_of("a.id").unwrap(), 0);
    }

    #[test]
    fn qualify_and_concat() {
        let s = Schema::from_pairs(&[("id", ValueType::Int), ("name", ValueType::Str)]);
        let q = s.qualified("person");
        assert_eq!(q.names(), vec!["person.id", "person.name"]);
        let both = q.concat(&s.qualified("movie"));
        assert_eq!(both.arity(), 4);
        assert!(both.contains("person.id"));
        assert!(both.contains("movie.name"));
    }

    #[test]
    fn project_preserves_order() {
        let s = sample();
        let p = s.project(&["gross", "title"]).unwrap();
        assert_eq!(p.names(), vec!["movie.gross", "movie.title"]);
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn union_compatibility() {
        let a = Schema::from_pairs(&[("x", ValueType::Int), ("y", ValueType::Str)]);
        let b = Schema::from_pairs(&[("p", ValueType::Int), ("q", ValueType::Str)]);
        let c = Schema::from_pairs(&[("p", ValueType::Str), ("q", ValueType::Str)]);
        let d = Schema::from_pairs(&[("p", ValueType::Unknown), ("q", ValueType::Str)]);
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
        assert!(a.union_compatible(&d));
    }
}
