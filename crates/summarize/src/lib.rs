//! # explain3d-summarize
//!
//! Stage 3 of the Explain3D reproduction (VLDB 2019): summarise a large set
//! of tuple-level explanations into a small set of human-readable patterns.
//!
//! The paper delegates this stage to existing tools such as Data Auditor and
//! Data X-Ray: tuples touched by explanations are marked as "targets" and the
//! tool finds the common properties of the targets. This crate implements
//! that component as a greedy pattern-tableau miner: it searches conjunctive
//! `attribute = value` patterns (up to a configurable width) that cover many
//! target tuples while covering few non-target tuples, and greedily selects a
//! small set of patterns that explains all targets.

#![warn(missing_docs)]

pub mod pattern;

pub use pattern::{summarize, Pattern, SummarizerConfig, Summary};
