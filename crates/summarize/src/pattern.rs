//! Greedy pattern-tableau mining over "target" tuples.

use explain3d_relation::prelude::{Row, Schema, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A conjunctive pattern: `attr1 = v1 AND attr2 = v2 AND ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// `(attribute name, value)` conditions, all of which must hold.
    pub conditions: Vec<(String, Value)>,
    /// Number of target tuples covered by the pattern.
    pub target_coverage: usize,
    /// Number of non-target tuples covered by the pattern (false positives).
    pub other_coverage: usize,
}

impl Pattern {
    /// Precision of the pattern: covered targets over all covered tuples.
    ///
    /// A pattern covering nothing at all (0/0) has precision 1.0 by the
    /// repository-wide empty-denominator convention (see
    /// `eval::metrics::Accuracy::from_counts`) — never NaN. Such a pattern
    /// is still never *selected*: selection requires
    /// `target_coverage >= min_coverage` and a positive newly-covered count.
    pub fn precision(&self) -> f64 {
        let total = self.target_coverage + self.other_coverage;
        if total == 0 {
            1.0
        } else {
            self.target_coverage as f64 / total as f64
        }
    }

    /// True when the pattern covers the row (all conditions hold).
    pub fn covers(&self, schema: &Schema, row: &Row) -> bool {
        self.conditions.iter().all(|(attr, value)| {
            schema
                .index_of(attr)
                .ok()
                .and_then(|i| row.get(i))
                .map(|v| v.loose_eq(value))
                .unwrap_or(false)
        })
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let conds: Vec<String> =
            self.conditions.iter().map(|(a, v)| format!("{a} = \"{v}\"")).collect();
        write!(
            f,
            "{} (covers {} targets, {} others)",
            conds.join(" AND "),
            self.target_coverage,
            self.other_coverage
        )
    }
}

/// Configuration of the summariser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummarizerConfig {
    /// Maximum number of conjuncts per pattern (1 or 2 are typical).
    pub max_conditions: usize,
    /// Minimum precision a pattern must reach to be selected.
    pub min_precision: f64,
    /// Minimum number of targets a pattern must cover to be selected.
    pub min_coverage: usize,
    /// Maximum number of patterns in the summary (0 = unlimited).
    pub max_patterns: usize,
}

impl Default for SummarizerConfig {
    fn default() -> Self {
        SummarizerConfig { max_conditions: 2, min_precision: 0.6, min_coverage: 2, max_patterns: 0 }
    }
}

/// The result of summarisation: selected patterns plus the targets that no
/// acceptable pattern covered (reported individually, as the paper notes that
/// detailed Stage-2 explanations remain available).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// The selected patterns, in selection order (highest coverage first).
    pub patterns: Vec<Pattern>,
    /// Indexes (into the target list) of targets not covered by any pattern.
    pub uncovered_targets: Vec<usize>,
    /// Total number of target tuples.
    pub num_targets: usize,
}

impl Summary {
    /// The size of the summary `|E_S|`: patterns plus individually-reported
    /// leftover targets.
    pub fn size(&self) -> usize {
        self.patterns.len() + self.uncovered_targets.len()
    }

    /// Fraction of targets covered by at least one selected pattern. An
    /// empty target list counts as fully covered (0/0 → 1.0, per the
    /// repository-wide empty-denominator convention) — never NaN.
    pub fn coverage(&self) -> f64 {
        if self.num_targets == 0 {
            return 1.0;
        }
        (self.num_targets - self.uncovered_targets.len()) as f64 / self.num_targets as f64
    }

    /// Renders the summary as human-readable text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Summary: {} pattern(s) covering {:.0}% of {} explanation tuple(s)\n",
            self.patterns.len(),
            self.coverage() * 100.0,
            self.num_targets
        ));
        for p in &self.patterns {
            out.push_str(&format!("  - {p}\n"));
        }
        if !self.uncovered_targets.is_empty() {
            out.push_str(&format!(
                "  ({} explanation tuple(s) reported individually)\n",
                self.uncovered_targets.len()
            ));
        }
        out
    }
}

/// Summarises the target tuples against a background population.
///
/// * `schema` — schema shared by targets and background rows;
/// * `targets` — the rows touched by explanations;
/// * `background` — all other rows of the same relation (used to measure a
///   pattern's false-positive coverage).
pub fn summarize(
    schema: &Schema,
    targets: &[Row],
    background: &[Row],
    config: &SummarizerConfig,
) -> Summary {
    let mut summary = Summary { num_targets: targets.len(), ..Default::default() };
    if targets.is_empty() {
        return summary;
    }

    // Enumerate candidate patterns: single conditions and (optionally) pairs,
    // built from values that actually appear in target tuples.
    let candidates = candidate_patterns(schema, targets, background, config);

    // Greedy weighted set cover over the targets.
    let mut covered = vec![false; targets.len()];
    let mut selected: Vec<Pattern> = Vec::new();
    loop {
        if config.max_patterns > 0 && selected.len() >= config.max_patterns {
            break;
        }
        let mut best: Option<(usize, usize)> = None; // (candidate idx, new coverage)
        for (ci, cand) in candidates.iter().enumerate() {
            if cand.precision() < config.min_precision || cand.target_coverage < config.min_coverage
            {
                continue;
            }
            let new_cover = targets
                .iter()
                .enumerate()
                .filter(|(ti, row)| !covered[*ti] && cand.covers(schema, row))
                .count();
            if new_cover == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bi, bc)) => {
                    new_cover > bc
                        || (new_cover == bc
                            && cand.precision() > candidates[bi].precision() + 1e-12)
                }
            };
            if better {
                best = Some((ci, new_cover));
            }
        }
        let Some((ci, new_cover)) = best else { break };
        if new_cover < config.min_coverage && !selected.is_empty() {
            break;
        }
        let chosen = candidates[ci].clone();
        for (ti, row) in targets.iter().enumerate() {
            if chosen.covers(schema, row) {
                covered[ti] = true;
            }
        }
        selected.push(chosen);
        if covered.iter().all(|&c| c) {
            break;
        }
    }

    summary.uncovered_targets =
        covered.iter().enumerate().filter(|(_, &c)| !c).map(|(i, _)| i).collect();
    summary.patterns = selected;
    summary
}

/// Builds candidate patterns (width 1 and optionally 2) with their coverage
/// statistics.
fn candidate_patterns(
    schema: &Schema,
    targets: &[Row],
    background: &[Row],
    config: &SummarizerConfig,
) -> Vec<Pattern> {
    // Count value frequencies per attribute over the targets.
    let mut single: BTreeMap<(usize, String), (Value, usize)> = BTreeMap::new();
    for row in targets {
        for (ci, value) in row.values().iter().enumerate() {
            if value.is_null() {
                continue;
            }
            let key = (ci, value.to_string().to_ascii_lowercase());
            single.entry(key).and_modify(|(_, n)| *n += 1).or_insert((value.clone(), 1));
        }
    }

    let mut patterns: Vec<Pattern> = Vec::new();
    let count_other = |p: &Pattern| background.iter().filter(|r| p.covers(schema, r)).count();

    let mut singles: Vec<Pattern> = Vec::new();
    for ((ci, _), (value, target_cov)) in &single {
        let Some(column) = schema.column(*ci) else { continue };
        let mut p = Pattern {
            conditions: vec![(column.name.clone(), value.clone())],
            target_coverage: *target_cov,
            other_coverage: 0,
        };
        p.other_coverage = count_other(&p);
        singles.push(p);
    }
    // Highest coverage first so pair generation combines promising singles.
    singles.sort_by_key(|p| std::cmp::Reverse(p.target_coverage));

    if config.max_conditions >= 2 {
        let top: Vec<&Pattern> = singles.iter().take(12).collect();
        for (i, a) in top.iter().enumerate() {
            for b in top.iter().skip(i + 1) {
                if a.conditions[0].0 == b.conditions[0].0 {
                    continue; // same attribute twice is unsatisfiable
                }
                let mut p = Pattern {
                    conditions: vec![a.conditions[0].clone(), b.conditions[0].clone()],
                    target_coverage: 0,
                    other_coverage: 0,
                };
                p.target_coverage = targets.iter().filter(|r| p.covers(schema, r)).count();
                if p.target_coverage == 0 {
                    continue;
                }
                p.other_coverage = count_other(&p);
                patterns.push(p);
            }
        }
    }
    patterns.extend(singles);
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_relation::prelude::ValueType;
    use explain3d_relation::row;

    fn schema() -> Schema {
        Schema::from_pairs(&[("major", ValueType::Str), ("degree", ValueType::Str)])
    }

    #[test]
    fn finds_the_common_degree_pattern() {
        // The paper's running summary: a large portion of mismatches are
        // majors with Degree = "Associate degree".
        let targets = vec![
            row!["Turfgrass Management", "Associate degree"],
            row!["Equine Management", "Associate degree"],
            row!["Culinary Arts", "Associate degree"],
            row!["Dance", "B.A."],
        ];
        let background = vec![
            row!["Computer Science", "B.S."],
            row!["Biology", "B.S."],
            row!["History", "B.A."],
        ];
        let summary = summarize(&schema(), &targets, &background, &SummarizerConfig::default());
        assert!(!summary.patterns.is_empty());
        let first = &summary.patterns[0];
        assert_eq!(first.conditions.len(), 1);
        assert_eq!(first.conditions[0].0, "degree");
        assert_eq!(first.conditions[0].1, Value::str("Associate degree"));
        assert_eq!(first.target_coverage, 3);
        assert_eq!(first.other_coverage, 0);
        assert_eq!(first.precision(), 1.0);
        // The leftover B.A. target is reported individually.
        assert_eq!(summary.uncovered_targets.len(), 1);
        assert_eq!(summary.size(), 2);
        assert!(summary.coverage() > 0.7);
        assert!(summary.render().contains("Associate degree"));
    }

    #[test]
    fn summary_is_smaller_than_the_explanation_list() {
        // 20 targets sharing one value should compress to a single pattern.
        let mut targets = Vec::new();
        for i in 0..20 {
            targets.push(row![format!("major {i}"), "Associate degree"]);
        }
        let background: Vec<Row> = (0..50).map(|i| row![format!("other {i}"), "B.S."]).collect();
        let summary = summarize(&schema(), &targets, &background, &SummarizerConfig::default());
        assert_eq!(summary.patterns.len(), 1);
        assert!(summary.size() < targets.len());
        assert_eq!(summary.coverage(), 1.0);
    }

    #[test]
    fn low_precision_patterns_are_rejected() {
        // "B.S." appears in targets but overwhelmingly in the background, so
        // it should not be used as a pattern.
        let targets = vec![row!["A", "B.S."], row!["B", "B.S."]];
        let background: Vec<Row> = (0..40).map(|i| row![format!("bg {i}"), "B.S."]).collect();
        let cfg = SummarizerConfig { min_precision: 0.5, ..Default::default() };
        let summary = summarize(&schema(), &targets, &background, &cfg);
        assert!(
            summary.patterns.iter().all(|p| p.precision() >= 0.5),
            "selected low-precision patterns: {:?}",
            summary.patterns
        );
        // The targets end up reported individually instead.
        assert_eq!(
            summary.uncovered_targets.len()
                + summary.patterns.iter().map(|p| p.target_coverage).sum::<usize>().min(2),
            2
        );
    }

    #[test]
    fn two_condition_patterns_when_needed() {
        // Targets are exactly the Associate-degree Management majors; either
        // condition alone is imprecise, the conjunction is exact.
        let schema = Schema::from_pairs(&[("dept", ValueType::Str), ("degree", ValueType::Str)]);
        let targets = vec![
            row!["Management", "Associate"],
            row!["Management", "Associate"],
            row!["Management", "Associate"],
        ];
        let background = vec![
            row!["Management", "B.S."],
            row!["Management", "B.S."],
            row!["Biology", "Associate"],
            row!["Biology", "Associate"],
        ];
        let cfg = SummarizerConfig { min_precision: 0.9, ..Default::default() };
        let summary = summarize(&schema, &targets, &background, &cfg);
        assert_eq!(summary.patterns.len(), 1);
        assert_eq!(summary.patterns[0].conditions.len(), 2);
        assert_eq!(summary.patterns[0].precision(), 1.0);
    }

    #[test]
    fn empty_targets_give_empty_summary() {
        let summary = summarize(&schema(), &[], &[], &SummarizerConfig::default());
        assert!(summary.patterns.is_empty());
        assert_eq!(summary.size(), 0);
        assert_eq!(summary.coverage(), 1.0);
    }

    #[test]
    fn max_patterns_limit_is_respected() {
        let targets = vec![
            row!["A", "x"],
            row!["A", "x"],
            row!["B", "y"],
            row!["B", "y"],
            row!["C", "z"],
            row!["C", "z"],
        ];
        let cfg = SummarizerConfig { max_patterns: 1, min_coverage: 1, ..Default::default() };
        let summary = summarize(&schema(), &targets, &[], &cfg);
        assert_eq!(summary.patterns.len(), 1);
        assert!(!summary.uncovered_targets.is_empty());
    }

    #[test]
    fn zero_coverage_corners_never_produce_nan() {
        // 0/0 precision follows the 1.0 convention and never goes NaN …
        let empty_pattern = Pattern { conditions: vec![], target_coverage: 0, other_coverage: 0 };
        assert_eq!(empty_pattern.precision(), 1.0);
        assert!(!empty_pattern.precision().is_nan());
        // … and an empty summary reports full coverage, not NaN.
        let summary = summarize(&schema(), &[], &[], &SummarizerConfig::default());
        assert_eq!(summary.coverage(), 1.0);
        assert!(!summary.coverage().is_nan());
        // A zero-coverage pattern must never be selected even though its
        // precision now passes any threshold.
        let targets = vec![row!["A", "x"], row!["B", "y"]];
        let cfg = SummarizerConfig { min_coverage: 0, min_precision: 0.0, ..Default::default() };
        let s = summarize(&schema(), &targets, &[], &cfg);
        assert!(s.patterns.iter().all(|p| p.target_coverage > 0));
    }

    #[test]
    fn null_values_do_not_form_patterns() {
        let targets = vec![
            Row::new(vec![Value::Null, Value::Null]),
            Row::new(vec![Value::Null, Value::Null]),
        ];
        let summary = summarize(&schema(), &targets, &[], &SummarizerConfig::default());
        assert!(summary.patterns.is_empty());
        assert_eq!(summary.uncovered_targets.len(), 2);
    }
}
