//! Criterion benches for the academic pair (Figure 6c/6f): execution time of
//! Explain3D and the baseline methods on a UMass-sized catalog comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use explain3d::datagen::{generate_academic, AcademicConfig};
use explain3d::prelude::*;

fn bench_methods(c: &mut Criterion) {
    let case = generate_academic(&AcademicConfig { num_programs: 60, ..AcademicConfig::umass() });
    let left = case.prepared.left_canonical.clone();
    let right = case.prepared.right_canonical.clone();

    let mut group = c.benchmark_group("fig6_academic_methods");
    group.sample_size(10);

    group.bench_function("explain3d_batch100", |b| {
        b.iter(|| {
            Explain3D::new(Explain3DConfig::batched(100)).explain(
                &left,
                &right,
                &case.attribute_matches,
                &case.initial_mapping,
            )
        })
    });
    group.bench_function("greedy", |b| {
        b.iter(|| {
            GreedyBaseline::default().explain(
                &left,
                &right,
                &case.attribute_matches,
                &case.initial_mapping,
            )
        })
    });
    group.bench_function("threshold_0_9", |b| {
        b.iter(|| ThresholdBaseline::default().explain(&left, &right, &case.initial_mapping))
    });
    group.bench_function("rswoosh", |b| {
        b.iter(|| RSwooshBaseline::default().explain(&left, &right))
    });
    group.bench_function("exactcover", |b| {
        b.iter(|| ExactCoverBaseline::default().explain(&left, &right, &case.initial_mapping))
    });
    group.bench_function("formalexp_top15", |b| {
        b.iter(|| FormalExpBaseline::default().explain(&left, &right))
    });
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
