//! Benches for the academic pair (Figure 6c/6f): execution time of
//! Explain3D and the baseline methods on a UMass-sized catalog comparison.
//!
//! Criterion is unavailable in this build environment, so this is a
//! `harness = false` binary over the std timing helpers in
//! [`explain3d_bench::timing`]. Run with `cargo bench -p explain3d-bench`.

use explain3d::datagen::{generate_academic, AcademicConfig};
use explain3d::prelude::*;
use explain3d_bench::timing::{report, sample};

fn main() {
    let case = generate_academic(&AcademicConfig { num_programs: 60, ..AcademicConfig::umass() });
    let left = case.prepared.left_canonical.clone();
    let right = case.prepared.right_canonical.clone();
    const GROUP: &str = "fig6_academic_methods";

    let (stats, _) = sample(3, || {
        Explain3D::new(Explain3DConfig::batched(100)).explain(
            &left,
            &right,
            &case.attribute_matches,
            &case.initial_mapping,
        )
    });
    report(GROUP, "explain3d_batch100", &stats);

    let (stats, _) = sample(3, || {
        GreedyBaseline::default().explain(
            &left,
            &right,
            &case.attribute_matches,
            &case.initial_mapping,
        )
    });
    report(GROUP, "greedy", &stats);

    let (stats, _) =
        sample(3, || ThresholdBaseline::default().explain(&left, &right, &case.initial_mapping));
    report(GROUP, "threshold_0_9", &stats);

    let (stats, _) = sample(3, || RSwooshBaseline::default().explain(&left, &right));
    report(GROUP, "rswoosh", &stats);

    let (stats, _) =
        sample(3, || ExactCoverBaseline::default().explain(&left, &right, &case.initial_mapping));
    report(GROUP, "exactcover", &stats);

    let (stats, _) = sample(3, || FormalExpBaseline::default().explain(&left, &right));
    report(GROUP, "formalexp_top15", &stats);
}
