//! Criterion benches for the synthetic workload (Figure 8): Stage-2 solve
//! time of the un-partitioned algorithm vs. the smart-partitioning optimiser
//! on small instances, and the cost of the partitioning step itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use explain3d::datagen::{generate_synthetic, SyntheticConfig};
use explain3d::partition::{smart_partition, MappingGraph, SmartPartitionConfig};
use explain3d::prelude::*;

fn bench_stage2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_stage2_solve");
    group.sample_size(10);
    for &n in &[50usize, 150, 300] {
        let case = generate_synthetic(&SyntheticConfig::new(n, 0.2, 1000));
        for (label, config) in [
            ("noopt", Explain3DConfig::no_opt()),
            ("batch100", Explain3DConfig::batched(100)),
        ] {
            if label == "noopt" && n > 150 {
                continue; // the single-MILP variant is benchmarked only at small n
            }
            group.bench_with_input(BenchmarkId::new(label, n), &case, |b, case| {
                b.iter(|| {
                    Explain3D::new(config.clone()).explain(
                        &case.prepared.left_canonical,
                        &case.prepared.right_canonical,
                        &case.attribute_matches,
                        &case.initial_mapping,
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_smart_partitioning");
    group.sample_size(20);
    for &pairs in &[1000usize, 5000] {
        let mut graph = MappingGraph::new(pairs, pairs);
        for i in 0..pairs {
            graph.add_edge(i, i, 0.95);
            if i + 1 < pairs {
                graph.add_edge(i, i + 1, 0.2);
            }
        }
        group.bench_with_input(BenchmarkId::new("batch100", pairs), &graph, |b, g| {
            b.iter(|| smart_partition(g, &SmartPartitionConfig::with_batch_size(100)))
        });
    }
    group.finish();
}

fn bench_initial_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("initial_mapping_generation");
    group.sample_size(10);
    let case = generate_synthetic(&SyntheticConfig::new(300, 0.2, 1000));
    group.bench_function("synthetic_n300", |b| {
        b.iter(|| {
            build_initial_mapping(
                &case.prepared.left_canonical,
                &case.prepared.right_canonical,
                &case.attribute_matches,
                &MappingOptions::default(),
                None,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stage2, bench_partitioning, bench_initial_mapping);
criterion_main!(benches);
