//! Benches for the synthetic workload (Figure 8): Stage-2 solve time of the
//! un-partitioned algorithm vs. the smart-partitioning optimiser on small
//! instances, the cost of the partitioning step itself, and initial-mapping
//! generation.
//!
//! Criterion is unavailable in this build environment, so these are
//! `harness = false` binaries over the std timing helpers in
//! [`explain3d_bench::timing`]. Run with `cargo bench -p explain3d-bench`.

use explain3d::datagen::{generate_synthetic, SyntheticConfig};
use explain3d::partition::{smart_partition, MappingGraph, SmartPartitionConfig};
use explain3d::prelude::*;
use explain3d_bench::timing::{report, sample};

fn bench_stage2() {
    for &n in &[50usize, 150, 300] {
        let case = generate_synthetic(&SyntheticConfig::new(n, 0.2, 1000));
        for (label, config) in
            [("noopt", Explain3DConfig::no_opt()), ("batch100", Explain3DConfig::batched(100))]
        {
            if label == "noopt" && n > 150 {
                continue; // the single-MILP variant is benchmarked only at small n
            }
            let (stats, _) = sample(3, || {
                Explain3D::new(config.clone()).explain(
                    &case.prepared.left_canonical,
                    &case.prepared.right_canonical,
                    &case.attribute_matches,
                    &case.initial_mapping,
                )
            });
            report("fig8_stage2_solve", &format!("{label}/{n}"), &stats);
        }
    }
}

fn bench_partitioning() {
    for &pairs in &[1000usize, 5000] {
        let mut graph = MappingGraph::new(pairs, pairs);
        for i in 0..pairs {
            graph.add_edge(i, i, 0.95);
            if i + 1 < pairs {
                graph.add_edge(i, i + 1, 0.2);
            }
        }
        let (stats, _) =
            sample(5, || smart_partition(&graph, &SmartPartitionConfig::with_batch_size(100)));
        report("fig8_smart_partitioning", &format!("batch100/{pairs}"), &stats);
    }
}

fn bench_initial_mapping() {
    let case = generate_synthetic(&SyntheticConfig::new(300, 0.2, 1000));
    let (stats, _) = sample(3, || {
        build_initial_mapping(
            &case.prepared.left_canonical,
            &case.prepared.right_canonical,
            &case.attribute_matches,
            &MappingOptions::default(),
            None,
        )
    });
    report("initial_mapping_generation", "synthetic_n300", &stats);
}

fn main() {
    bench_stage2();
    bench_partitioning();
    bench_initial_mapping();
}
