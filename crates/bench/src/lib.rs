//! # explain3d-bench
//!
//! Benchmark harness for the Explain3D reproduction. One binary per figure
//! of the paper's evaluation section (Section 5):
//!
//! * `fig4_dataset_stats` — the dataset-statistics table (Figure 4) and the
//!   attribute matches (Figure 5);
//! * `fig6_academic` — accuracy and runtime of all methods on the two
//!   academic pairs (Figure 6 a–f);
//! * `fig7_imdb` — average accuracy over the IMDb query templates and
//!   runtime vs. provenance size (Figure 7 a–c);
//! * `fig8_synthetic` — solve time of NoOpt / Batch-100 / Batch-1000 over
//!   the synthetic sweeps in `n`, `d`, and `v` (Figure 8 a–c);
//!
//! plus two Criterion benches (`synthetic`, `academic`) that time the hot
//! paths with statistical rigour.

#![warn(missing_docs)]

pub mod json;
pub mod timing;

use explain3d::datagen::GeneratedCase;
use explain3d::prelude::*;
use std::time::{Duration, Instant};

/// The accuracy and runtime of one method on one case.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Method name (paper spelling).
    pub method: String,
    /// Explanation accuracy.
    pub explanation: Accuracy,
    /// Evidence accuracy.
    pub evidence: Accuracy,
    /// Wall-clock execution time of the method itself.
    pub time: Duration,
}

/// Runs Explain3D and every baseline of Section 5.1.3 on a generated case.
///
/// `batch_size` controls Explain3D's smart-partitioning batch; the same
/// initial mapping is shared by all mapping-based methods, mirroring the
/// paper's setup.
pub fn run_all_methods(case: &GeneratedCase, batch_size: usize) -> Vec<MethodOutcome> {
    let gold = GoldStandard::new(case.gold.clone());
    let left = &case.prepared.left_canonical;
    let right = &case.prepared.right_canonical;
    let mut out = Vec::new();

    let mut record = |method: &str, explanations: &ExplanationSet, time: Duration| {
        out.push(MethodOutcome {
            method: method.to_string(),
            explanation: explanation_accuracy(explanations, &gold),
            evidence: evidence_accuracy(&explanations.evidence, &gold),
            time,
        });
    };

    // EXPLAIN3D (smart partitioning).
    let start = Instant::now();
    let report = Explain3D::new(Explain3DConfig::batched(batch_size)).explain(
        left,
        right,
        &case.attribute_matches,
        &case.initial_mapping,
    );
    record("EXPLAIN3D", &report.explanations, start.elapsed());

    // GREEDY.
    let start = Instant::now();
    let (greedy, _) = GreedyBaseline::default().explain(
        left,
        right,
        &case.attribute_matches,
        &case.initial_mapping,
    );
    record("GREEDY", &greedy, start.elapsed());

    // THRESHOLD-0.9.
    let start = Instant::now();
    let threshold = ThresholdBaseline::default().explain(left, right, &case.initial_mapping);
    record("THRESHOLD-0.9", &threshold, start.elapsed());

    // RSWOOSH.
    let start = Instant::now();
    let (rswoosh, _) = RSwooshBaseline::default().explain(left, right);
    record("RSWOOSH", &rswoosh, start.elapsed());

    // EXACTCOVER.
    let start = Instant::now();
    let (exact, _) = ExactCoverBaseline::default().explain(left, right, &case.initial_mapping);
    record("EXACTCOVER", &exact, start.elapsed());

    // FORMALEXP-Top15.
    let start = Instant::now();
    let formal = FormalExpBaseline::default().explain(left, right);
    record("FORMALEXP-Top15", &formal, start.elapsed());

    out
}

/// Times one Explain3D configuration on a case (used by the Figure 7c / 8
/// runtime sweeps), returning the Stage-2 wall-clock time and the report.
pub fn time_explain3d(
    case: &GeneratedCase,
    config: Explain3DConfig,
) -> (Duration, ExplanationReport) {
    let start = Instant::now();
    let report = Explain3D::new(config).explain(
        &case.prepared.left_canonical,
        &case.prepared.right_canonical,
        &case.attribute_matches,
        &case.initial_mapping,
    );
    (start.elapsed(), report)
}

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d::datagen::{generate_synthetic, SyntheticConfig};

    #[test]
    fn harness_runs_all_methods_on_a_small_case() {
        let case = generate_synthetic(&SyntheticConfig::new(40, 0.2, 200));
        let outcomes = run_all_methods(&case, 40);
        assert_eq!(outcomes.len(), 6);
        let e3d = outcomes.iter().find(|o| o.method == "EXPLAIN3D").unwrap();
        assert!(e3d.explanation.f_measure > 0.8);
        // FORMALEXP never produces evidence.
        let formal = outcomes.iter().find(|o| o.method == "FORMALEXP-Top15").unwrap();
        assert_eq!(formal.evidence.derived, 0);
    }

    #[test]
    fn timing_helper_reports_durations() {
        let case = generate_synthetic(&SyntheticConfig::new(30, 0.2, 200));
        let (t, report) = time_explain3d(&case, Explain3DConfig::batched(30));
        assert!(t.as_nanos() > 0);
        assert!(report.complete);
        assert!(!secs(t).is_empty());
    }
}
