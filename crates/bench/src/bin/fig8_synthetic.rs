//! Figure 8 (a–c): Stage-2 solve time of the basic algorithm (NoOpt) and the
//! smart-partitioning optimiser (Batch-100, Batch-1000) over the synthetic
//! generator's three sweeps: number of tuples `n`, difference ratio `d`, and
//! vocabulary size `v`.
//!
//! Pass an argument to run a single sweep (`n`, `d`, or `v`); with no
//! argument all three run. The paper sweeps n up to 100K with CPLEX; this
//! harness scales the sweep to what the bundled exact solver handles while
//! preserving the relative trends (see EXPERIMENTS.md).
//!
//! Run with: `cargo run --release -p explain3d-bench --bin fig8_synthetic [-- n|d|v]`

use explain3d::datagen::{generate_synthetic, SyntheticConfig};
use explain3d::eval::ResultTable;
use explain3d::prelude::*;
use explain3d_bench::{secs, time_explain3d};

fn methods() -> Vec<(&'static str, Explain3DConfig)> {
    vec![
        ("NoOpt", Explain3DConfig::no_opt()),
        ("Batch-100", Explain3DConfig::batched(100)),
        ("Batch-1000", Explain3DConfig::batched(1000)),
    ]
}

fn run_sweep(title: &str, configs: Vec<(String, SyntheticConfig)>, noopt_cap: usize) {
    let mut table = ResultTable::new(
        title,
        &[
            "setting",
            "|T1|+|T2|",
            "NoOpt (s)",
            "Batch-100 (s)",
            "Batch-1000 (s)",
            "expl F1 (Batch-100)",
        ],
    );
    for (label, cfg) in configs {
        let case = generate_synthetic(&cfg);
        let gold = GoldStandard::new(case.gold.clone());
        let size = case.prepared.left_canonical.len() + case.prepared.right_canonical.len();
        let mut cells = vec![label, size.to_string()];
        let mut batch100_f1 = String::new();
        for (name, config) in methods() {
            if name == "NoOpt" && size > noopt_cap {
                cells.push("-".to_string());
                continue;
            }
            let (t, report) = time_explain3d(&case, config);
            cells.push(secs(t));
            if name == "Batch-100" {
                batch100_f1 =
                    format!("{:.3}", explanation_accuracy(&report.explanations, &gold).f_measure);
            }
        }
        cells.push(batch100_f1);
        table.add_row(cells);
    }
    println!("{table}");
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();

    if which.is_empty() || which == "n" {
        // Figure 8a: vary n, fixed d = 0.2, v = 1000.
        let configs = [100usize, 300, 600, 1000, 2000]
            .iter()
            .map(|&n| (format!("n={n}"), SyntheticConfig::new(n, 0.2, 1000)))
            .collect();
        run_sweep("Figure 8a: solve time vs number of tuples (d=0.2, v=1000)", configs, 700);
    }
    if which.is_empty() || which == "d" {
        // Figure 8b: vary d, fixed n = 500, v = 1000.
        let configs = [0.1f64, 0.2, 0.3, 0.4, 0.5]
            .iter()
            .map(|&d| (format!("d={d}"), SyntheticConfig::new(500, d, 1000)))
            .collect();
        run_sweep("Figure 8b: solve time vs difference ratio (n=500, v=1000)", configs, 1200);
    }
    if which.is_empty() || which == "v" {
        // Figure 8c: vary v, fixed n = 500, d = 0.2.
        let configs = [100usize, 300, 1000, 3000, 10000]
            .iter()
            .map(|&v| (format!("v={v}"), SyntheticConfig::new(500, 0.2, v)))
            .collect();
        run_sweep("Figure 8c: solve time vs vocabulary size (n=500, d=0.2)", configs, 1200);
    }
}
