//! Performance-trajectory report: times the two optimised hot paths —
//! candidate generation and Stage-2 solving — against their baselines and
//! writes the results to `BENCH_pipeline.json` so future PRs can track the
//! trend.
//!
//! Sections:
//!
//! * **candidate_generation** — interned-token, parallel
//!   [`candidate_pairs`] vs the per-pair-tokenisation baseline
//!   [`candidate_pairs_naive`] on two synthetic `rows × rows` relations
//!   (default 5000×5000), with a byte-identical output check;
//! * **blocking** — token blocking vs the exhaustive pair scan on a smaller
//!   instance, with a same-candidate-set check above the similarity floor;
//! * **stage2_pipeline** — parallel vs sequential sub-problem solving on a
//!   synthetic workload partitioned into at least `--partitions` (default 8)
//!   parts, with an identical-report check;
//! * **stage2_threads** — the same workload swept across worker-thread
//!   counts (1/2/4) on the work-stealing component scheduler, with steal
//!   counts and byte-identity against the sequential run;
//! * **milp_kernel** — the same Stage-2 workload solved with the sparse
//!   revised simplex vs the dense tableau baseline, with solve-CPU times
//!   and an identical-explanations check;
//! * **incremental** — an `ExplainSession` over the `rows × rows` workload:
//!   cold `explain` vs `re_explain` on a ~1% delta, with cache hit/miss
//!   counters and a byte-identity check against a from-scratch session on
//!   the post-delta relations;
//! * **service** — N closed-loop clients driving a mixed
//!   explain/delta/report workload through the in-process
//!   `explain3d-serve` HTTP server over real sockets: sustained
//!   throughput, p50/p95/p99 latency, coalesced-delta count, and a
//!   byte-identity check of every session's final report against a serial
//!   in-process replay of its applied-delta log;
//! * **service_scale** — the readiness event loop under mass concurrency:
//!   thousands of simultaneously open keep-alive connections (target
//!   10 000, `SERVICE_SCALE_CONNS` overrides; the lane raises
//!   `RLIMIT_NOFILE` when it can and honestly records any clamp), every
//!   connection served several report reads round-robin, with sustained
//!   throughput and the registry's shard-contention counter;
//! * **durability** — WAL append throughput under each fsync policy
//!   (off / group-commit / every-record), and the cold-recovery latency
//!   of the `rows × rows` incremental session (snapshot load + log-suffix
//!   replay + one deadline-scoped explain), with a byte-identity check of
//!   the recovered report against the pre-crash `re_explain` result.
//!
//! Usage: `cargo run --release -p explain3d-bench --bin perf_report --
//! [--rows N] [--partitions K] [--runs R] [--out PATH]`
//! (a bad flag prints the usage line to stderr and exits with status 2)

use explain3d::datagen::rng::{Rng, SeedableRng, StdRng};
use explain3d::datagen::{generate_synthetic, vocab, SyntheticConfig};
use explain3d::incremental::{report_fingerprint, ExplainSession, RelationDelta, SessionConfig};
use explain3d::linkage::{
    candidate_pairs, candidate_pairs_naive, candidate_pairs_streaming, Candidate, MappingConfig,
};
use explain3d::prelude::*;
use explain3d::service::client::Client;
use explain3d::service::wire;
use explain3d_bench::json::Json;
use explain3d_bench::timing::{report, sample};
use std::time::{Duration, Instant};

struct Args {
    rows: usize,
    partitions: usize,
    runs: usize,
    out: String,
}

const USAGE: &str = "usage: perf_report [--rows N] [--partitions K] [--runs R] [--out PATH]";

/// Reports a CLI mistake on stderr (with the usage line) and exits with
/// status 2, the conventional usage-error code — instead of panicking with a
/// backtrace on a typo.
fn usage_error(msg: &str) -> ! {
    eprintln!("perf_report: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_count(raw: &str, name: &str) -> usize {
    match raw.parse() {
        Ok(n) if n > 0 => n,
        _ => usage_error(&format!("{name} takes a positive number, got {raw:?}")),
    }
}

fn parse_args() -> Args {
    let mut args =
        Args { rows: 5000, partitions: 8, runs: 3, out: "BENCH_pipeline.json".to_string() };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| usage_error(&format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--rows" => args.rows = parse_count(&value("--rows"), "--rows"),
            "--partitions" => args.partitions = parse_count(&value("--partitions"), "--partitions"),
            "--runs" => args.runs = parse_count(&value("--runs"), "--runs"),
            "--out" => args.out = value("--out"),
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    args
}

/// Two synthetic relations of `rows` tuples with overlapping token
/// vocabulary: a phrase attribute plus a year attribute, the shape the
/// linkage layer sees after canonicalisation.
fn candidate_workload(rows: usize) -> (Schema, Vec<Row>, Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[("name", ValueType::Str), ("year", ValueType::Int)]);
    let make_rows = |seed: u64| -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows)
            .map(|_| {
                let words = rng.gen_range(2..=4usize);
                let phrase = vocab::synthetic_phrase(&mut rng, 1500, words);
                let year = rng.gen_range(1950..2030i64);
                Row::new(vec![Value::str(phrase), Value::Int(year)])
            })
            .collect()
    };
    (schema.clone(), make_rows(1), schema, make_rows(2))
}

fn candidate_config() -> MappingConfig {
    MappingConfig::new(vec![
        ("name".to_string(), "name".to_string()),
        ("year".to_string(), "year".to_string()),
    ])
}

fn candidates_identical(a: &[Candidate], b: &[Candidate]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(x, y)| {
            x.left == y.left
                && x.right == y.right
                && x.similarity.to_bits() == y.similarity.to_bits()
        })
}

/// Raises `RLIMIT_NOFILE` toward `desired` (both ends of every connection
/// live in this process, so the scale lane needs ~2 fds per connection)
/// and returns the limit actually in force afterwards. Non-root callers
/// get at most the existing hard limit; failures leave the limit as-is.
#[cfg(unix)]
fn raise_fd_limit(desired: u64) -> u64 {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    // 7 on Linux; the BSD lineage (macOS included) uses 8. Getting this
    // wrong on a platform would silently adjust the wrong resource limit.
    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: i32 = 8;
    // SAFETY: `lim`/`want`/`within_hard` are live repr(C) structs matching
    // the kernel's rlimit layout (two u64s on LP64 unix), so getrlimit
    // writes and setrlimit reads stay in bounds. Every call's -1 failure
    // return is checked; nothing here can fault on bad input, only report
    // an unchanged limit.
    unsafe {
        let mut lim = RLimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return 1024;
        }
        if lim.cur >= desired {
            return lim.cur;
        }
        // Root may raise the hard limit too; try the full ask first.
        let want = RLimit { cur: desired, max: lim.max.max(desired) };
        if setrlimit(RLIMIT_NOFILE, &want) == 0 {
            return desired;
        }
        let within_hard = RLimit { cur: lim.max, max: lim.max };
        if lim.max > lim.cur && setrlimit(RLIMIT_NOFILE, &within_hard) == 0 {
            return lim.max;
        }
        lim.cur
    }
}

#[cfg(not(unix))]
fn raise_fd_limit(_desired: u64) -> u64 {
    1024
}

/// Fetches `path` with a one-shot raw HTTP request and returns the body —
/// the JSON [`Client`] cannot carry the text `/metrics` exposition.
fn fetch_text(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("metrics connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("metrics timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n")
        .expect("metrics request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("metrics response");
    let text = String::from_utf8(raw).expect("metrics is utf-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("metrics response has headers");
    assert!(head.starts_with("HTTP/1.1 200"), "metrics scrape failed: {head}");
    body.to_string()
}

/// Writes `request` on the keep-alive `stream` and reads exactly one
/// HTTP response (headers + `Content-Length` body), returning the status.
fn scale_round_trip(stream: &mut std::net::TcpStream, request: &[u8]) -> std::io::Result<u16> {
    use std::io::{Read, Write};
    stream.write_all(request)?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 2048];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a full response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let status: u16 =
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line")
        })?;
    let content_length: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_string))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    let mut have = buf.len() - header_end;
    while have < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        have += n;
    }
    Ok(status)
}

fn main() {
    let args = parse_args();
    let threads = explain3d::parallel::max_threads();
    println!(
        "perf_report: rows={} partitions>={} runs={} threads={}",
        args.rows, args.partitions, args.runs, threads
    );

    // --- Candidate generation: interned kernel vs per-pair tokenisation. ---
    let (ls, lr, rs, rr) = candidate_workload(args.rows);
    let cfg = candidate_config();
    let (naive_stats, naive_out) =
        sample(args.runs, || candidate_pairs_naive(&ls, &lr, &rs, &rr, &cfg));
    report("candidate_generation", "naive_per_pair", &naive_stats);
    let (fast_stats, (fast_out, gen_stats)) =
        sample(args.runs, || candidate_pairs_streaming(&ls, &lr, &rs, &rr, &cfg));
    report("candidate_generation", "interned_streaming", &fast_stats);
    let cand_identical = candidates_identical(&naive_out, &fast_out);
    let cand_speedup = naive_stats.median_secs() / fast_stats.median_secs().max(1e-12);
    println!(
        "candidate_generation: {} candidates, outputs identical: {cand_identical}, speedup {cand_speedup:.2}x",
        fast_out.len()
    );
    println!(
        "candidate_generation: streaming scored {} pairs in {} chunks, peak resident {} pairs \
         (vs {} materialised pre-streaming)",
        gen_stats.pairs_scored,
        gen_stats.chunks,
        gen_stats.peak_resident_pairs,
        gen_stats.pairs_scored
    );

    // --- Blocking vs exhaustive scan (smaller instance: the exhaustive scan
    // is quadratic in rows). ---
    let blocked_rows = args.rows.min(1200);
    let (bls, blr, brs, brr) = candidate_workload(blocked_rows);
    let (blocked_stats, blocked_out) =
        sample(args.runs, || candidate_pairs(&bls, &blr, &brs, &brr, &cfg));
    report("blocking", "blocked", &blocked_stats);
    let unblocked_cfg = cfg.clone().without_blocking();
    let (unblocked_stats, unblocked_out) =
        sample(args.runs, || candidate_pairs(&bls, &blr, &brs, &brr, &unblocked_cfg));
    report("blocking", "unblocked", &unblocked_stats);
    // Every blocked candidate must appear in the exhaustive scan with the
    // same similarity (blocking only prunes, never invents or rescores).
    let mut unblocked_sorted: Vec<Candidate> = unblocked_out.clone();
    unblocked_sorted.sort();
    let blocking_sound =
        blocked_out.iter().all(|c| unblocked_sorted.binary_search_by(|p| p.cmp(c)).is_ok());
    println!(
        "blocking: {} blocked vs {} unblocked candidates, blocked ⊆ unblocked: {blocking_sound}",
        blocked_out.len(),
        unblocked_out.len()
    );

    // --- Stage 2: parallel vs sequential sub-problem solving. ---
    // A small vocabulary makes the mapping graph dense enough that each
    // partition carries a non-trivial MILP; `batch_size = nodes/partitions`
    // yields at least `partitions` parts.
    let tuples = (args.partitions * 30).max(120);
    let case = generate_synthetic(&SyntheticConfig::new(tuples, 0.3, 400));
    let batch = (2 * tuples).div_ceil(args.partitions);
    // Bound the branch-and-bound by *nodes*, not wall-clock time: node
    // limits are deterministic, so the parallel and sequential runs explore
    // identical search trees even under thread contention.
    let milp = MilpConfig { time_limit: None, max_nodes: 2_000, ..Default::default() };
    let base = Explain3DConfig::batched(batch).with_milp(milp);
    let explain = |config: Explain3DConfig| {
        Explain3D::new(config).explain(
            &case.prepared.left_canonical,
            &case.prepared.right_canonical,
            &case.attribute_matches,
            &case.initial_mapping,
        )
    };
    let (seq_stats, seq_report) = sample(args.runs, || explain(base.clone().with_parallel(false)));
    report("stage2_pipeline", "sequential", &seq_stats);
    let (par_stats, par_report) = sample(args.runs, || explain(base.clone().with_parallel(true)));
    report("stage2_pipeline", "parallel", &par_stats);
    let pipeline_identical = seq_report.explanations == par_report.explanations
        && seq_report.log_probability.to_bits() == par_report.log_probability.to_bits()
        && seq_report.complete == par_report.complete;
    let pipeline_speedup = seq_stats.median_secs() / par_stats.median_secs().max(1e-12);
    println!(
        "stage2_pipeline: {} partitions, outputs identical: {pipeline_identical}, speedup {pipeline_speedup:.2}x",
        par_report.stats.num_subproblems
    );
    println!(
        "stage2_pipeline: packed to {} parts (target k = {}, {} split components, {} oversized)",
        par_report.stats.num_subproblems,
        par_report.stats.target_parts,
        par_report.stats.split_components,
        par_report.stats.oversized_parts
    );

    // --- Stage 2 thread sweep: the work-stealing component scheduler at
    // 1/2/4 workers, each byte-identical to the sequential run. ---
    let mut threads_lane: Vec<Json> = Vec::new();
    let mut threads_identical = true;
    for t in [1usize, 2, 4] {
        let (t_stats, t_report) = sample(args.runs, || explain(base.clone().with_threads(t)));
        report("stage2_threads", &format!("threads_{t}"), &t_stats);
        let identical = seq_report.explanations == t_report.explanations
            && seq_report.log_probability.to_bits() == t_report.log_probability.to_bits();
        threads_identical &= identical;
        println!(
            "stage2_threads: threads={t} median {:.4}s, {} components, {} steals, identical: {identical}",
            t_stats.median_secs(),
            t_report.stats.milp_count,
            t_report.stats.steals,
        );
        threads_lane.push(
            Json::obj()
                .set("threads", t)
                .set("median_secs", t_stats.median_secs())
                .set("solve_cpu_secs", t_report.stats.solve_cpu_time.as_secs_f64())
                .set("steals", t_report.stats.steals)
                .set("components", t_report.stats.milp_count)
                .set("outputs_identical", identical),
        );
    }

    // --- MILP kernel: sparse revised simplex vs the dense tableau baseline
    // on the same sequential Stage-2 workload. ---
    let dense_base = base
        .clone()
        .with_milp(base.milp.clone().with_lp_kernel(LpKernel::Dense))
        .with_parallel(false);
    let (dense_stats, dense_report) = sample(args.runs, || explain(dense_base.clone()));
    report("milp_kernel", "dense", &dense_stats);
    let (sparse_stats, sparse_report) =
        sample(args.runs, || explain(base.clone().with_parallel(false)));
    report("milp_kernel", "sparse", &sparse_stats);
    // Equal-probability alternative optima are legitimate (the MILPs are
    // solved to proven optimality by both kernels, and ties are broken by
    // the search path), so the kernels are compared up to ties: identical
    // provenance, identical evidence set, and the same optimal score.
    let mut dense_ev: Vec<(usize, usize)> =
        dense_report.explanations.evidence.iter().map(|m| m.pair()).collect();
    let mut sparse_ev: Vec<(usize, usize)> =
        sparse_report.explanations.evidence.iter().map(|m| m.pair()).collect();
    dense_ev.sort_unstable();
    sparse_ev.sort_unstable();
    let kernel_identical = dense_report.explanations.provenance
        == sparse_report.explanations.provenance
        && dense_ev == sparse_ev
        && (dense_report.log_probability - sparse_report.log_probability).abs()
            <= 1e-6 * (1.0 + dense_report.log_probability.abs())
        && dense_report.complete == sparse_report.complete;
    let kernel_speedup = dense_report.stats.solve_cpu_time.as_secs_f64()
        / sparse_report.stats.solve_cpu_time.as_secs_f64().max(1e-12);
    println!(
        "milp_kernel: dense solve_cpu {:.4}s vs sparse {:.4}s ({kernel_speedup:.2}x), \
         {} warm LP re-solves, outputs identical: {kernel_identical}",
        dense_report.stats.solve_cpu_time.as_secs_f64(),
        sparse_report.stats.solve_cpu_time.as_secs_f64(),
        sparse_report.stats.warm_lp_solves,
    );

    // --- MILP kernel at scale: one un-partitioned MILP over the whole
    // workload (the NOOPT configuration), where the dense tableau's
    // per-pivot cost bites. A tight explicit node cap keeps the dense lane
    // affordable; the comparison is solve CPU for the same node budget.
    // Budget-limited searches may return different (equally feasible)
    // explanations, so no identity check here — completeness still must
    // hold for both.
    let large_milp =
        MilpConfig { time_limit: None, max_nodes: 10, deadline: None, ..Default::default() };
    let large_base = Explain3DConfig::no_opt().with_milp(large_milp).with_parallel(false);
    let (_, large_dense) = sample(1, || {
        explain(
            large_base.clone().with_milp(large_base.milp.clone().with_lp_kernel(LpKernel::Dense)),
        )
    });
    let (_, large_sparse) = sample(1, || explain(large_base.clone()));
    let large_speedup = large_dense.stats.solve_cpu_time.as_secs_f64()
        / large_sparse.stats.solve_cpu_time.as_secs_f64().max(1e-12);
    println!(
        "milp_kernel_large: single {}-tuple MILP, dense solve_cpu {:.4}s vs sparse {:.4}s \
         ({large_speedup:.2}x), complete: {}/{}",
        large_sparse.stats.max_subproblem_size,
        large_dense.stats.solve_cpu_time.as_secs_f64(),
        large_sparse.stats.solve_cpu_time.as_secs_f64(),
        large_dense.complete,
        large_sparse.complete,
    );

    // --- Incremental re-explanation: a session over the same `rows × rows`
    // workload as the candidate-generation lane (canonicalised with unit
    // impacts, name-keyed), measuring a cold `explain` against `re_explain`
    // on a ~1% delta — with a byte-identity check against a from-scratch
    // session on the post-delta relations. A similarity floor of 0.4 keeps
    // the mapping realistically sparse (near-duplicate phrases only), the
    // regime the session's component-level solution cache targets.
    let make_relation = |name: &str, schema: &Schema, rows: &[Row]| -> CanonicalRelation {
        CanonicalRelation {
            query_name: name.to_string(),
            schema: schema.clone(),
            key_attrs: vec!["name".to_string()],
            tuples: rows
                .iter()
                .enumerate()
                .map(|(i, r)| CanonicalTuple {
                    id: i,
                    key: vec![r.get(0).cloned().unwrap_or(Value::Null)],
                    impact: 1.0,
                    members: vec![i],
                    representative: r.clone(),
                })
                .collect(),
            aggregate: None,
        }
    };
    let inc_left = make_relation("Q1", &ls, &lr);
    let inc_right = make_relation("Q2", &rs, &rr);
    let inc_matches = AttributeMatches::single_equivalent("name", "name");
    let session_cfg = SessionConfig {
        explain: Explain3DConfig::default(),
        mapping: MappingOptions { min_similarity: 0.4, ..Default::default() },
        ..Default::default()
    };
    let fresh_session = |left: &CanonicalRelation, right: &CanonicalRelation| {
        ExplainSession::new(left.clone(), right.clone(), inc_matches.clone(), session_cfg.clone())
    };
    // ~1% of the left tuples: mostly updates (index-stable), plus one
    // insert and one trailing delete to exercise index remapping.
    let mut delta_rng = StdRng::seed_from_u64(7);
    let ops = (inc_left.len() / 100).max(3);
    let mut delta = RelationDelta::new();
    let fresh_tuple = |rng: &mut StdRng| {
        let phrase = vocab::synthetic_phrase(rng, 1500, 3);
        CanonicalTuple {
            id: 0,
            key: vec![Value::str(phrase.clone())],
            impact: 1.0,
            members: vec![],
            representative: Row::new(vec![Value::str(phrase), Value::Int(2031)]),
        }
    };
    let stride = (inc_left.len() / ops).max(1);
    for k in 0..ops - 2 {
        delta =
            delta.update(Side::Left, (k * stride) % inc_left.len(), fresh_tuple(&mut delta_rng));
    }
    delta = delta.insert(Side::Left, fresh_tuple(&mut delta_rng));
    delta = delta.delete(Side::Left, inc_left.len() - 1);

    let (cold_stats, _) = sample(args.runs, || fresh_session(&inc_left, &inc_right).explain());
    report("incremental", "cold_explain", &cold_stats);
    // Each timed re_explain starts from its own warmed session, so the
    // measurement is exactly "one delta on a hot session".
    let mut re_times: Vec<Duration> = Vec::new();
    let mut last_session: Option<ExplainSession> = None;
    let mut last_fingerprint: Vec<u8> = Vec::new();
    let mut re_partition = Duration::ZERO;
    let mut re_solve = Duration::ZERO;
    for _ in 0..args.runs {
        let mut s = fresh_session(&inc_left, &inc_right);
        s.explain();
        let t0 = Instant::now();
        let re_report = s.re_explain(&delta).expect("bench delta is in range");
        re_times.push(t0.elapsed());
        re_partition = re_report.stats.partition_time;
        re_solve = re_report.stats.solve_time;
        last_fingerprint = report_fingerprint(&re_report);
        last_session = Some(s);
    }
    re_times.sort_unstable();
    let re_median = re_times[re_times.len() / 2].as_secs_f64();
    println!(
        "incremental/re_explain: median {:?}  (partition {re_partition:?}, solve+assemble \
         {re_solve:?}, {} runs)",
        re_times[re_times.len() / 2],
        args.runs
    );
    let warmed = last_session.expect("at least one run");
    let mut post_delta_cold = fresh_session(warmed.left(), warmed.right());
    let incremental_identical = last_fingerprint == report_fingerprint(&post_delta_cold.explain());
    let inc_speedup = cold_stats.median_secs() / re_median.max(1e-12);
    let inc_stats = warmed.delta_stats();
    println!(
        "incremental: cold {:.4}s vs re_explain {:.4}s ({inc_speedup:.1}x) on a {}-op delta, \
         byte-identical: {incremental_identical}",
        cold_stats.median_secs(),
        re_median,
        ops,
    );
    println!(
        "incremental: {} component hits / {} misses, {} pair hits / {} misses, \
         {} candidates reused, {} parts reused / {} dirty",
        inc_stats.component_cache_hits,
        inc_stats.component_cache_misses,
        inc_stats.pair_cache_hits,
        inc_stats.pair_cache_misses,
        inc_stats.candidates_reused,
        inc_stats.parts_reused,
        inc_stats.parts_dirty,
    );

    // --- Service: N closed-loop clients through the in-process HTTP
    // server (real sockets, keep-alive connections). Single-token keys
    // keep the mapping sparse, so the measured cost is the serving path —
    // registry locking, coalescing, wire encode/decode — plus a realistic
    // small re_explain per delta. Worker threads exceed the core count on
    // purpose: several deltas against one session can then be in flight
    // together, which is what exercises coalescing.
    const SERVICE_SESSIONS: usize = 4;
    const SERVICE_CLIENTS: usize = 8;
    const SERVICE_REQS: usize = 30;
    const SERVICE_ROWS: usize = 100;
    let session_body = |s: usize| -> String {
        let tuples = |n: usize| -> String {
            (0..n).map(|i| format!("{{\"values\": [\"e{s}x{i}\"]}}")).collect::<Vec<_>>().join(",")
        };
        format!(
            "{{\"left\": {{\"name\": \"Q1\", \"columns\": [[\"k\", \"str\"]], \"key\": [\"k\"], \
             \"tuples\": [{}]}}, \
             \"right\": {{\"name\": \"Q2\", \"columns\": [[\"k\", \"str\"]], \"key\": [\"k\"], \
             \"tuples\": [{}]}}, \
             \"match\": {{\"left\": \"k\", \"right\": \"k\"}}}}",
            tuples(SERVICE_ROWS),
            tuples(SERVICE_ROWS - 5),
        )
    };
    let server = explain3d::service::Server::bind(explain3d::service::ServerConfig {
        threads: 4,
        queue_capacity: 128,
        service: explain3d::service::ServiceConfig {
            memory_budget: None,
            record_deltas: true,
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("bind ephemeral service port");
    let service_addr = server.local_addr();
    let service_registry = server.registry();
    let service_handle = server.spawn();

    {
        let mut setup = Client::connect(service_addr).expect("service setup connect");
        for s in 0..SERVICE_SESSIONS {
            let (status, body) = setup
                .request("POST", &format!("/sessions/bench{s}"), &session_body(s))
                .expect("create request");
            assert_eq!(status, 200, "service create failed: {body}");
            let (status, body) = setup
                .request("POST", &format!("/sessions/bench{s}/explain"), "")
                .expect("explain request");
            assert_eq!(status, 200, "service explain failed: {body}");
        }
    }

    let service_start = Instant::now();
    let mut service_latencies: Vec<Duration> = Vec::new();
    let mut service_errors = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..SERVICE_CLIENTS {
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(4242 + c as u64);
                let mut client = Client::connect(service_addr).expect("client connect");
                let mut latencies = Vec::with_capacity(SERVICE_REQS);
                let mut errors = 0usize;
                for step in 0..SERVICE_REQS {
                    let s = rng.gen_range(0..SERVICE_SESSIONS);
                    let (method, path, body): (&str, String, String) = match rng.gen_range(0..10u32)
                    {
                        // Mixed workload: deltas dominate (they are the
                        // serving product), reports and cold explains
                        // ride along.
                        0..=5 => {
                            let op = match rng.gen_range(0..3u32) {
                                0 => format!(
                                    "{{\"op\": \"insert\", \"side\": \"left\", \
                                         \"tuple\": {{\"values\": [\"n{c}x{step}\"]}}}}"
                                ),
                                1 => format!(
                                    "{{\"op\": \"update\", \"side\": \"right\", \
                                         \"index\": {}, \
                                         \"tuple\": {{\"values\": [\"u{c}x{step}\"]}}}}",
                                    rng.gen_range(0..SERVICE_ROWS - 8)
                                ),
                                _ => format!(
                                    "{{\"op\": \"delete\", \"side\": \"left\", \
                                         \"index\": {}}}",
                                    rng.gen_range(0..SERVICE_ROWS - 8)
                                ),
                            };
                            (
                                "POST",
                                format!("/sessions/bench{s}/delta"),
                                format!("{{\"ops\": [{op}]}}"),
                            )
                        }
                        6..=8 => ("GET", format!("/sessions/bench{s}/report"), String::new()),
                        _ => ("POST", format!("/sessions/bench{s}/explain"), String::new()),
                    };
                    let t0 = Instant::now();
                    let (status, _) =
                        client.request(method, &path, &body).expect("service request");
                    latencies.push(t0.elapsed());
                    // Out-of-range deletes against a shrunk relation are
                    // legitimate client errors; anything else is not.
                    if status != 200 {
                        assert_eq!(status, 400, "unexpected service status {status}");
                        errors += 1;
                    }
                }
                (latencies, errors)
            }));
        }
        for h in handles {
            let (lat, errs) = h.join().expect("service client panicked");
            service_latencies.extend(lat);
            service_errors += errs;
        }
    });
    let service_wall = service_start.elapsed();
    service_latencies.sort_unstable();
    let quantile = |q: f64| -> f64 {
        let idx = ((service_latencies.len() - 1) as f64 * q).round() as usize;
        service_latencies[idx].as_secs_f64() * 1e3
    };
    let service_total = service_latencies.len();
    let service_rps = service_total as f64 / service_wall.as_secs_f64().max(1e-12);
    let service_stats = service_registry.stats();

    // Byte-identity: every session's final wire report must equal a serial
    // in-process replay of its applied-delta log.
    let mut service_identical = true;
    {
        let mut check = Client::connect(service_addr).expect("service check connect");
        for s in 0..SERVICE_SESSIONS {
            let name = format!("bench{s}");
            let log = service_registry.delta_log(&name).expect("session resident");
            let base = wire::parse_create(&session_body(s)).expect("base body parses");
            let mut replay = ExplainSession::new(base.left, base.right, base.matches, base.config);
            let mut replay_report = replay.explain();
            for delta in &log {
                replay_report = replay.re_explain(delta).expect("logged deltas replay");
            }
            let (status, wire_report) = check
                .request("GET", &format!("/sessions/{name}/report"), "")
                .expect("final report");
            assert_eq!(status, 200);
            let wire_fp = wire_report
                .get("fingerprint")
                .and_then(Json::as_str)
                .expect("report carries a fingerprint")
                .to_string();
            let replay_fp = wire::fingerprint_hex(&replay_report);
            if wire_fp != replay_fp {
                eprintln!(
                    "service: session {name} diverged from serial replay of {} deltas",
                    log.len()
                );
                service_identical = false;
            }
        }
    }
    service_handle.shutdown();
    println!(
        "service: {} requests over {} sessions in {:.3}s — {:.0} req/s, \
         p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms",
        service_total,
        SERVICE_SESSIONS,
        service_wall.as_secs_f64(),
        service_rps,
        quantile(0.50),
        quantile(0.95),
        quantile(0.99),
    );
    println!(
        "service: {} deltas applied ({} coalesced), {} out-of-range rejections, \
         serial-replay identical: {service_identical}",
        service_stats.deltas_applied, service_stats.coalesced_deltas, service_errors,
    );

    // --- Telemetry: the observability layer's cost and its scrape surface
    // under live traffic. Two identical closed-loop runs — telemetry off,
    // then armed — measure the throughput price of full instrumentation
    // (per-request trace spans, histograms, the trace ring); the armed run
    // is then scraped and the exposition sanity-checked: unique series,
    // declared route counters, and a request count covering the driven
    // traffic. The off run doubles as CI's regression baseline for the
    // "zero overhead when disabled" claim.
    const TEL_CLIENTS: usize = 4;
    const TEL_REQS: usize = 150;
    let telemetry_run = |armed: bool| -> (f64, Option<String>) {
        let mut config = explain3d::service::ServerConfig {
            threads: 4,
            queue_capacity: 128,
            ..Default::default()
        };
        if armed {
            config.service.telemetry = Some(std::sync::Arc::new(
                explain3d::service::Telemetry::new(explain3d::service::TelemetryConfig::default())
                    .expect("telemetry arms without a slow log"),
            ));
        }
        let server = explain3d::service::Server::bind(config).expect("bind telemetry lane");
        let addr = server.local_addr();
        let handle = server.spawn();
        {
            let mut setup = Client::connect(addr).expect("telemetry setup connect");
            let (status, body) =
                setup.request("POST", "/sessions/tel", &session_body(9)).expect("telemetry create");
            assert_eq!(status, 200, "telemetry create failed: {body}");
            let (status, body) =
                setup.request("POST", "/sessions/tel/explain", "").expect("telemetry explain");
            assert_eq!(status, 200, "telemetry explain failed: {body}");
        }
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..TEL_CLIENTS {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("telemetry client connect");
                    for step in 0..TEL_REQS {
                        let (method, path, body) = if step % 5 == 0 {
                            (
                                "POST",
                                "/sessions/tel/delta",
                                format!(
                                    "{{\"ops\": [{{\"op\": \"insert\", \"side\": \"left\", \
                                     \"tuple\": {{\"values\": [\"t{c}x{step}\"]}}}}]}}"
                                ),
                            )
                        } else {
                            ("GET", "/sessions/tel/report", String::new())
                        };
                        let (status, _) =
                            client.request(method, path, &body).expect("telemetry request");
                        assert_eq!(status, 200, "telemetry lane request failed");
                    }
                });
            }
        });
        let rps = (TEL_CLIENTS * TEL_REQS) as f64 / t0.elapsed().as_secs_f64().max(1e-12);
        let scrape = armed.then(|| fetch_text(addr, "/metrics"));
        handle.shutdown();
        (rps, scrape)
    };
    let (tel_off_rps, _) = telemetry_run(false);
    let (tel_on_rps, tel_scrape) = telemetry_run(true);
    let tel_scrape = tel_scrape.expect("the armed run scrapes /metrics");
    let mut tel_seen = std::collections::HashSet::new();
    let mut tel_series = 0usize;
    let mut tel_scrape_ok = tel_scrape.contains("# TYPE e3d_http_requests_total counter")
        && tel_scrape.contains("# TYPE e3d_request_us histogram")
        && tel_scrape.contains("e3d_http_requests_total{route=\"delta\"}")
        && tel_scrape.contains("e3d_http_requests_total{route=\"report\"}");
    for line in tel_scrape.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
        tel_series += 1;
        let key = line.rsplit_once(' ').map(|(k, _)| k).unwrap_or(line);
        tel_scrape_ok &= tel_seen.insert(key.to_string());
    }
    let tel_overhead_pct = (tel_off_rps / tel_on_rps.max(1e-12) - 1.0) * 100.0;
    println!(
        "telemetry: off {tel_off_rps:.0} req/s vs armed {tel_on_rps:.0} req/s \
         ({tel_overhead_pct:+.1}% overhead), scrape has {tel_series} unique series, \
         valid: {tel_scrape_ok}"
    );

    // --- Service at scale: the readiness event loop holding thousands of
    // simultaneously open keep-alive connections while serving traffic.
    // Every connection is opened before any request is measured (a barrier
    // separates the phases), so the peak concurrent-open count *is* the
    // connection count during the whole measured window. The workload is
    // report reads across enough sessions to touch every registry shard,
    // plus a trickle of deltas so the shard-contention counter measures a
    // real read/write mix. The server is the real `explain3d-serve`
    // binary in a child process when it is built (so each side of a
    // connection spends its fd in its own process and the default 10k
    // target fits under tight RLIMIT_NOFILE settings), falling back to an
    // in-process server (2 fds per connection) otherwise; either way the
    // lane raises RLIMIT_NOFILE when it can and records any clamp
    // honestly instead of silently shrinking the claim.
    const SCALE_SESSIONS: usize = 64;
    const SCALE_CLIENTS: usize = 8;
    const SCALE_ROUNDS: usize = 3;
    const SCALE_ROWS: usize = 12;
    let scale_requested: usize =
        std::env::var("SERVICE_SCALE_CONNS").ok().and_then(|v| v.parse().ok()).unwrap_or(10_000);
    let serve_bin = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("explain3d-serve")))
        .filter(|p| p.is_file());
    let scale_mode = if serve_bin.is_some() { "child-process" } else { "in-process" };
    let fd_per_conn: u64 = if serve_bin.is_some() { 1 } else { 2 };
    let fd_limit = raise_fd_limit(scale_requested as u64 * fd_per_conn + 1024);
    let scale_conns =
        scale_requested.min((fd_limit.saturating_sub(1024) / fd_per_conn) as usize).max(64);
    if scale_conns < scale_requested {
        println!(
            "service_scale: RLIMIT_NOFILE {fd_limit} caps the {scale_mode} lane at {scale_conns} \
             connections (requested {scale_requested}; set SERVICE_SCALE_CONNS or raise the limit)"
        );
    }
    let mut scale_child: Option<std::process::Child> = None;
    let mut scale_child_stdout: Option<std::io::BufReader<std::process::ChildStdout>> = None;
    let mut scale_handle: Option<explain3d::service::ServerHandle> = None;
    let scale_addr: std::net::SocketAddr = if let Some(bin) = &serve_bin {
        use std::io::BufRead;
        let mut child = std::process::Command::new(bin)
            .args([
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "4",
                "--queue",
                "1024",
                "--max-conns",
                &(scale_conns + 64).to_string(),
                "--io-timeout-ms",
                "60000",
            ])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .expect("spawn explain3d-serve for the scale lane");
        let mut reader = std::io::BufReader::new(child.stdout.take().expect("child stdout"));
        let mut banner = String::new();
        reader.read_line(&mut banner).expect("serve banner");
        let addr = banner
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| panic!("unparseable serve banner: {banner:?}"));
        // Keep the pipe's read end open for the child's lifetime — the
        // server prints on shutdown, and a closed pipe would turn that
        // into an EPIPE panic.
        scale_child_stdout = Some(reader);
        scale_child = Some(child);
        addr
    } else {
        let server = explain3d::service::Server::bind(explain3d::service::ServerConfig {
            threads: 4,
            queue_capacity: 1024,
            io_timeout: Duration::from_secs(60),
            max_connections: scale_conns + 64,
            service: explain3d::service::ServiceConfig {
                memory_budget: None,
                ..Default::default()
            },
            ..Default::default()
        })
        .expect("bind ephemeral scale port");
        let addr = server.local_addr();
        scale_handle = Some(server.spawn());
        addr
    };
    // Shard stats come over the wire (`GET /sessions`), which works
    // identically against the child process and the in-process fallback.
    let scale_stats_probe = |label: &str| -> (usize, usize) {
        let mut probe = Client::connect(scale_addr).expect("scale stats connect");
        let (status, body) = probe.request("GET", "/sessions", "").expect("scale stats request");
        assert_eq!(status, 200, "scale stats ({label}): {body}");
        let stats = body.get("stats").expect("stats object");
        (
            stats.get("shards").and_then(Json::as_i64).expect("shards") as usize,
            stats.get("shard_contention").and_then(Json::as_i64).expect("shard_contention")
                as usize,
        )
    };

    let scale_body = |s: usize| -> String {
        let tuples = |n: usize| -> String {
            (0..n).map(|i| format!("{{\"values\": [\"s{s}x{i}\"]}}")).collect::<Vec<_>>().join(",")
        };
        format!(
            "{{\"left\": {{\"name\": \"Q1\", \"columns\": [[\"k\", \"str\"]], \"key\": [\"k\"], \
             \"tuples\": [{}]}}, \
             \"right\": {{\"name\": \"Q2\", \"columns\": [[\"k\", \"str\"]], \"key\": [\"k\"], \
             \"tuples\": [{}]}}, \
             \"match\": {{\"left\": \"k\", \"right\": \"k\"}}}}",
            tuples(SCALE_ROWS),
            tuples(SCALE_ROWS - 2),
        )
    };
    {
        let mut setup = Client::connect(scale_addr).expect("scale setup connect");
        for s in 0..SCALE_SESSIONS {
            let (status, body) = setup
                .request("POST", &format!("/sessions/scale{s}"), &scale_body(s))
                .expect("scale create");
            assert_eq!(status, 200, "scale create failed: {body}");
            let (status, body) = setup
                .request("POST", &format!("/sessions/scale{s}/explain"), "")
                .expect("scale explain");
            assert_eq!(status, 200, "scale explain failed: {body}");
        }
    }
    let (_, scale_contention_base) = scale_stats_probe("baseline");

    let scale_open_start = Instant::now();
    let all_open = std::sync::Barrier::new(SCALE_CLIENTS + 1);
    let mut scale_latencies: Vec<Duration> = Vec::new();
    let mut scale_errors = 0usize;
    let mut scale_opened = 0usize;
    let scale_measured: Duration = std::thread::scope(|scope| {
        let per_client = scale_conns / SCALE_CLIENTS;
        let mut handles = Vec::new();
        for c in 0..SCALE_CLIENTS {
            let all_open = &all_open;
            let count =
                if c == SCALE_CLIENTS - 1 { scale_conns - per_client * c } else { per_client };
            handles.push(scope.spawn(move || {
                let mut sockets = Vec::with_capacity(count);
                for k in 0..count {
                    // Brief pacing keeps the connect storm inside the
                    // listener backlog (SYN retransmits would stall 1s+).
                    if k % 100 == 99 {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    let mut tries = 0;
                    let stream = loop {
                        match std::net::TcpStream::connect(scale_addr) {
                            Ok(s) => break s,
                            Err(e) if tries < 50 => {
                                tries += 1;
                                std::thread::sleep(Duration::from_millis(20));
                                let _ = e;
                            }
                            Err(e) => panic!("scale connect (after {tries} retries): {e}"),
                        }
                    };
                    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
                    sockets.push(stream);
                }
                all_open.wait();
                let mut latencies = Vec::with_capacity(count * SCALE_ROUNDS);
                let mut errors = 0usize;
                for round in 0..SCALE_ROUNDS {
                    for (k, sock) in sockets.iter_mut().enumerate() {
                        let session = (c * per_client + k) % SCALE_SESSIONS;
                        // One delta per thread per round keeps a writer in
                        // the read mix without dominating the wall clock.
                        let request = if k == 0 {
                            let body = format!(
                                "{{\"ops\": [{{\"op\": \"insert\", \"side\": \"left\", \
                                 \"tuple\": {{\"values\": [\"z{c}r{round}\"]}}}}]}}"
                            );
                            format!(
                                "POST /sessions/scale{session}/delta HTTP/1.1\r\n\
                                 Content-Length: {}\r\n\r\n{body}",
                                body.len()
                            )
                        } else {
                            format!("GET /sessions/scale{session}/report HTTP/1.1\r\n\r\n")
                        };
                        let t0 = Instant::now();
                        let status =
                            scale_round_trip(sock, request.as_bytes()).expect("scale request");
                        latencies.push(t0.elapsed());
                        if status != 200 {
                            errors += 1;
                        }
                    }
                }
                (sockets.len(), latencies, errors)
            }));
        }
        all_open.wait();
        let measure_start = Instant::now();
        for h in handles {
            let (opened, lat, errs) = h.join().expect("scale client panicked");
            scale_opened += opened;
            scale_latencies.extend(lat);
            scale_errors += errs;
        }
        measure_start.elapsed()
    });
    let scale_open_secs = scale_open_start.elapsed().as_secs_f64() - scale_measured.as_secs_f64();
    scale_latencies.sort_unstable();
    let scale_quantile = |q: f64| -> f64 {
        let idx = ((scale_latencies.len() - 1) as f64 * q).round() as usize;
        scale_latencies[idx].as_secs_f64() * 1e3
    };
    let scale_total = scale_latencies.len();
    let scale_rps = scale_total as f64 / scale_measured.as_secs_f64().max(1e-12);
    let (scale_shards, scale_contention_end) = scale_stats_probe("final");
    let scale_contention = scale_contention_end - scale_contention_base;
    // Health probe after the storm: the cheap no-session-locks endpoint
    // must answer even with 10k connections parked, and this lane runs
    // without fault injection, so every durability counter must be zero.
    let scale_health = {
        let mut probe = Client::connect(scale_addr).expect("healthz connect");
        let (status, body) = probe.request("GET", "/healthz", "").expect("healthz request");
        assert_eq!(status, 200, "healthz after scale storm: {body}");
        let counter = |k: &str| -> usize {
            body.get(k)
                .and_then(Json::as_i64)
                .unwrap_or_else(|| panic!("healthz lacks {k}: {body}")) as usize
        };
        let health = (counter("degraded_sessions"), counter("wal_errors"), counter("quarantined"));
        assert_eq!(health, (0, 0, 0), "fault-free scale lane reported durability trouble: {body}");
        health
    };
    if let Some(mut child) = scale_child.take() {
        let _ = child.kill();
        let _ = child.wait();
    }
    drop(scale_child_stdout);
    if let Some(handle) = scale_handle.take() {
        handle.shutdown();
    }
    let scale_all_served = scale_opened == scale_conns && scale_errors == 0;
    println!(
        "service_scale: {scale_opened} concurrent keep-alive connections opened in \
         {scale_open_secs:.2}s ({scale_mode}), {scale_total} requests in {:.3}s — \
         {scale_rps:.0} req/s, p50 {:.2}ms p99 {:.2}ms",
        scale_measured.as_secs_f64(),
        scale_quantile(0.50),
        scale_quantile(0.99),
    );
    println!(
        "service_scale: {scale_shards} registry shards, {scale_contention} contended lock \
         acquisitions, {scale_errors} errors"
    );
    println!(
        "service_scale: healthz ok — {} degraded sessions, {} wal errors, {} quarantined",
        scale_health.0, scale_health.1, scale_health.2
    );

    // --- Durability: the write-ahead-log cost of acknowledging a delta
    // under each fsync policy (the snapshot content is irrelevant to
    // append cost, so a small genesis keeps setup out of the numbers),
    // and the cold-recovery latency of the `rows × rows` session above —
    // snapshot load + WAL-suffix replay + one deadline-scoped explain,
    // fingerprint-checked against the pre-crash `re_explain` report.
    use explain3d::durability::{
        DurabilityConfig, FsyncPolicy, SessionSnapshot, SessionStore, WalRecord,
    };
    const WAL_APPENDS: u64 = 256;
    let dur_dir = std::env::temp_dir().join(format!("e3d-bench-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dur_dir);
    let mut wal_rng = StdRng::seed_from_u64(99);
    let wal_delta = RelationDelta::new().insert(Side::Left, fresh_tuple(&mut wal_rng));
    let wal_genesis = SessionSnapshot {
        seq: 0,
        explained: true,
        last_deadline: None,
        config: session_cfg.clone(),
        matches: inc_matches.clone(),
        left: make_relation("Q1", &ls, &lr[..8]),
        right: make_relation("Q2", &rs, &rr[..8]),
        retry_window: Vec::new(),
    };
    let wal_policies: [(&str, FsyncPolicy); 3] = [
        ("off", FsyncPolicy::Never),
        ("interval16", FsyncPolicy::EveryN(16)),
        ("always", FsyncPolicy::Always),
    ];
    let mut wal_rates = Json::obj();
    let mut wal_lines = Vec::new();
    for (label, fsync) in wal_policies {
        let store = SessionStore::open(DurabilityConfig {
            dir: dur_dir.join(label),
            fsync,
            snapshot_every: u64::MAX,
            shim: None,
        });
        let mut wal = store.create_session("w", &wal_genesis).expect("bench WAL create");
        let t0 = Instant::now();
        for seq in 1..=WAL_APPENDS {
            wal.append(&WalRecord {
                seq,
                deadline: None,
                request_id: None,
                delta: wal_delta.clone(),
            })
            .expect("bench WAL append");
        }
        let rate = WAL_APPENDS as f64 / t0.elapsed().as_secs_f64().max(1e-12);
        wal_rates = wal_rates.set(&format!("append_rps_{label}"), rate);
        wal_lines.push(format!("{label} {rate:.0}/s"));
    }
    println!("durability/wal_append: {} ({WAL_APPENDS} one-op records)", wal_lines.join(", "));

    let recovery_dir = dur_dir.join("recovery");
    let durable_service = || explain3d::service::ServiceConfig {
        durability: Some(DurabilityConfig {
            dir: recovery_dir.clone(),
            fsync: FsyncPolicy::Never,
            snapshot_every: u64::MAX,
            shim: None,
        }),
        ..Default::default()
    };
    {
        // The doomed process: explain the big session, apply the bench
        // delta (WAL-logged), then vanish without any flush.
        let registry = explain3d::service::SessionRegistry::new(durable_service());
        registry
            .create(
                "big",
                wire::CreateRequest {
                    left: inc_left.clone(),
                    right: inc_right.clone(),
                    matches: inc_matches.clone(),
                    config: session_cfg.clone(),
                },
            )
            .expect("bench durable create");
        registry.explain("big", None).expect("bench durable explain");
        registry.delta("big", delta.clone(), None).expect("bench durable delta");
    }
    let t0 = Instant::now();
    let survivor = explain3d::service::SessionRegistry::new(durable_service());
    let recovered_report = survivor.report("big").expect("recovery of the big session");
    let recovery_secs = t0.elapsed().as_secs_f64();
    let recovery_identical = report_fingerprint(&recovered_report) == last_fingerprint;
    println!(
        "durability: cold recovery of the {0}×{0} session in {recovery_secs:.4}s \
         (snapshot load + 1-delta replay + scoped explain, cold explain alone {1:.4}s), \
         byte-identical to the pre-crash report: {recovery_identical}",
        args.rows,
        cold_stats.median_secs(),
    );
    std::fs::remove_dir_all(&dur_dir).expect("bench durability tempdir cleanup");

    // --- Emit the JSON trajectory point. ---
    let json = Json::obj()
        .set("schema_version", 1usize)
        .set("machine", Json::obj().set("threads", threads))
        .set(
            "workload",
            Json::obj()
                .set("rows", args.rows)
                .set("runs", args.runs)
                .set("stage2_tuples_per_side", tuples)
                .set("stage2_batch_size", batch),
        )
        .set(
            "candidate_generation",
            Json::obj()
                .set("candidates", fast_out.len())
                .set("naive_median_secs", naive_stats.median_secs())
                .set("interned_median_secs", fast_stats.median_secs())
                .set("speedup", cand_speedup)
                .set("outputs_identical", cand_identical)
                .set("pairs_scored", gen_stats.pairs_scored)
                .set("chunk_pairs", gen_stats.chunk_pairs)
                .set("chunks", gen_stats.chunks)
                .set("peak_resident_pairs", gen_stats.peak_resident_pairs),
        )
        .set(
            "blocking",
            Json::obj()
                .set("rows", blocked_rows)
                .set("blocked_candidates", blocked_out.len())
                .set("unblocked_candidates", unblocked_out.len())
                .set("blocked_median_secs", blocked_stats.median_secs())
                .set("unblocked_median_secs", unblocked_stats.median_secs())
                .set("blocked_subset_of_unblocked", blocking_sound),
        )
        .set(
            "stage2_pipeline",
            Json::obj()
                .set("partitions", par_report.stats.num_subproblems)
                .set("target_parts", par_report.stats.target_parts)
                .set("split_components", par_report.stats.split_components)
                .set("oversized_parts", par_report.stats.oversized_parts)
                .set("threads", par_report.stats.threads)
                .set("sequential_median_secs", seq_stats.median_secs())
                .set("parallel_median_secs", par_stats.median_secs())
                .set("speedup", pipeline_speedup)
                .set("solve_cpu_secs", par_report.stats.solve_cpu_time.as_secs_f64())
                .set("max_subproblem_secs", par_report.stats.max_subproblem_time.as_secs_f64())
                .set("steals", par_report.stats.steals)
                .set("outputs_identical", pipeline_identical),
        )
        .set("stage2_threads", threads_lane)
        .set(
            "milp_kernel",
            Json::obj()
                .set("dense_solve_cpu_secs", dense_report.stats.solve_cpu_time.as_secs_f64())
                .set("sparse_solve_cpu_secs", sparse_report.stats.solve_cpu_time.as_secs_f64())
                .set("speedup", kernel_speedup)
                .set("warm_lp_solves", sparse_report.stats.warm_lp_solves)
                .set("milp_count", sparse_report.stats.milp_count)
                .set("outputs_identical", kernel_identical),
        )
        .set(
            "milp_kernel_large",
            Json::obj()
                .set("tuples", large_sparse.stats.max_subproblem_size)
                .set("dense_solve_cpu_secs", large_dense.stats.solve_cpu_time.as_secs_f64())
                .set("sparse_solve_cpu_secs", large_sparse.stats.solve_cpu_time.as_secs_f64())
                .set("speedup", large_speedup)
                .set("warm_lp_solves", large_sparse.stats.warm_lp_solves)
                .set("both_complete", large_dense.complete && large_sparse.complete),
        )
        .set(
            "incremental",
            Json::obj()
                .set("rows", args.rows)
                .set("delta_ops", ops)
                .set("cold_explain_median_secs", cold_stats.median_secs())
                .set("re_explain_median_secs", re_median)
                .set("speedup", inc_speedup)
                .set("byte_identical", incremental_identical)
                .set("component_cache_hits", inc_stats.component_cache_hits)
                .set("component_cache_misses", inc_stats.component_cache_misses)
                .set("pair_cache_hits", inc_stats.pair_cache_hits)
                .set("pair_cache_misses", inc_stats.pair_cache_misses)
                .set("candidates_reused", inc_stats.candidates_reused)
                .set("parts_reused", inc_stats.parts_reused)
                .set("parts_dirty", inc_stats.parts_dirty),
        )
        .set(
            "service",
            Json::obj()
                .set("sessions", SERVICE_SESSIONS)
                .set("clients", SERVICE_CLIENTS)
                .set("rows_per_side", SERVICE_ROWS)
                .set("requests", service_total)
                .set("wall_secs", service_wall.as_secs_f64())
                .set("throughput_rps", service_rps)
                .set("p50_ms", quantile(0.50))
                .set("p95_ms", quantile(0.95))
                .set("p99_ms", quantile(0.99))
                .set("deltas_applied", service_stats.deltas_applied)
                .set("coalesced_deltas", service_stats.coalesced_deltas)
                .set("out_of_range_rejections", service_errors)
                .set("serial_replay_identical", service_identical),
        )
        .set(
            "telemetry",
            Json::obj()
                .set("clients", TEL_CLIENTS)
                .set("requests_per_run", TEL_CLIENTS * TEL_REQS)
                .set("off_rps", tel_off_rps)
                .set("on_rps", tel_on_rps)
                .set("overhead_pct", tel_overhead_pct)
                .set("scrape_series", tel_series)
                .set("scrape_valid", tel_scrape_ok),
        )
        .set(
            "service_scale",
            Json::obj()
                .set("connections", scale_opened)
                .set("requested_connections", scale_requested)
                .set("mode", scale_mode)
                .set("fd_limit", fd_limit as usize)
                .set("sessions", SCALE_SESSIONS)
                .set("client_threads", SCALE_CLIENTS)
                .set("rounds", SCALE_ROUNDS)
                .set("requests", scale_total)
                .set("open_secs", scale_open_secs)
                .set("measured_secs", scale_measured.as_secs_f64())
                .set("throughput_rps", scale_rps)
                .set("p50_ms", scale_quantile(0.50))
                .set("p99_ms", scale_quantile(0.99))
                .set("shards", scale_shards)
                .set("shard_contention", scale_contention)
                .set("errors", scale_errors)
                .set("healthz_degraded_sessions", scale_health.0)
                .set("healthz_wal_errors", scale_health.1)
                .set("healthz_quarantined", scale_health.2),
        )
        .set(
            "durability",
            wal_rates
                .set("wal_appends", WAL_APPENDS as usize)
                .set("cold_recovery_secs", recovery_secs)
                .set("cold_explain_median_secs", cold_stats.median_secs())
                .set("recovered_identical", recovery_identical),
        );
    std::fs::write(&args.out, json.to_pretty_string())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    println!("wrote {}", args.out);

    assert!(cand_identical, "interned candidate generation diverged from the baseline");
    assert!(pipeline_identical, "parallel pipeline diverged from the sequential run");
    assert!(threads_identical, "a work-stealing thread count diverged from the sequential run");
    assert!(
        kernel_identical,
        "sparse kernel explanations diverged from the dense baseline beyond tie-breaking"
    );
    assert!(blocking_sound, "blocking produced a candidate the exhaustive scan lacks");
    assert!(
        incremental_identical,
        "incremental re_explain diverged from a from-scratch run on the post-delta data"
    );
    assert!(
        service_identical,
        "a concurrently served session diverged from the serial replay of its delta log"
    );
    assert!(
        recovery_identical,
        "the recovered session's report diverged from the pre-crash re_explain result"
    );
    assert!(
        tel_scrape_ok,
        "the live /metrics scrape was malformed (duplicate series or missing families)"
    );
    assert!(
        scale_all_served,
        "the scale lane must open every connection and serve every request \
         ({scale_opened}/{scale_conns} opened, {scale_errors} errors)"
    );
    assert!(
        gen_stats.peak_resident_pairs <= threads.max(1) * gen_stats.chunk_pairs,
        "streaming residency {} exceeded threads × chunk bound",
        gen_stats.peak_resident_pairs
    );
    // First-fit packing guarantees no two parts can merge within the bound,
    // which caps the count at 2·target + 1 for *any* workload; the default
    // bench workload packs all the way down to target + splits (recorded in
    // the JSON for the trajectory), but that tighter bound is
    // workload-dependent, so it is not asserted here.
    assert!(
        par_report.stats.num_subproblems
            <= 2 * par_report.stats.target_parts + 1 + par_report.stats.oversized_parts,
        "packed part count {} exceeded the first-fit bound for target {} (+ {} oversized)",
        par_report.stats.num_subproblems,
        par_report.stats.target_parts,
        par_report.stats.oversized_parts
    );
}
