//! Figure 4 (dataset statistics) and Figure 5 (attribute matches).
//!
//! Prints the per-case statistics `N`, `|P|`, `|T|`, `|M_tuple|`,
//! `|M*_tuple|`, `|E| → |E_S|` for the academic pairs and the IMDb query
//! templates, plus the attribute matches used for each comparison.
//!
//! Run with: `cargo run --release -p explain3d-bench --bin fig4_dataset_stats`

use explain3d::datagen::{
    generate_academic, generate_views, AcademicConfig, ImdbConfig, ImdbTemplate,
};
use explain3d::eval::ResultTable;
use explain3d::prelude::*;

fn summarized_size(case: &explain3d::datagen::GeneratedCase) -> usize {
    // |E_S|: Stage-3 summary size of the gold explanations on both sides.
    let left = summarize_side(
        &case.gold,
        Side::Left,
        &case.prepared.left_canonical,
        &SummarizerConfig::default(),
    );
    let right = summarize_side(
        &case.gold,
        Side::Right,
        &case.prepared.right_canonical,
        &SummarizerConfig::default(),
    );
    left.size() + right.size()
}

fn main() {
    let mut table = ResultTable::new(
        "Figure 4: dataset statistics",
        &["case", "N (rows)", "|P1|/|P2|", "|T1|/|T2|", "|M_tuple|", "|M*|", "|E| -> |E_S|"],
    );
    let mut matches_table = ResultTable::new("Figure 5: attribute matches", &["case", "M_attr"]);

    for config in [AcademicConfig::umass(), AcademicConfig::osu()] {
        let case = generate_academic(&config);
        let s = case.statistics();
        table.add_row(vec![
            s.name.clone(),
            format!("{}/{}", s.left_rows, s.right_rows),
            format!("{}/{}", s.left_provenance, s.right_provenance),
            format!("{}/{}", s.left_canonical, s.right_canonical),
            s.initial_matches.to_string(),
            s.gold_evidence.to_string(),
            format!("{} -> {}", s.gold_explanations, summarized_size(&case)),
        ]);
        matches_table.add_row(vec![s.name, case.attribute_matches.to_string()]);
    }

    let views = generate_views(&ImdbConfig::default());
    for template in ImdbTemplate::all() {
        let param = views.default_param(template, 17);
        let case = views.case(template, &param);
        let s = case.statistics();
        table.add_row(vec![
            format!("imdb {}", template.label()),
            format!("{}/{}", s.left_rows, s.right_rows),
            format!("{}/{}", s.left_provenance, s.right_provenance),
            format!("{}/{}", s.left_canonical, s.right_canonical),
            s.initial_matches.to_string(),
            s.gold_evidence.to_string(),
            format!("{} -> {}", s.gold_explanations, summarized_size(&case)),
        ]);
        matches_table.add_row(vec![
            format!("imdb {}", template.label()),
            case.attribute_matches.to_string(),
        ]);
    }

    println!("{table}");
    println!("{matches_table}");
}
