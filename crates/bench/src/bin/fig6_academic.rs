//! Figure 6 (a–f): explanation accuracy, evidence accuracy, and execution
//! time of all methods on the two academic dataset pairs (UMass-sized and
//! OSU-sized catalogs vs. an NCES-style statistics table).
//!
//! Run with: `cargo run --release -p explain3d-bench --bin fig6_academic`

use explain3d::datagen::{generate_academic, AcademicConfig};
use explain3d::eval::ResultTable;
use explain3d_bench::{run_all_methods, secs};

fn main() {
    for (label, config) in [
        ("NCES vs UMass (Figure 6 a-c)", AcademicConfig::umass()),
        ("NCES vs OSU (Figure 6 d-f)", AcademicConfig::osu()),
    ] {
        let case = generate_academic(&config);
        let (r1, r2) = case.prepared.results();
        println!("### {label}");
        println!("Q1 (campus COUNT) = {r1}   Q2 (NCES SUM) = {r2}");
        println!("attribute matches: {}", case.attribute_matches);
        let stats = case.statistics();
        println!(
            "|P1|={} |P2|={} |T1|={} |T2|={} |M_tuple|={} |M*|={} |E|={}",
            stats.left_provenance,
            stats.right_provenance,
            stats.left_canonical,
            stats.right_canonical,
            stats.initial_matches,
            stats.gold_evidence,
            stats.gold_explanations
        );

        let outcomes = run_all_methods(&case, 50);
        let mut table = ResultTable::new(
            format!("{label}: accuracy and execution time"),
            &["method", "expl P", "expl R", "expl F1", "evid P", "evid R", "evid F1", "time (s)"],
        );
        for o in &outcomes {
            table.add_row(vec![
                o.method.clone(),
                format!("{:.3}", o.explanation.precision),
                format!("{:.3}", o.explanation.recall),
                format!("{:.3}", o.explanation.f_measure),
                format!("{:.3}", o.evidence.precision),
                format!("{:.3}", o.evidence.recall),
                format!("{:.3}", o.evidence.f_measure),
                secs(o.time),
            ]);
        }
        println!("{table}");
    }
}
