//! Figure 7 (a–c): average explanation / evidence accuracy over the IMDb
//! query templates for all methods, and execution time as the per-query
//! provenance grows.
//!
//! Run with: `cargo run --release -p explain3d-bench --bin fig7_imdb`

use explain3d::datagen::{generate_views, ImdbConfig, ImdbTemplate};
use explain3d::eval::{Accuracy, ResultTable};
use explain3d::prelude::*;
use explain3d_bench::{run_all_methods, secs, time_explain3d};
use std::collections::BTreeMap;

fn main() {
    // --- Figure 7a/7b: average accuracy over template instantiations. ---
    let views =
        generate_views(&ImdbConfig { num_movies: 300, num_persons: 360, ..Default::default() });
    let mut expl: BTreeMap<String, Vec<Accuracy>> = BTreeMap::new();
    let mut evid: BTreeMap<String, Vec<Accuracy>> = BTreeMap::new();
    let mut times: BTreeMap<String, f64> = BTreeMap::new();

    let templates = [
        ImdbTemplate::CountComedies,
        ImdbTemplate::CountUsMovies,
        ImdbTemplate::TotalGross,
        ImdbTemplate::MaxGross,
        ImdbTemplate::AvgGross,
        ImdbTemplate::AvgRuntime,
        ImdbTemplate::ActorsInShortMovies,
        ImdbTemplate::MoviesByDirectorBirthYear,
        ImdbTemplate::LongestMovie,
        ImdbTemplate::ActressesNotInGenre,
    ];
    let instances_per_template = 2u64;

    for template in templates {
        for instance in 0..instances_per_template {
            let param = views.default_param(template, 7 + instance * 5);
            let case = views.case(template, &param);
            for o in run_all_methods(&case, 50) {
                expl.entry(o.method.clone()).or_default().push(o.explanation);
                evid.entry(o.method.clone()).or_default().push(o.evidence);
                *times.entry(o.method).or_insert(0.0) += o.time.as_secs_f64();
            }
        }
    }

    let mut table = ResultTable::new(
        "Figure 7a/7b: IMDb average accuracy over query templates",
        &["method", "expl P", "expl R", "expl F1", "evid P", "evid R", "evid F1", "total time (s)"],
    );
    for (method, accs) in &expl {
        let e = Accuracy::mean(accs);
        let v = Accuracy::mean(&evid[method]);
        table.add_row(vec![
            method.clone(),
            format!("{:.3}", e.precision),
            format!("{:.3}", e.recall),
            format!("{:.3}", e.f_measure),
            format!("{:.3}", v.precision),
            format!("{:.3}", v.recall),
            format!("{:.3}", v.f_measure),
            format!("{:.3}", times[method]),
        ]);
    }
    println!("{table}");

    // --- Figure 7c: execution time vs. number of provenance tuples. ---
    let mut time_table = ResultTable::new(
        "Figure 7c: Explain3D execution time vs provenance size (TotalGross template)",
        &["movies in corpus", "|T1|+|T2|", "Batch-100 (s)", "Batch-1000 (s)", "NoOpt (s)"],
    );
    for &movies in &[150usize, 300, 600, 1200] {
        let scaled = generate_views(&ImdbConfig::default().with_movies(movies));
        let case = scaled
            .case(ImdbTemplate::TotalGross, &scaled.default_param(ImdbTemplate::TotalGross, 9));
        let size = case.prepared.left_canonical.len() + case.prepared.right_canonical.len();
        let (t100, _) = time_explain3d(&case, Explain3DConfig::batched(100));
        let (t1000, _) = time_explain3d(&case, Explain3DConfig::batched(1000));
        // NoOpt becomes too expensive for large provenance; cap it like the
        // paper notes for RSWOOSH / Exp3D-NoOpt beyond 10K tuples.
        let noopt = if size <= 400 {
            secs(time_explain3d(&case, Explain3DConfig::no_opt()).0)
        } else {
            "-".to_string()
        };
        time_table.add_row(vec![
            movies.to_string(),
            size.to_string(),
            secs(t100),
            secs(t1000),
            noopt,
        ]);
    }
    println!("{time_table}");
}
