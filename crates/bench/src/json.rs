//! Hand-rolled JSON emission (no serde in this build environment).
//!
//! Only what `perf_report` needs: objects, arrays, strings, bools, integers
//! and finite floats, serialised compactly with correct string escaping.
//! Object keys keep insertion order so the emitted reports diff cleanly
//! across runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialise as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a key in an object, builder-style.
    /// Panics when `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(entries) = &mut self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
        self
    }

    /// Serialises with two-space indentation (for human-readable reports).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Compact serialisation (`{"k":1}`); use
/// [`to_pretty_string`](Json::to_pretty_string) for indented output.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_serialise_in_insertion_order() {
        let j = Json::obj()
            .set("b", 2usize)
            .set("a", "x\"y")
            .set("nested", Json::obj().set("flag", true))
            .set("arr", vec![Json::Num(1.5), Json::Null]);
        assert_eq!(j.to_string(), r#"{"b":2,"a":"x\"y","nested":{"flag":true},"arr":[1.5,null]}"#);
    }

    #[test]
    fn set_replaces_existing_keys() {
        let j = Json::obj().set("k", 1usize).set("k", 2usize);
        assert_eq!(j.to_string(), r#"{"k":2}"#);
    }

    #[test]
    fn numbers_render_cleanly() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn pretty_output_is_indented_and_parses_the_same_content() {
        let j = Json::obj().set("a", 1usize).set("b", vec![Json::Bool(false)]);
        let pretty = j.to_pretty_string();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert!(pretty.ends_with("}\n"));
    }
}
