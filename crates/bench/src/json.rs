//! JSON emission for the bench reports — re-exported from the service
//! crate's in-tree [`explain3d::service::json`] module, which owns the
//! single JSON value type of the workspace (emitter *and* parser; this
//! crate only emits). Kept as a module so the bench bins' imports read
//! naturally.

pub use explain3d::service::json::{Json, JsonError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_emit_through_the_shared_type() {
        let j = Json::obj()
            .set("schema_version", 1usize)
            .set("speedup", 7.1)
            .set("outputs_identical", true);
        assert_eq!(j.to_string(), r#"{"schema_version":1,"speedup":7.1,"outputs_identical":true}"#);
        let pretty = j.to_pretty_string();
        assert!(pretty.contains("\"speedup\": 7.1"));
        assert_eq!(Json::parse(&pretty).unwrap(), j);
    }
}
