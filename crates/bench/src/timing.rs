//! Tiny std-only timing harness.
//!
//! The build environment has no crates.io access, so Criterion is not
//! available; these helpers provide the small slice the benches need —
//! warmup, repeated sampling, and median/min statistics over wall-clock
//! durations.

use std::time::{Duration, Instant};

/// Timing statistics over repeated runs of a closure.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Fastest observed run.
    pub min: Duration,
    /// Median observed run.
    pub median: Duration,
    /// Slowest observed run.
    pub max: Duration,
    /// Number of timed runs.
    pub runs: usize,
}

impl Sample {
    /// Median time in (fractional) seconds.
    pub fn median_secs(&self) -> f64 {
        self.median.as_secs_f64()
    }

    /// Minimum time in (fractional) seconds.
    pub fn min_secs(&self) -> f64 {
        self.min.as_secs_f64()
    }
}

/// Runs `f` once untimed (warmup), then `runs` timed iterations, and returns
/// the duration statistics. The closure's result is returned from the *last*
/// timed run so callers can validate outputs without re-computing.
pub fn sample<R>(runs: usize, mut f: impl FnMut() -> R) -> (Sample, R) {
    assert!(runs > 0, "sample requires at least one run");
    let _warmup = f();
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let start = Instant::now();
        let out = f();
        times.push(start.elapsed());
        last = Some(out);
    }
    times.sort_unstable();
    let stats =
        Sample { min: times[0], median: times[times.len() / 2], max: times[times.len() - 1], runs };
    (stats, last.expect("runs > 0"))
}

/// Prints one bench line in a stable, grep-friendly format.
pub fn report(group: &str, name: &str, stats: &Sample) {
    println!(
        "{group}/{name}: median {:?}  min {:?}  max {:?}  ({} runs)",
        stats.median, stats.min, stats.max, stats.runs
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_orders_statistics_and_returns_output() {
        let mut n = 0u64;
        let (stats, out) = sample(5, || {
            n += 1;
            n
        });
        assert_eq!(stats.runs, 5);
        assert!(stats.min <= stats.median && stats.median <= stats.max);
        // Warmup + 5 timed runs; the returned value is from the last run.
        assert_eq!(out, 6);
        assert!(stats.median_secs() >= 0.0);
    }
}
