//! Tokenisation of string attribute values.
//!
//! Token-wise Jaccard similarity (Section 5.1.2 of the paper) operates on
//! word tokens. Tokenisation lower-cases, splits on non-alphanumeric
//! characters, and drops empty tokens.
//!
//! For the candidate-generation hot path, [`TokenInterner`] maps tokens to
//! dense `u32` ids once per *row* instead of rebuilding string sets per
//! *pair*: Jaccard then runs as a linear merge over two sorted id slices
//! with no allocation and no string comparisons
//! (see [`crate::similarity::jaccard_ids`]).

use std::collections::{BTreeSet, HashMap};

/// Splits a string into lower-cased word tokens.
pub fn tokens(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

/// Splits a string into the *set* of lower-cased word tokens.
pub fn token_set(text: &str) -> BTreeSet<String> {
    tokens(text).into_iter().collect()
}

/// Character n-grams of a string (used by fallback similarity for values
/// without word boundaries). Strings shorter than `n` yield a single gram.
pub fn ngrams(text: &str, n: usize) -> Vec<String> {
    let chars: Vec<char> = text.to_ascii_lowercase().chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= n {
        return vec![chars.iter().collect()];
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

/// Interns word tokens as dense `u32` ids.
///
/// Rows are tokenised **once**, up front; every subsequent pairwise
/// similarity works on the interned ids. The id space is per-interner, so
/// two token-id slices are only comparable when produced by the same
/// interner.
#[derive(Debug, Clone, Default)]
pub struct TokenInterner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

impl TokenInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        TokenInterner::default()
    }

    /// Number of distinct tokens interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no token has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns one token (assumed already normalised) and returns its id.
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.ids.insert(token.to_string(), id);
        self.names.push(token.to_string());
        id
    }

    /// The token interned under `id`, if any.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// The id of an already-interned token, without interning it.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.ids.get(token).copied()
    }

    /// Tokenises `text` exactly like [`token_set`] — lower-cased word
    /// tokens, deduplicated — and returns the **sorted** slice of interned
    /// ids. Sorted-and-deduplicated is the representation
    /// [`crate::similarity::jaccard_ids`] expects.
    pub fn token_ids(&mut self, text: &str) -> Vec<u32> {
        let mut out = Vec::new();
        let mut scratch = String::new();
        for raw in text.split(|c: char| !c.is_alphanumeric()) {
            if raw.is_empty() {
                continue;
            }
            scratch.clear();
            scratch.extend(raw.chars().map(|c| c.to_ascii_lowercase()));
            out.push(self.intern(&scratch));
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_split_and_lowercase() {
        assert_eq!(tokens("Computer Science"), vec!["computer", "science"]);
        assert_eq!(tokens("Equine-Management (B.S.)"), vec!["equine", "management", "b", "s"]);
        assert!(tokens("  ").is_empty());
        assert!(tokens("").is_empty());
    }

    #[test]
    fn token_set_deduplicates() {
        let s = token_set("data data Data");
        assert_eq!(s.len(), 1);
        assert!(s.contains("data"));
    }

    #[test]
    fn ngrams_cover_short_strings() {
        assert_eq!(ngrams("cs", 3), vec!["cs".to_string()]);
        assert_eq!(ngrams("abcd", 3), vec!["abc".to_string(), "bcd".to_string()]);
        assert!(ngrams("", 3).is_empty());
    }

    #[test]
    fn interner_assigns_stable_dense_ids() {
        let mut interner = TokenInterner::new();
        let a = interner.intern("computer");
        let b = interner.intern("science");
        assert_ne!(a, b);
        assert_eq!(interner.intern("computer"), a);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(a), Some("computer"));
        assert_eq!(interner.get("science"), Some(b));
        assert_eq!(interner.get("absent"), None);
    }

    #[test]
    fn token_ids_match_token_set_semantics() {
        let mut interner = TokenInterner::new();
        for text in ["Computer Science", "data data Data", "Equine-Management (B.S.)", "", "  "] {
            let ids = interner.token_ids(text);
            // Sorted and deduplicated.
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids not strictly sorted: {ids:?}");
            // Same token *set* as the string-based tokenisation.
            let via_ids: BTreeSet<String> =
                ids.iter().map(|&id| interner.resolve(id).unwrap().to_string()).collect();
            assert_eq!(via_ids, token_set(text), "mismatch for {text:?}");
        }
    }
}
