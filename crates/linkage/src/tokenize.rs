//! Tokenisation of string attribute values.
//!
//! Token-wise Jaccard similarity (Section 5.1.2 of the paper) operates on
//! word tokens. Tokenisation lower-cases, splits on non-alphanumeric
//! characters, and drops empty tokens.

use std::collections::BTreeSet;

/// Splits a string into lower-cased word tokens.
pub fn tokens(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

/// Splits a string into the *set* of lower-cased word tokens.
pub fn token_set(text: &str) -> BTreeSet<String> {
    tokens(text).into_iter().collect()
}

/// Character n-grams of a string (used by fallback similarity for values
/// without word boundaries). Strings shorter than `n` yield a single gram.
pub fn ngrams(text: &str, n: usize) -> Vec<String> {
    let chars: Vec<char> = text.to_ascii_lowercase().chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= n {
        return vec![chars.iter().collect()];
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_split_and_lowercase() {
        assert_eq!(tokens("Computer Science"), vec!["computer", "science"]);
        assert_eq!(tokens("Equine-Management (B.S.)"), vec!["equine", "management", "b", "s"]);
        assert!(tokens("  ").is_empty());
        assert!(tokens("").is_empty());
    }

    #[test]
    fn token_set_deduplicates() {
        let s = token_set("data data Data");
        assert_eq!(s.len(), 1);
        assert!(s.contains("data"));
    }

    #[test]
    fn ngrams_cover_short_strings() {
        assert_eq!(ngrams("cs", 3), vec!["cs".to_string()]);
        assert_eq!(ngrams("abcd", 3), vec!["abc".to_string(), "bcd".to_string()]);
        assert!(ngrams("", 3).is_empty());
    }
}
