//! Similarity-to-probability calibration (Section 5.1.2 of the paper).
//!
//! The paper converts raw similarity scores into match probabilities with a
//! two-step bucketing method: (1) divide candidate matches into `k`
//! contiguous buckets over the similarity range, and (2) set each bucket's
//! probability to the fraction of *true* matches among a labelled sample of
//! the bucket's candidates. True labels come from a labelled subset or from
//! a gold standard.

/// Calibrates similarity scores into probabilities using equal-width buckets.
#[derive(Debug, Clone)]
pub struct BucketCalibrator {
    /// Number of contiguous buckets over `[0, 1]` (the paper uses 50).
    buckets: usize,
    /// Learned probability per bucket.
    probs: Vec<f64>,
    /// Number of labelled samples that landed in each bucket.
    support: Vec<usize>,
}

impl BucketCalibrator {
    /// The default number of buckets used in the paper's experiments.
    pub const DEFAULT_BUCKETS: usize = 50;

    /// Creates an uncalibrated calibrator with `buckets` equal-width buckets.
    /// Before [`fit`](Self::fit) is called, each bucket's probability falls
    /// back to the bucket's mid-point similarity (identity calibration).
    pub fn new(buckets: usize) -> Self {
        let buckets = buckets.max(1);
        let probs = (0..buckets).map(|i| (i as f64 + 0.5) / buckets as f64).collect();
        BucketCalibrator { buckets, probs, support: vec![0; buckets] }
    }

    /// Creates a calibrator with the paper's default of 50 buckets.
    pub fn with_default_buckets() -> Self {
        Self::new(Self::DEFAULT_BUCKETS)
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Index of the bucket a similarity value falls into.
    fn bucket_of(&self, similarity: f64) -> usize {
        let s = similarity.clamp(0.0, 1.0);
        ((s * self.buckets as f64) as usize).min(self.buckets - 1)
    }

    /// Fits bucket probabilities from labelled `(similarity, is_true_match)`
    /// samples. Buckets with no labelled samples keep their previous
    /// (identity) probability; buckets where every sample is negative get a
    /// small floor probability so downstream log-probabilities stay finite.
    pub fn fit(&mut self, labelled: &[(f64, bool)]) {
        let mut positives = vec![0usize; self.buckets];
        let mut totals = vec![0usize; self.buckets];
        for &(sim, label) in labelled {
            let b = self.bucket_of(sim);
            totals[b] += 1;
            if label {
                positives[b] += 1;
            }
        }
        for b in 0..self.buckets {
            self.support[b] = totals[b];
            if totals[b] > 0 {
                // Laplace-style smoothing keeps probabilities in (0, 1) so
                // that log(p) and log(1-p) are both finite.
                let p = (positives[b] as f64 + 0.5) / (totals[b] as f64 + 1.0);
                self.probs[b] = p.clamp(0.01, 0.99);
            }
        }
    }

    /// Converts a similarity value into a calibrated probability.
    pub fn probability(&self, similarity: f64) -> f64 {
        self.probs[self.bucket_of(similarity)]
    }

    /// Number of labelled samples observed in the bucket containing
    /// `similarity` during [`fit`](Self::fit).
    pub fn support_at(&self, similarity: f64) -> usize {
        self.support[self.bucket_of(similarity)]
    }

    /// The learned per-bucket probabilities (low-similarity bucket first).
    pub fn bucket_probabilities(&self) -> &[f64] {
        &self.probs
    }
}

impl Default for BucketCalibrator {
    fn default() -> Self {
        Self::with_default_buckets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_calibration_before_fit() {
        let c = BucketCalibrator::new(10);
        // Mid-point of the bucket containing 0.95 is 0.95.
        assert!((c.probability(0.95) - 0.95).abs() < 1e-12);
        assert!((c.probability(0.0) - 0.05).abs() < 1e-12);
        assert_eq!(c.buckets(), 10);
        // Degenerate bucket counts are clamped to at least one bucket.
        assert_eq!(BucketCalibrator::new(0).buckets(), 1);
    }

    #[test]
    fn fit_learns_bucket_ratios() {
        let mut c = BucketCalibrator::new(10);
        // High-similarity pairs are mostly true matches, low mostly false.
        let mut labelled = Vec::new();
        for _ in 0..90 {
            labelled.push((0.95, true));
        }
        for _ in 0..10 {
            labelled.push((0.95, false));
        }
        for _ in 0..5 {
            labelled.push((0.15, true));
        }
        for _ in 0..95 {
            labelled.push((0.15, false));
        }
        c.fit(&labelled);
        assert!(c.probability(0.97) > 0.85);
        assert!(c.probability(0.12) < 0.1);
        assert_eq!(c.support_at(0.95), 100);
        assert_eq!(c.support_at(0.5), 0);
        // Unlabelled buckets keep the identity fallback.
        assert!((c.probability(0.55) - 0.55).abs() < 1e-12);
    }

    #[test]
    fn probabilities_stay_strictly_inside_unit_interval() {
        let mut c = BucketCalibrator::new(5);
        let labelled: Vec<(f64, bool)> = (0..50).map(|_| (0.9, true)).collect();
        c.fit(&labelled);
        let p = c.probability(0.9);
        assert!(p > 0.0 && p < 1.0);

        let mut c2 = BucketCalibrator::new(5);
        let all_false: Vec<(f64, bool)> = (0..50).map(|_| (0.9, false)).collect();
        c2.fit(&all_false);
        let p2 = c2.probability(0.9);
        assert!(p2 > 0.0 && p2 < 1.0);
        assert!(p2 < 0.1);
    }

    #[test]
    fn out_of_range_similarities_are_clamped() {
        let c = BucketCalibrator::new(10);
        assert_eq!(c.probability(1.5), c.probability(1.0));
        assert_eq!(c.probability(-0.5), c.probability(0.0));
    }
}
