//! Tuple matches and tuple mappings (Definition 2.4 of the paper).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A single probabilistic tuple match `(t_i, t_j, p)`.
///
/// `left` and `right` are indexes into the two (canonical) relations being
/// compared; `prob` is the probability that the two tuples refer to the same
/// or associated (containment) entities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TupleMatch {
    /// Index of the tuple in the left relation (`T1`).
    pub left: usize,
    /// Index of the tuple in the right relation (`T2`).
    pub right: usize,
    /// Match probability in `(0, 1]`.
    pub prob: f64,
}

impl TupleMatch {
    /// Creates a match, clamping the probability into `(0, 1]`.
    pub fn new(left: usize, right: usize, prob: f64) -> Self {
        TupleMatch { left, right, prob: prob.clamp(f64::MIN_POSITIVE, 1.0) }
    }

    /// The pair `(left, right)` identifying the matched tuples.
    pub fn pair(&self) -> (usize, usize) {
        (self.left, self.right)
    }
}

impl fmt::Display for TupleMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(t{} ↔ t'{}, p={:.3})", self.left, self.right, self.prob)
    }
}

/// A tuple mapping `M_tuple`: a set of probabilistic tuple matches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TupleMapping {
    matches: Vec<TupleMatch>,
}

impl TupleMapping {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        TupleMapping::default()
    }

    /// Creates a mapping from a vector of matches.
    pub fn from_matches(matches: Vec<TupleMatch>) -> Self {
        TupleMapping { matches }
    }

    /// Number of matches (the paper's `|M_tuple|`).
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// True when the mapping has no matches.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Adds a match.
    pub fn push(&mut self, m: TupleMatch) {
        self.matches.push(m);
    }

    /// The matches, in insertion order.
    pub fn matches(&self) -> &[TupleMatch] {
        &self.matches
    }

    /// Iterates over the matches.
    pub fn iter(&self) -> impl Iterator<Item = &TupleMatch> {
        self.matches.iter()
    }

    /// The probability of the match between `left` and `right`, if present.
    pub fn prob(&self, left: usize, right: usize) -> Option<f64> {
        self.matches
            .iter()
            .find(|m| m.left == left && m.right == right)
            .map(|m| m.prob)
    }

    /// True when the mapping contains the pair `(left, right)`.
    pub fn contains_pair(&self, left: usize, right: usize) -> bool {
        self.prob(left, right).is_some()
    }

    /// All matches touching the given left tuple.
    pub fn matches_of_left(&self, left: usize) -> Vec<&TupleMatch> {
        self.matches.iter().filter(|m| m.left == left).collect()
    }

    /// All matches touching the given right tuple.
    pub fn matches_of_right(&self, right: usize) -> Vec<&TupleMatch> {
        self.matches.iter().filter(|m| m.right == right).collect()
    }

    /// Left tuple indexes that appear in at least one match.
    pub fn covered_left(&self) -> BTreeSet<usize> {
        self.matches.iter().map(|m| m.left).collect()
    }

    /// Right tuple indexes that appear in at least one match.
    pub fn covered_right(&self) -> BTreeSet<usize> {
        self.matches.iter().map(|m| m.right).collect()
    }

    /// Keeps only matches satisfying `keep`; returns how many were dropped.
    pub fn retain<F: FnMut(&TupleMatch) -> bool>(&mut self, mut keep: F) -> usize {
        let before = self.matches.len();
        self.matches.retain(|m| keep(m));
        before - self.matches.len()
    }

    /// Returns a new mapping containing only matches with `prob >= threshold`.
    pub fn filter_by_threshold(&self, threshold: f64) -> TupleMapping {
        TupleMapping {
            matches: self.matches.iter().copied().filter(|m| m.prob >= threshold).collect(),
        }
    }

    /// Sorts matches by descending probability (ties broken by indexes for
    /// determinism).
    pub fn sorted_by_prob_desc(&self) -> Vec<TupleMatch> {
        let mut ms = self.matches.clone();
        ms.sort_by(|a, b| {
            b.prob
                .partial_cmp(&a.prob)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.left.cmp(&b.left))
                .then(a.right.cmp(&b.right))
        });
        ms
    }

    /// Groups matches by left tuple index.
    pub fn by_left(&self) -> BTreeMap<usize, Vec<TupleMatch>> {
        let mut map: BTreeMap<usize, Vec<TupleMatch>> = BTreeMap::new();
        for m in &self.matches {
            map.entry(m.left).or_default().push(*m);
        }
        map
    }

    /// Groups matches by right tuple index.
    pub fn by_right(&self) -> BTreeMap<usize, Vec<TupleMatch>> {
        let mut map: BTreeMap<usize, Vec<TupleMatch>> = BTreeMap::new();
        for m in &self.matches {
            map.entry(m.right).or_default().push(*m);
        }
        map
    }
}

impl FromIterator<TupleMatch> for TupleMapping {
    fn from_iter<T: IntoIterator<Item = TupleMatch>>(iter: T) -> Self {
        TupleMapping { matches: iter.into_iter().collect() }
    }
}

impl IntoIterator for TupleMapping {
    type Item = TupleMatch;
    type IntoIter = std::vec::IntoIter<TupleMatch>;
    fn into_iter(self) -> Self::IntoIter {
        self.matches.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> TupleMapping {
        TupleMapping::from_matches(vec![
            TupleMatch::new(0, 0, 1.0),
            TupleMatch::new(1, 1, 0.9),
            TupleMatch::new(1, 2, 0.4),
            TupleMatch::new(2, 2, 0.7),
        ])
    }

    #[test]
    fn probability_is_clamped_to_unit_interval() {
        assert_eq!(TupleMatch::new(0, 0, 2.0).prob, 1.0);
        assert!(TupleMatch::new(0, 0, 0.0).prob > 0.0);
        assert_eq!(TupleMatch::new(0, 0, 0.5).prob, 0.5);
    }

    #[test]
    fn lookup_and_grouping() {
        let m = mapping();
        assert_eq!(m.len(), 4);
        assert_eq!(m.prob(1, 1), Some(0.9));
        assert_eq!(m.prob(0, 2), None);
        assert!(m.contains_pair(2, 2));
        assert_eq!(m.matches_of_left(1).len(), 2);
        assert_eq!(m.matches_of_right(2).len(), 2);
        assert_eq!(m.covered_left(), BTreeSet::from([0, 1, 2]));
        assert_eq!(m.covered_right(), BTreeSet::from([0, 1, 2]));
        assert_eq!(m.by_left().get(&1).unwrap().len(), 2);
        assert_eq!(m.by_right().get(&0).unwrap().len(), 1);
    }

    #[test]
    fn threshold_filtering() {
        let m = mapping();
        let hi = m.filter_by_threshold(0.9);
        assert_eq!(hi.len(), 2);
        assert!(hi.contains_pair(0, 0));
        assert!(hi.contains_pair(1, 1));
    }

    #[test]
    fn sorted_by_probability_is_deterministic() {
        let m = mapping();
        let sorted = m.sorted_by_prob_desc();
        let probs: Vec<f64> = sorted.iter().map(|x| x.prob).collect();
        assert_eq!(probs, vec![1.0, 0.9, 0.7, 0.4]);
    }

    #[test]
    fn retain_drops_matches() {
        let mut m = mapping();
        let dropped = m.retain(|x| x.prob >= 0.5);
        assert_eq!(dropped, 1);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn iteration_and_collection() {
        let m = mapping();
        let collected: TupleMapping = m.iter().copied().collect();
        assert_eq!(collected.len(), 4);
        let pairs: Vec<(usize, usize)> = m.into_iter().map(|x| x.pair()).collect();
        assert_eq!(pairs[0], (0, 0));
    }
}
