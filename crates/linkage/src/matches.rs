//! Tuple matches and tuple mappings (Definition 2.4 of the paper).
//!
//! [`TupleMapping`] keeps its matches in insertion order *and* maintains a
//! hash index over `(left, right)` pairs plus per-side adjacency lists, so
//! the lookups the MILP encoder and the scoring loop hammer
//! ([`TupleMapping::prob`], [`TupleMapping::contains_pair`],
//! [`TupleMapping::matches_of_left`], [`TupleMapping::matches_of_right`])
//! run in O(1)/O(degree) instead of scanning the whole mapping.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// A single probabilistic tuple match `(t_i, t_j, p)`.
///
/// `left` and `right` are indexes into the two (canonical) relations being
/// compared; `prob` is the probability that the two tuples refer to the same
/// or associated (containment) entities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TupleMatch {
    /// Index of the tuple in the left relation (`T1`).
    pub left: usize,
    /// Index of the tuple in the right relation (`T2`).
    pub right: usize,
    /// Match probability in `(0, 1]`.
    pub prob: f64,
}

impl TupleMatch {
    /// Creates a match, clamping the probability into `(0, 1]`.
    pub fn new(left: usize, right: usize, prob: f64) -> Self {
        TupleMatch { left, right, prob: prob.clamp(f64::MIN_POSITIVE, 1.0) }
    }

    /// The pair `(left, right)` identifying the matched tuples.
    pub fn pair(&self) -> (usize, usize) {
        (self.left, self.right)
    }

    /// Deterministic "most probable first" ordering: descending probability
    /// via [`f64::total_cmp`], ties broken by `(left, right)`. Shared by
    /// [`TupleMapping::sorted_by_prob_desc`] and the greedy warm-start in
    /// the MILP encoder so the two can never diverge.
    pub fn cmp_by_prob_desc(a: &TupleMatch, b: &TupleMatch) -> std::cmp::Ordering {
        b.prob.total_cmp(&a.prob).then(a.left.cmp(&b.left)).then(a.right.cmp(&b.right))
    }
}

impl fmt::Display for TupleMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(t{} ↔ t'{}, p={:.3})", self.left, self.right, self.prob)
    }
}

/// A tuple mapping `M_tuple`: a set of probabilistic tuple matches.
///
/// # Duplicate pairs
///
/// The mapping does not forbid pushing the same `(left, right)` pair twice.
/// When duplicates exist, [`prob`](TupleMapping::prob) and
/// [`contains_pair`](TupleMapping::contains_pair) report the **first**
/// inserted match for the pair — exactly the semantics of the original
/// linear scan (`iter().find(..)`) — while iteration,
/// [`matches`](TupleMapping::matches), and the adjacency accessors still
/// expose every duplicate in insertion order.
#[derive(Debug, Clone, Default)]
pub struct TupleMapping {
    matches: Vec<TupleMatch>,
    /// `(left, right) → index of the first match with that pair`.
    pair_index: HashMap<(usize, usize), usize>,
    /// `left → match indexes touching it`, in insertion order.
    left_adj: HashMap<usize, Vec<usize>>,
    /// `right → match indexes touching it`, in insertion order.
    right_adj: HashMap<usize, Vec<usize>>,
}

/// Equality is defined by the match sequence alone; the indexes are derived
/// state.
impl PartialEq for TupleMapping {
    fn eq(&self, other: &Self) -> bool {
        self.matches == other.matches
    }
}

impl TupleMapping {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        TupleMapping::default()
    }

    /// Creates a mapping from a vector of matches.
    pub fn from_matches(matches: Vec<TupleMatch>) -> Self {
        let mut out = TupleMapping {
            matches,
            pair_index: HashMap::new(),
            left_adj: HashMap::new(),
            right_adj: HashMap::new(),
        };
        out.reindex();
        out
    }

    /// Rebuilds the derived indexes from the match sequence.
    fn reindex(&mut self) {
        self.pair_index.clear();
        self.left_adj.clear();
        self.right_adj.clear();
        for idx in 0..self.matches.len() {
            self.index_one(idx);
        }
    }

    /// Indexes the match at `idx` (which must be the next unindexed one).
    fn index_one(&mut self, idx: usize) {
        let m = self.matches[idx];
        self.pair_index.entry((m.left, m.right)).or_insert(idx);
        self.left_adj.entry(m.left).or_default().push(idx);
        self.right_adj.entry(m.right).or_default().push(idx);
    }

    /// Number of matches (the paper's `|M_tuple|`).
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// True when the mapping has no matches.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Adds a match.
    pub fn push(&mut self, m: TupleMatch) {
        self.matches.push(m);
        self.index_one(self.matches.len() - 1);
    }

    /// The matches, in insertion order.
    pub fn matches(&self) -> &[TupleMatch] {
        &self.matches
    }

    /// Iterates over the matches.
    pub fn iter(&self) -> impl Iterator<Item = &TupleMatch> {
        self.matches.iter()
    }

    /// The probability of the match between `left` and `right`, if present.
    /// O(1); duplicates resolve to the first inserted match.
    pub fn prob(&self, left: usize, right: usize) -> Option<f64> {
        self.pair_index.get(&(left, right)).map(|&idx| self.matches[idx].prob)
    }

    /// True when the mapping contains the pair `(left, right)`. O(1).
    pub fn contains_pair(&self, left: usize, right: usize) -> bool {
        self.pair_index.contains_key(&(left, right))
    }

    /// All matches touching the given left tuple, in insertion order.
    /// O(degree).
    pub fn matches_of_left(&self, left: usize) -> Vec<&TupleMatch> {
        self.left_adj
            .get(&left)
            .map(|idxs| idxs.iter().map(|&i| &self.matches[i]).collect())
            .unwrap_or_default()
    }

    /// All matches touching the given right tuple, in insertion order.
    /// O(degree).
    pub fn matches_of_right(&self, right: usize) -> Vec<&TupleMatch> {
        self.right_adj
            .get(&right)
            .map(|idxs| idxs.iter().map(|&i| &self.matches[i]).collect())
            .unwrap_or_default()
    }

    /// Left tuple indexes that appear in at least one match.
    pub fn covered_left(&self) -> BTreeSet<usize> {
        self.left_adj.keys().copied().collect()
    }

    /// Right tuple indexes that appear in at least one match.
    pub fn covered_right(&self) -> BTreeSet<usize> {
        self.right_adj.keys().copied().collect()
    }

    /// Keeps only matches satisfying `keep`; returns how many were dropped.
    pub fn retain<F: FnMut(&TupleMatch) -> bool>(&mut self, mut keep: F) -> usize {
        let before = self.matches.len();
        self.matches.retain(|m| keep(m));
        let dropped = before - self.matches.len();
        if dropped > 0 {
            self.reindex();
        }
        dropped
    }

    /// Returns a new mapping containing only matches with `prob >= threshold`.
    pub fn filter_by_threshold(&self, threshold: f64) -> TupleMapping {
        TupleMapping::from_matches(
            self.matches.iter().copied().filter(|m| m.prob >= threshold).collect(),
        )
    }

    /// Sorts matches by descending probability (ties broken by indexes for
    /// determinism; probabilities are ordered with [`f64::total_cmp`], so
    /// the result is deterministic for every input, NaNs included).
    pub fn sorted_by_prob_desc(&self) -> Vec<TupleMatch> {
        let mut ms = self.matches.clone();
        ms.sort_by(TupleMatch::cmp_by_prob_desc);
        ms
    }

    /// Groups matches by left tuple index.
    pub fn by_left(&self) -> BTreeMap<usize, Vec<TupleMatch>> {
        let mut map: BTreeMap<usize, Vec<TupleMatch>> = BTreeMap::new();
        for m in &self.matches {
            map.entry(m.left).or_default().push(*m);
        }
        map
    }

    /// Groups matches by right tuple index.
    pub fn by_right(&self) -> BTreeMap<usize, Vec<TupleMatch>> {
        let mut map: BTreeMap<usize, Vec<TupleMatch>> = BTreeMap::new();
        for m in &self.matches {
            map.entry(m.right).or_default().push(*m);
        }
        map
    }
}

impl FromIterator<TupleMatch> for TupleMapping {
    fn from_iter<T: IntoIterator<Item = TupleMatch>>(iter: T) -> Self {
        TupleMapping::from_matches(iter.into_iter().collect())
    }
}

impl IntoIterator for TupleMapping {
    type Item = TupleMatch;
    type IntoIter = std::vec::IntoIter<TupleMatch>;
    fn into_iter(self) -> Self::IntoIter {
        self.matches.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> TupleMapping {
        TupleMapping::from_matches(vec![
            TupleMatch::new(0, 0, 1.0),
            TupleMatch::new(1, 1, 0.9),
            TupleMatch::new(1, 2, 0.4),
            TupleMatch::new(2, 2, 0.7),
        ])
    }

    /// Reference implementations with the original linear-scan semantics,
    /// used to pin the behaviour of the indexed representation.
    mod reference {
        use super::*;

        pub fn prob(ms: &[TupleMatch], left: usize, right: usize) -> Option<f64> {
            ms.iter().find(|m| m.left == left && m.right == right).map(|m| m.prob)
        }

        pub fn matches_of_left(ms: &[TupleMatch], left: usize) -> Vec<&TupleMatch> {
            ms.iter().filter(|m| m.left == left).collect()
        }

        pub fn matches_of_right(ms: &[TupleMatch], right: usize) -> Vec<&TupleMatch> {
            ms.iter().filter(|m| m.right == right).collect()
        }
    }

    #[test]
    fn probability_is_clamped_to_unit_interval() {
        assert_eq!(TupleMatch::new(0, 0, 2.0).prob, 1.0);
        assert!(TupleMatch::new(0, 0, 0.0).prob > 0.0);
        assert_eq!(TupleMatch::new(0, 0, 0.5).prob, 0.5);
    }

    #[test]
    fn lookup_and_grouping() {
        let m = mapping();
        assert_eq!(m.len(), 4);
        assert_eq!(m.prob(1, 1), Some(0.9));
        assert_eq!(m.prob(0, 2), None);
        assert!(m.contains_pair(2, 2));
        assert_eq!(m.matches_of_left(1).len(), 2);
        assert_eq!(m.matches_of_right(2).len(), 2);
        assert_eq!(m.covered_left(), BTreeSet::from([0, 1, 2]));
        assert_eq!(m.covered_right(), BTreeSet::from([0, 1, 2]));
        assert_eq!(m.by_left().get(&1).unwrap().len(), 2);
        assert_eq!(m.by_right().get(&0).unwrap().len(), 1);
    }

    #[test]
    fn indexed_lookups_agree_with_linear_scan() {
        let m = mapping();
        for left in 0..4 {
            for right in 0..4 {
                assert_eq!(
                    m.prob(left, right),
                    reference::prob(m.matches(), left, right),
                    "prob({left}, {right})"
                );
                assert_eq!(
                    m.contains_pair(left, right),
                    reference::prob(m.matches(), left, right).is_some()
                );
            }
            assert_eq!(m.matches_of_left(left), reference::matches_of_left(m.matches(), left));
            assert_eq!(m.matches_of_right(left), reference::matches_of_right(m.matches(), left));
        }
    }

    #[test]
    fn duplicate_pairs_resolve_to_first_insertion() {
        let mut m = TupleMapping::new();
        m.push(TupleMatch::new(3, 4, 0.8));
        m.push(TupleMatch::new(3, 4, 0.2)); // duplicate pair, lower prob
        assert_eq!(m.len(), 2);
        // The indexed lookup pins the original `.find` semantics: first wins.
        assert_eq!(m.prob(3, 4), Some(0.8));
        assert_eq!(m.prob(3, 4), reference::prob(m.matches(), 3, 4));
        // Adjacency still exposes both duplicates in insertion order.
        let of_left: Vec<f64> = m.matches_of_left(3).iter().map(|x| x.prob).collect();
        assert_eq!(of_left, vec![0.8, 0.2]);
        // Dropping the first duplicate re-resolves to the survivor.
        m.retain(|x| x.prob < 0.5);
        assert_eq!(m.prob(3, 4), Some(0.2));
    }

    #[test]
    fn empty_mapping_behaves_consistently() {
        let mut m = TupleMapping::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.prob(0, 0), None);
        assert!(!m.contains_pair(0, 0));
        assert!(m.matches_of_left(0).is_empty());
        assert!(m.matches_of_right(0).is_empty());
        assert!(m.covered_left().is_empty());
        assert!(m.covered_right().is_empty());
        assert!(m.by_left().is_empty());
        assert!(m.sorted_by_prob_desc().is_empty());
        // Mutating an empty mapping is a no-op, not a panic.
        assert_eq!(m.retain(|_| false), 0);
        assert!(m.filter_by_threshold(0.5).is_empty());
        assert_eq!(m.iter().count(), 0);
        // An empty mapping equals any other empty mapping.
        assert_eq!(m, TupleMapping::from_matches(vec![]));
    }

    #[test]
    fn self_pairs_index_both_sides() {
        // A match whose left and right indexes coincide must appear in both
        // adjacency views without double-counting.
        let m = TupleMapping::from_matches(vec![
            TupleMatch::new(2, 2, 0.6),
            TupleMatch::new(2, 5, 0.3),
            TupleMatch::new(5, 2, 0.4),
        ]);
        assert_eq!(m.prob(2, 2), Some(0.6));
        assert!(m.contains_pair(2, 2));
        // left adjacency of 2: (2,2) and (2,5); right adjacency of 2:
        // (2,2) and (5,2).
        let of_left: Vec<(usize, usize)> = m.matches_of_left(2).iter().map(|x| x.pair()).collect();
        assert_eq!(of_left, vec![(2, 2), (2, 5)]);
        let of_right: Vec<(usize, usize)> =
            m.matches_of_right(2).iter().map(|x| x.pair()).collect();
        assert_eq!(of_right, vec![(2, 2), (5, 2)]);
        assert!(m.covered_left().contains(&2) && m.covered_right().contains(&2));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn triplicate_pairs_keep_first_insertion_through_mutation() {
        // Beyond the pinned two-duplicate case: three matches on the same
        // pair. Lookups must walk the first-insertion chain as duplicates
        // are removed one by one.
        let mut m = TupleMapping::from_matches(vec![
            TupleMatch::new(1, 1, 0.9),
            TupleMatch::new(1, 1, 0.5),
            TupleMatch::new(1, 1, 0.2),
            TupleMatch::new(0, 1, 0.7),
        ]);
        assert_eq!(m.len(), 4);
        assert_eq!(m.prob(1, 1), Some(0.9));
        assert_eq!(m.matches_of_left(1).len(), 3);
        assert_eq!(m.matches_of_right(1).len(), 4);
        // Drop the first duplicate: the second (0.5) becomes canonical.
        m.retain(|x| x.prob != 0.9);
        assert_eq!(m.prob(1, 1), Some(0.5));
        // Drop the middle one: the last (0.2) survives.
        m.retain(|x| x.prob != 0.5);
        assert_eq!(m.prob(1, 1), Some(0.2));
        m.retain(|x| x.prob != 0.2);
        assert_eq!(m.prob(1, 1), None);
        assert!(m.contains_pair(0, 1));
        // Re-inserting after removal re-establishes the pair index.
        m.push(TupleMatch::new(1, 1, 0.8));
        assert_eq!(m.prob(1, 1), Some(0.8));
    }

    #[test]
    fn threshold_filtering() {
        let m = mapping();
        let hi = m.filter_by_threshold(0.9);
        assert_eq!(hi.len(), 2);
        assert!(hi.contains_pair(0, 0));
        assert!(hi.contains_pair(1, 1));
    }

    #[test]
    fn sorted_by_probability_is_deterministic() {
        let m = mapping();
        let sorted = m.sorted_by_prob_desc();
        let probs: Vec<f64> = sorted.iter().map(|x| x.prob).collect();
        assert_eq!(probs, vec![1.0, 0.9, 0.7, 0.4]);
        // Ties are broken by (left, right) regardless of insertion order.
        let tied = TupleMapping::from_matches(vec![
            TupleMatch::new(5, 1, 0.5),
            TupleMatch::new(2, 9, 0.5),
            TupleMatch::new(2, 3, 0.5),
        ]);
        let order: Vec<(usize, usize)> =
            tied.sorted_by_prob_desc().iter().map(|x| x.pair()).collect();
        assert_eq!(order, vec![(2, 3), (2, 9), (5, 1)]);
    }

    #[test]
    fn retain_drops_matches_and_reindexes() {
        let mut m = mapping();
        let dropped = m.retain(|x| x.prob >= 0.5);
        assert_eq!(dropped, 1);
        assert_eq!(m.len(), 3);
        // The index reflects the removal.
        assert!(!m.contains_pair(1, 2));
        assert_eq!(m.prob(1, 2), None);
        assert_eq!(m.matches_of_left(1).len(), 1);
        assert_eq!(m.matches_of_right(2).len(), 1);
    }

    #[test]
    fn iteration_and_collection() {
        let m = mapping();
        let collected: TupleMapping = m.iter().copied().collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected, m);
        let pairs: Vec<(usize, usize)> = m.into_iter().map(|x| x.pair()).collect();
        assert_eq!(pairs[0], (0, 0));
    }
}
