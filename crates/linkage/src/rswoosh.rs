//! R-Swoosh entity resolution (Benjelloun et al., VLDB Journal 2009).
//!
//! R-Swoosh is the state-of-the-art record-linkage baseline the paper
//! compares against (Section 5.1.3). It repeatedly picks a record, compares
//! it against the already-resolved set, and either merges it with a matching
//! record (re-inserting the merged record into the work list) or adds it to
//! the resolved set. The output is a set of merged clusters; matches are
//! deterministic (probability 1.0).
//!
//! Our records carry the values of the matching attributes of tuples drawn
//! from the two datasets being compared. The match predicate is a mean
//! pairwise similarity threshold over those values, and merge keeps the union
//! of source ids and values (a standard "union" merge domination model).

use crate::matches::{TupleMapping, TupleMatch};
use crate::similarity::{jaro, jaro_winkler, value_similarity, StringMetric};
use explain3d_relation::prelude::Value;
use std::collections::BTreeSet;

/// Which side of the comparison a source record came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// The first dataset / canonical relation (`T1`).
    Left,
    /// The second dataset / canonical relation (`T2`).
    Right,
}

/// A record fed into R-Swoosh: one tuple's values on the matching attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct SwooshRecord {
    /// Which relation the record came from.
    pub side: Side,
    /// The tuple's index within its relation.
    pub index: usize,
    /// The tuple's values on the matching attributes.
    pub values: Vec<Value>,
}

impl SwooshRecord {
    /// Creates a record.
    pub fn new(side: Side, index: usize, values: Vec<Value>) -> Self {
        SwooshRecord { side, index, values }
    }
}

/// A merged cluster of records deemed to refer to the same entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// `(side, index)` identifiers of the merged source records.
    pub members: BTreeSet<(Side, usize)>,
    /// Union of all member values (the merge result).
    pub values: Vec<Value>,
}

impl Cluster {
    fn from_record(r: &SwooshRecord) -> Self {
        Cluster { members: BTreeSet::from([(r.side, r.index)]), values: r.values.clone() }
    }

    fn merge(&self, other: &Cluster) -> Cluster {
        let mut members = self.members.clone();
        members.extend(other.members.iter().copied());
        let mut values = self.values.clone();
        for v in &other.values {
            if !values.iter().any(|x| x.loose_eq(v)) {
                values.push(v.clone());
            }
        }
        Cluster { members, values }
    }

    /// Left-relation tuple indexes in this cluster.
    pub fn left_members(&self) -> Vec<usize> {
        self.members.iter().filter(|(s, _)| *s == Side::Left).map(|(_, i)| *i).collect()
    }

    /// Right-relation tuple indexes in this cluster.
    pub fn right_members(&self) -> Vec<usize> {
        self.members.iter().filter(|(s, _)| *s == Side::Right).map(|(_, i)| *i).collect()
    }
}

/// R-Swoosh configuration.
#[derive(Debug, Clone, Copy)]
pub struct RSwooshConfig {
    /// Similarity threshold above which two clusters match. The paper uses
    /// Jaccard with a default threshold of 0.75.
    pub threshold: f64,
    /// String similarity metric.
    pub metric: StringMetric,
}

impl Default for RSwooshConfig {
    fn default() -> Self {
        RSwooshConfig { threshold: 0.75, metric: StringMetric::Jaccard }
    }
}

/// The R-Swoosh entity-resolution algorithm.
#[derive(Debug, Clone, Default)]
pub struct RSwoosh {
    config: RSwooshConfig,
}

impl RSwoosh {
    /// Creates an R-Swoosh instance with the given configuration.
    pub fn new(config: RSwooshConfig) -> Self {
        RSwoosh { config }
    }

    /// Creates an R-Swoosh instance with the paper's defaults
    /// (Jaccard, threshold 0.75).
    pub fn with_threshold(threshold: f64) -> Self {
        RSwoosh { config: RSwooshConfig { threshold, ..Default::default() } }
    }

    /// Match predicate between two clusters: best pairwise value similarity
    /// reaches the threshold.
    fn matches(&self, a: &Cluster, b: &Cluster) -> bool {
        for va in &a.values {
            for vb in &b.values {
                let sim = match (va, vb, self.config.metric) {
                    (Value::Str(x), Value::Str(y), StringMetric::Jaro) => jaro(x, y),
                    (Value::Str(x), Value::Str(y), StringMetric::JaroWinkler) => jaro_winkler(x, y),
                    _ => value_similarity(va, vb),
                };
                if sim >= self.config.threshold {
                    return true;
                }
            }
        }
        false
    }

    /// Runs R-Swoosh over the input records, returning the merged clusters.
    pub fn resolve(&self, records: &[SwooshRecord]) -> Vec<Cluster> {
        // Work list I and resolved set I'.
        let mut work: Vec<Cluster> = records.iter().map(Cluster::from_record).collect();
        let mut resolved: Vec<Cluster> = Vec::new();

        while let Some(current) = work.pop() {
            let mut merged_with: Option<usize> = None;
            for (i, existing) in resolved.iter().enumerate() {
                if self.matches(&current, existing) {
                    merged_with = Some(i);
                    break;
                }
            }
            match merged_with {
                Some(i) => {
                    let existing = resolved.swap_remove(i);
                    work.push(existing.merge(&current));
                }
                None => resolved.push(current),
            }
        }
        resolved
    }

    /// Runs R-Swoosh over two relations' matching-attribute values and
    /// converts the clusters into a deterministic cross-dataset tuple
    /// mapping (all probabilities 1.0), as the paper's RSWOOSH baseline does.
    pub fn cross_mapping(
        &self,
        left_values: &[Vec<Value>],
        right_values: &[Vec<Value>],
    ) -> (Vec<Cluster>, TupleMapping) {
        let mut records = Vec::with_capacity(left_values.len() + right_values.len());
        for (i, vals) in left_values.iter().enumerate() {
            records.push(SwooshRecord::new(Side::Left, i, vals.clone()));
        }
        for (j, vals) in right_values.iter().enumerate() {
            records.push(SwooshRecord::new(Side::Right, j, vals.clone()));
        }
        let clusters = self.resolve(&records);
        let mut mapping = TupleMapping::new();
        for cluster in &clusters {
            for &l in &cluster.left_members() {
                for &r in &cluster.right_members() {
                    mapping.push(TupleMatch::new(l, r, 1.0));
                }
            }
        }
        (clusters, mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Vec<Value> {
        vec![Value::str(s)]
    }

    #[test]
    fn identical_records_merge_into_one_cluster() {
        let rs = RSwoosh::default();
        let records = vec![
            SwooshRecord::new(Side::Left, 0, v("Accounting")),
            SwooshRecord::new(Side::Right, 0, v("Accounting")),
            SwooshRecord::new(Side::Left, 1, v("Design")),
        ];
        let clusters = rs.resolve(&records);
        assert_eq!(clusters.len(), 2);
        let acct = clusters.iter().find(|c| c.members.len() == 2).unwrap();
        assert_eq!(acct.left_members(), vec![0]);
        assert_eq!(acct.right_members(), vec![0]);
    }

    #[test]
    fn merging_is_transitive_through_merged_values() {
        // "computer science" matches "computer science dept" which matches
        // "science dept" only after the first merge unions the values.
        let rs = RSwoosh::with_threshold(0.6);
        let records = vec![
            SwooshRecord::new(Side::Left, 0, v("computer science")),
            SwooshRecord::new(Side::Left, 1, v("computer science dept")),
            SwooshRecord::new(Side::Right, 0, v("computer science dept building")),
        ];
        let clusters = rs.resolve(&records);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].members.len(), 3);
    }

    #[test]
    fn below_threshold_records_stay_separate() {
        let rs = RSwoosh::default();
        let records = vec![
            SwooshRecord::new(Side::Left, 0, v("art history")),
            SwooshRecord::new(Side::Right, 0, v("mechanical engineering")),
        ];
        let clusters = rs.resolve(&records);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn cross_mapping_produces_deterministic_pairs() {
        let rs = RSwoosh::default();
        let left = vec![v("Accounting"), v("Computer Science"), v("Design")];
        let right = vec![v("Accounting"), v("Computer Science and Engineering")];
        let (clusters, mapping) = rs.cross_mapping(&left, &right);
        assert!(!clusters.is_empty());
        // Exact duplicate matches with probability 1.
        assert_eq!(mapping.prob(0, 0), Some(1.0));
        // Design has no counterpart.
        assert!(mapping.matches_of_left(2).is_empty());
        // With the default 0.75 Jaccard threshold, CS vs CSE (2/4 tokens) does not match.
        assert!(!mapping.contains_pair(1, 1));
    }

    #[test]
    fn lower_threshold_recovers_fuzzy_matches() {
        let rs = RSwoosh::with_threshold(0.4);
        let left = vec![v("Computer Science")];
        let right = vec![v("Computer Science and Engineering")];
        let (_, mapping) = rs.cross_mapping(&left, &right);
        assert!(mapping.contains_pair(0, 0));
    }

    #[test]
    fn numeric_values_participate_in_matching() {
        let rs = RSwoosh::with_threshold(0.9);
        let left = vec![vec![Value::Int(1999)]];
        let right = vec![vec![Value::Int(1999)], vec![Value::Int(1950)]];
        let (_, mapping) = rs.cross_mapping(&left, &right);
        assert!(mapping.contains_pair(0, 0));
        assert!(!mapping.contains_pair(0, 1));
    }

    #[test]
    fn jaro_metric_variant_runs() {
        let rs = RSwoosh::new(RSwooshConfig { threshold: 0.9, metric: StringMetric::JaroWinkler });
        let left = vec![v("Management")];
        let right = vec![v("Managemant")]; // typo
        let (_, mapping) = rs.cross_mapping(&left, &right);
        assert!(mapping.contains_pair(0, 0));
    }
}
