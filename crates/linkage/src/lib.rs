//! # explain3d-linkage
//!
//! Record-linkage substrate for the Explain3D reproduction (VLDB 2019).
//!
//! Explain3D consumes an *initial*, probabilistic tuple mapping `M_tuple`
//! between the canonical relations of the two queries being compared
//! (Definition 2.4). The paper acquires this mapping from off-the-shelf
//! record-linkage machinery; this crate implements that machinery:
//!
//! * [`similarity`] — token-wise Jaccard, normalised Euclidean, Jaro and
//!   Jaro-Winkler similarity, combined per-tuple over the matching attributes
//!   (Section 5.1.2);
//! * [`calibrate`] — the similarity-to-probability bucketing method (50
//!   buckets fitted from a labelled sample);
//! * [`generator`] — candidate generation with token blocking and the
//!   end-to-end initial-mapping construction;
//! * [`rswoosh`] — the R-Swoosh entity-resolution algorithm used as the
//!   paper's record-linkage baseline;
//! * [`matches`] — the [`matches::TupleMatch`] / [`matches::TupleMapping`]
//!   types shared with the core framework.

#![warn(missing_docs)]

pub mod cache;
pub mod calibrate;
pub mod generator;
pub mod matches;
pub mod rswoosh;
pub mod similarity;
pub mod tokenize;

pub use cache::{
    candidate_pairs_cached, compared_columns, row_content_hash, row_content_hashes, ContentHasher,
    ScoreCache, ScoreCacheStats,
};
pub use calibrate::BucketCalibrator;
pub use generator::{
    candidate_pairs, candidate_pairs_naive, candidate_pairs_streaming, generate_calibrated_mapping,
    generate_mapping, label_candidates, Candidate, CandidateGenStats, MappingConfig,
    PairChunkStream, PreparedScorer,
};
pub use matches::{TupleMapping, TupleMatch};
pub use rswoosh::{Cluster, RSwoosh, RSwooshConfig, Side, SwooshRecord};
pub use similarity::{
    jaccard, jaccard_ids, jaro, jaro_winkler, numeric_similarity, tuple_similarity,
    value_similarity, StringMetric,
};
pub use tokenize::{ngrams, token_set, tokens, TokenInterner};
