//! Initial tuple-mapping generation.
//!
//! Explain3D treats record-linkage as a black-box component that produces an
//! *initial*, probabilistic tuple mapping `M_tuple` between the two canonical
//! relations (Section 5.1.2). This module implements that component:
//! pairwise similarity computation (with optional token blocking to avoid a
//! quadratic blow-up on large inputs), followed by similarity-to-probability
//! calibration.

use crate::calibrate::BucketCalibrator;
use crate::matches::{TupleMatch, TupleMapping};
use crate::similarity::{tuple_similarity, StringMetric};
use crate::tokenize::token_set;
use explain3d_relation::prelude::{Row, Schema, Value};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Configuration for initial-mapping generation.
#[derive(Debug, Clone)]
pub struct MappingConfig {
    /// Pairs of matching attributes `(left column, right column)` derived
    /// from the attribute matches `M_attr`.
    pub attr_pairs: Vec<(String, String)>,
    /// String similarity metric.
    pub metric: StringMetric,
    /// Candidate pairs with similarity strictly below this value are dropped
    /// from the initial mapping (the paper keeps only plausible candidates).
    pub min_similarity: f64,
    /// Use token blocking on the first matching attribute: only pairs that
    /// share at least one token (or the exact numeric value) are compared.
    pub use_blocking: bool,
}

impl Default for MappingConfig {
    fn default() -> Self {
        MappingConfig {
            attr_pairs: Vec::new(),
            metric: StringMetric::Jaccard,
            min_similarity: 0.05,
            use_blocking: true,
        }
    }
}

impl MappingConfig {
    /// Creates a config over the given matching attribute pairs.
    pub fn new(attr_pairs: Vec<(String, String)>) -> Self {
        MappingConfig { attr_pairs, ..Default::default() }
    }

    /// Disables blocking (compares every pair of tuples).
    pub fn without_blocking(mut self) -> Self {
        self.use_blocking = false;
        self
    }

    /// Sets the minimum similarity for a candidate to be retained.
    pub fn with_min_similarity(mut self, min: f64) -> Self {
        self.min_similarity = min;
        self
    }

    /// Sets the string metric.
    pub fn with_metric(mut self, metric: StringMetric) -> Self {
        self.metric = metric;
        self
    }
}

/// A candidate pair with its raw similarity (before calibration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Left tuple index.
    pub left: usize,
    /// Right tuple index.
    pub right: usize,
    /// Raw similarity in `[0, 1]`.
    pub similarity: f64,
}

/// Computes candidate pairs and their raw similarities.
pub fn candidate_pairs(
    left_schema: &Schema,
    left_rows: &[Row],
    right_schema: &Schema,
    right_rows: &[Row],
    config: &MappingConfig,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    if config.attr_pairs.is_empty() {
        return out;
    }

    let pairs_to_check: Vec<(usize, usize)> = if config.use_blocking {
        blocked_pairs(left_schema, left_rows, right_schema, right_rows, &config.attr_pairs)
    } else {
        let mut all = Vec::with_capacity(left_rows.len() * right_rows.len());
        for i in 0..left_rows.len() {
            for j in 0..right_rows.len() {
                all.push((i, j));
            }
        }
        all
    };

    for (i, j) in pairs_to_check {
        let sim = tuple_similarity(
            left_schema,
            &left_rows[i],
            right_schema,
            &right_rows[j],
            &config.attr_pairs,
            config.metric,
        );
        if sim >= config.min_similarity {
            out.push(Candidate { left: i, right: j, similarity: sim });
        }
    }
    out
}

/// Token blocking: candidate pairs share at least one token (strings) or the
/// exact value (numbers/booleans) on at least one matching attribute.
fn blocked_pairs(
    left_schema: &Schema,
    left_rows: &[Row],
    right_schema: &Schema,
    right_rows: &[Row],
    attr_pairs: &[(String, String)],
) -> Vec<(usize, usize)> {
    let mut pair_set: BTreeSet<(usize, usize)> = BTreeSet::new();

    for (lcol, rcol) in attr_pairs {
        let (Ok(li), Ok(ri)) = (left_schema.index_of(lcol), right_schema.index_of(rcol)) else {
            continue;
        };
        // Inverted index over the right side's blocking keys.
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (j, row) in right_rows.iter().enumerate() {
            for key in blocking_keys(row.get(ri).unwrap_or(&Value::Null)) {
                index.entry(key).or_default().push(j);
            }
        }
        for (i, row) in left_rows.iter().enumerate() {
            let mut seen: HashSet<usize> = HashSet::new();
            for key in blocking_keys(row.get(li).unwrap_or(&Value::Null)) {
                if let Some(js) = index.get(&key) {
                    for &j in js {
                        if seen.insert(j) {
                            pair_set.insert((i, j));
                        }
                    }
                }
            }
        }
    }
    pair_set.into_iter().collect()
}

/// Blocking keys of a value: word tokens for strings, canonical text for
/// numbers and booleans, nothing for NULL.
fn blocking_keys(value: &Value) -> Vec<String> {
    match value {
        Value::Null => Vec::new(),
        Value::Str(s) => token_set(s).into_iter().collect(),
        other => vec![other.to_string()],
    }
}

/// Labels a deterministic sample of candidates against a gold evidence set,
/// producing `(similarity, is_true_match)` pairs for calibrator fitting.
///
/// `sample_every` keeps one candidate out of every `sample_every` (1 = all).
pub fn label_candidates(
    candidates: &[Candidate],
    gold_pairs: &HashSet<(usize, usize)>,
    sample_every: usize,
) -> Vec<(f64, bool)> {
    let step = sample_every.max(1);
    candidates
        .iter()
        .enumerate()
        .filter(|(idx, _)| idx % step == 0)
        .map(|(_, c)| (c.similarity, gold_pairs.contains(&(c.left, c.right))))
        .collect()
}

/// Generates the initial tuple mapping: candidates → calibrated probabilities.
pub fn generate_mapping(
    left_schema: &Schema,
    left_rows: &[Row],
    right_schema: &Schema,
    right_rows: &[Row],
    config: &MappingConfig,
    calibrator: &BucketCalibrator,
) -> TupleMapping {
    let candidates = candidate_pairs(left_schema, left_rows, right_schema, right_rows, config);
    candidates
        .into_iter()
        .map(|c| TupleMatch::new(c.left, c.right, calibrator.probability(c.similarity)))
        .collect()
}

/// Convenience wrapper that also fits the calibrator from a gold standard
/// before producing the mapping — this mirrors the paper's experimental
/// setup, where bucket probabilities are estimated from a labelled sample.
pub fn generate_calibrated_mapping(
    left_schema: &Schema,
    left_rows: &[Row],
    right_schema: &Schema,
    right_rows: &[Row],
    config: &MappingConfig,
    gold_pairs: &HashSet<(usize, usize)>,
    sample_every: usize,
) -> (TupleMapping, BucketCalibrator) {
    let candidates = candidate_pairs(left_schema, left_rows, right_schema, right_rows, config);
    // Use the paper's 50 buckets when there are enough labelled candidates to
    // estimate each bucket; otherwise coarsen so per-bucket ratios are not
    // dominated by sampling noise.
    let buckets = (candidates.len() / 10)
        .clamp(5, BucketCalibrator::DEFAULT_BUCKETS);
    let mut calibrator = BucketCalibrator::new(buckets);
    let labelled = label_candidates(&candidates, gold_pairs, sample_every);
    calibrator.fit(&labelled);
    let mapping = candidates
        .into_iter()
        .map(|c| TupleMatch::new(c.left, c.right, calibrator.probability(c.similarity)))
        .collect();
    (mapping, calibrator)
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_relation::prelude::ValueType;
    use explain3d_relation::row;

    fn left() -> (Schema, Vec<Row>) {
        (
            Schema::from_pairs(&[("program", ValueType::Str)]),
            vec![
                row!["Accounting"],
                row!["Computer Science"],
                row!["Electrical Engineering"],
                row!["Design"],
            ],
        )
    }

    fn right() -> (Schema, Vec<Row>) {
        (
            Schema::from_pairs(&[("major", ValueType::Str)]),
            vec![
                row!["Accounting"],
                row!["Computer Science and Engineering"],
                row!["Electrical Engineering"],
            ],
        )
    }

    fn config() -> MappingConfig {
        MappingConfig::new(vec![("program".to_string(), "major".to_string())])
    }

    #[test]
    fn candidates_respect_min_similarity() {
        let (ls, lr) = left();
        let (rs, rr) = right();
        let cands = candidate_pairs(&ls, &lr, &rs, &rr, &config());
        // "Design" shares no token with any right tuple, so it produces no candidate.
        assert!(cands.iter().all(|c| c.left != 3));
        // Exact matches have similarity 1.
        assert!(cands
            .iter()
            .any(|c| c.left == 0 && c.right == 0 && (c.similarity - 1.0).abs() < 1e-12));
        // Partial overlap: Computer Science vs Computer Science and Engineering.
        assert!(cands.iter().any(|c| c.left == 1 && c.right == 1 && c.similarity > 0.3));
    }

    #[test]
    fn blocking_matches_exhaustive_comparison_above_threshold() {
        let (ls, lr) = left();
        let (rs, rr) = right();
        let blocked = candidate_pairs(&ls, &lr, &rs, &rr, &config());
        let exhaustive = candidate_pairs(&ls, &lr, &rs, &rr, &config().without_blocking());
        // Every exhaustive candidate above the similarity floor that shares a
        // token must also be found by blocking.
        for c in &exhaustive {
            if c.similarity > 0.0 {
                assert!(
                    blocked.iter().any(|b| b.left == c.left && b.right == c.right),
                    "blocking missed pair ({}, {})",
                    c.left,
                    c.right
                );
            }
        }
    }

    #[test]
    fn numeric_blocking_uses_exact_values() {
        let ls = Schema::from_pairs(&[("year", ValueType::Int)]);
        let rs = Schema::from_pairs(&[("year", ValueType::Int)]);
        let lr = vec![row![1999], row![2000]];
        let rr = vec![row![1999], row![2001]];
        let cfg = MappingConfig::new(vec![("year".to_string(), "year".to_string())]);
        let cands = candidate_pairs(&ls, &lr, &rs, &rr, &cfg);
        assert_eq!(cands.len(), 1);
        assert_eq!((cands[0].left, cands[0].right), (0, 0));
    }

    #[test]
    fn empty_attr_pairs_produce_no_candidates() {
        let (ls, lr) = left();
        let (rs, rr) = right();
        let cfg = MappingConfig::new(vec![]);
        assert!(candidate_pairs(&ls, &lr, &rs, &rr, &cfg).is_empty());
    }

    #[test]
    fn calibrated_mapping_boosts_true_matches() {
        let (ls, lr) = left();
        let (rs, rr) = right();
        let gold: HashSet<(usize, usize)> = HashSet::from([(0, 0), (1, 1), (2, 2)]);
        let (mapping, calibrator) =
            generate_calibrated_mapping(&ls, &lr, &rs, &rr, &config(), &gold, 1);
        assert!(!mapping.is_empty());
        // The exact-match bucket should have learned a high probability.
        assert!(calibrator.probability(1.0) > 0.5);
        let p00 = mapping.prob(0, 0).unwrap();
        assert!(p00 > 0.5);
    }

    #[test]
    fn generate_mapping_with_identity_calibration() {
        let (ls, lr) = left();
        let (rs, rr) = right();
        let calib = BucketCalibrator::new(10);
        let mapping = generate_mapping(&ls, &lr, &rs, &rr, &config(), &calib);
        // Probabilities fall back to bucket mid-points of the raw similarity.
        let p = mapping.prob(0, 0).unwrap();
        assert!(p > 0.9);
    }

    #[test]
    fn label_candidates_samples_deterministically() {
        let cands: Vec<Candidate> = (0..10)
            .map(|i| Candidate { left: i, right: i, similarity: 0.5 })
            .collect();
        let gold: HashSet<(usize, usize)> = HashSet::from([(0, 0), (2, 2)]);
        let all = label_candidates(&cands, &gold, 1);
        assert_eq!(all.len(), 10);
        assert_eq!(all.iter().filter(|(_, l)| *l).count(), 2);
        let sampled = label_candidates(&cands, &gold, 3);
        assert_eq!(sampled.len(), 4); // indexes 0, 3, 6, 9
        let zero_step = label_candidates(&cands, &gold, 0);
        assert_eq!(zero_step.len(), 10);
    }
}
