//! Initial tuple-mapping generation.
//!
//! Explain3D treats record-linkage as a black-box component that produces an
//! *initial*, probabilistic tuple mapping `M_tuple` between the two canonical
//! relations (Section 5.1.2). This module implements that component:
//! pairwise similarity computation (with optional token blocking to avoid a
//! quadratic blow-up on large inputs), followed by similarity-to-probability
//! calibration.
//!
//! ## Candidate scoring is zero-copy, parallel, and streaming
//!
//! [`candidate_pairs`] tokenises every row **once** into interned `u32`
//! token ids ([`TokenInterner`]), scores pairs as a linear merge over sorted
//! id slices ([`jaccard_ids`]), and fans the scoring loop out across CPU
//! cores. It produces exactly the candidates — same pairs, same order, same
//! floating-point similarities — as the straightforward per-pair
//! implementation, which is kept as [`candidate_pairs_naive`] for tests and
//! the performance-trajectory benchmark.
//!
//! Pair enumeration is **streaming**: [`PairChunkStream`] yields blocked (or
//! exhaustive) pairs in bounded chunks that feed the parallel scorer
//! directly, so the full pair list — ~460k pairs on a 5000×5000 comparison,
//! quadratic without blocking — is never materialised. Peak resident pairs
//! are bounded by `worker threads × chunk size`
//! ([`MappingConfig::chunk_pairs`]); [`candidate_pairs_streaming`] reports
//! the observed numbers as [`CandidateGenStats`].

use crate::calibrate::BucketCalibrator;
use crate::matches::{TupleMapping, TupleMatch};
use crate::similarity::{jaccard_ids, jaro, jaro_winkler, tuple_similarity, StringMetric};
use crate::tokenize::TokenInterner;
use explain3d_relation::prelude::{Row, Schema, Value};
use std::collections::{HashMap, HashSet};

/// Configuration for initial-mapping generation.
#[derive(Debug, Clone)]
pub struct MappingConfig {
    /// Pairs of matching attributes `(left column, right column)` derived
    /// from the attribute matches `M_attr`.
    pub attr_pairs: Vec<(String, String)>,
    /// String similarity metric.
    pub metric: StringMetric,
    /// Candidate pairs with similarity strictly below this value are dropped
    /// from the initial mapping (the paper keeps only plausible candidates).
    pub min_similarity: f64,
    /// Use token blocking on the matching attributes: only pairs that share
    /// at least one token (or the exact numeric value) are compared.
    pub use_blocking: bool,
    /// Number of pairs per streamed chunk fed to the parallel scorer. Peak
    /// pair residency is bounded by `worker threads × chunk_pairs`; the
    /// retained candidates are byte-identical for every chunk size.
    pub chunk_pairs: usize,
}

/// Default [`MappingConfig::chunk_pairs`]: large enough to amortise the
/// per-chunk dispatch, small enough that even one chunk per core stays far
/// below the materialised-pair-list footprint it replaces.
pub const DEFAULT_CHUNK_PAIRS: usize = 8192;

impl Default for MappingConfig {
    fn default() -> Self {
        MappingConfig {
            attr_pairs: Vec::new(),
            metric: StringMetric::Jaccard,
            min_similarity: 0.05,
            use_blocking: true,
            chunk_pairs: DEFAULT_CHUNK_PAIRS,
        }
    }
}

impl MappingConfig {
    /// Creates a config over the given matching attribute pairs.
    pub fn new(attr_pairs: Vec<(String, String)>) -> Self {
        MappingConfig { attr_pairs, ..Default::default() }
    }

    /// Disables blocking (compares every pair of tuples).
    pub fn without_blocking(mut self) -> Self {
        self.use_blocking = false;
        self
    }

    /// Sets the minimum similarity for a candidate to be retained.
    pub fn with_min_similarity(mut self, min: f64) -> Self {
        self.min_similarity = min;
        self
    }

    /// Sets the string metric.
    pub fn with_metric(mut self, metric: StringMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the streaming chunk size (pairs per chunk; clamped to ≥ 1).
    pub fn with_chunk_pairs(mut self, chunk_pairs: usize) -> Self {
        self.chunk_pairs = chunk_pairs.max(1);
        self
    }
}

/// A candidate pair with its raw similarity (before calibration).
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Left tuple index.
    pub left: usize,
    /// Right tuple index.
    pub right: usize,
    /// Raw similarity in `[0, 1]`.
    pub similarity: f64,
}

// Candidates are totally ordered by `(left, right, similarity)` with
// `f64::total_cmp` on the similarity, so sorting and deduplication are
// deterministic for every input (NaNs included). Equality is defined from
// the same ordering so all four comparison traits agree and `Eq` is sound.
impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.left
            .cmp(&other.left)
            .then(self.right.cmp(&other.right))
            .then(self.similarity.total_cmp(&other.similarity))
    }
}

impl PartialOrd for Candidate {
    // lint:allow(float-total-order): mandatory trait method; it delegates to
    // the total `Ord` above (similarity via `total_cmp`), so no NaN
    // partiality can leak through.
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A row value prepared for repeated comparison: its dispatch class plus
/// whatever pre-computation that class needs (cached float, interned token
/// ids of the textual form, raw string reference).
#[derive(Debug, Clone)]
enum Prepared<'a> {
    /// SQL NULL (also used for out-of-schema columns, like the original
    /// per-pair path).
    Null,
    /// A string: raw slice (for Jaro metrics) plus sorted token ids.
    Str { raw: &'a str, tokens: Vec<u32> },
    /// A boolean: the value, its numeric form, and textual-form token ids.
    Bool { value: bool, num: f64, tokens: Vec<u32> },
    /// An Int/Float: the numeric form and textual-form token ids.
    Num { num: f64, tokens: Vec<u32> },
}

impl Prepared<'_> {
    /// The cached `Value::as_f64` result of the original value.
    fn num(&self) -> Option<f64> {
        match self {
            Prepared::Null | Prepared::Str { .. } => None,
            Prepared::Bool { num, .. } | Prepared::Num { num, .. } => Some(*num),
        }
    }

    /// Token ids of the value's textual form (Display), used for
    /// mixed-type comparisons.
    fn tokens(&self) -> &[u32] {
        match self {
            Prepared::Null => &[],
            Prepared::Str { tokens, .. }
            | Prepared::Bool { tokens, .. }
            | Prepared::Num { tokens, .. } => tokens,
        }
    }
}

/// Prepares one column of rows: resolves the column index once and
/// tokenises/caches every value. An unresolvable column yields all-NULL
/// prepared values, mirroring the per-pair path's `unwrap_or(Value::Null)`.
fn prepare_column<'a>(
    schema: &Schema,
    rows: &'a [Row],
    column: &str,
    interner: &mut TokenInterner,
) -> Vec<Prepared<'a>> {
    let Ok(idx) = schema.index_of(column) else {
        return vec![Prepared::Null; rows.len()];
    };
    rows.iter()
        .map(|row| match row.get(idx) {
            None | Some(Value::Null) => Prepared::Null,
            Some(Value::Str(s)) => Prepared::Str { raw: s.as_str(), tokens: interner.token_ids(s) },
            Some(Value::Bool(b)) => Prepared::Bool {
                value: *b,
                num: if *b { 1.0 } else { 0.0 },
                tokens: interner.token_ids(&Value::Bool(*b).to_string()),
            },
            Some(v) => Prepared::Num {
                num: v.as_f64().expect("Int/Float always has a numeric form"),
                tokens: interner.token_ids(&v.to_string()),
            },
        })
        .collect()
}

/// Similarity of two prepared values — the zero-copy twin of
/// [`crate::similarity::value_similarity`] (same dispatch, same results).
fn prepared_similarity(a: &Prepared<'_>, b: &Prepared<'_>, metric: StringMetric) -> f64 {
    match (a, b) {
        (Prepared::Null, Prepared::Null) => 1.0,
        (Prepared::Null, _) | (_, Prepared::Null) => 0.0,
        (Prepared::Str { raw: ra, tokens: ta }, Prepared::Str { raw: rb, tokens: tb }) => {
            match metric {
                StringMetric::Jaccard => jaccard_ids(ta, tb),
                StringMetric::Jaro => jaro(ra, rb),
                StringMetric::JaroWinkler => jaro_winkler(ra, rb),
            }
        }
        (Prepared::Bool { value: x, .. }, Prepared::Bool { value: y, .. }) => {
            if x == y {
                1.0
            } else {
                0.0
            }
        }
        (x, y) => match (x.num(), y.num()) {
            (Some(fx), Some(fy)) => crate::similarity::numeric_similarity(fx, fy),
            // Mixed string/number: compare textual forms.
            _ => jaccard_ids(x.tokens(), y.tokens()),
        },
    }
}

/// Mean prepared-value similarity across the attribute pairs, accumulated in
/// the same order (and therefore with the same floating-point result) as
/// [`tuple_similarity`].
fn prepared_tuple_similarity(
    left_cols: &[Vec<Prepared<'_>>],
    right_cols: &[Vec<Prepared<'_>>],
    i: usize,
    j: usize,
    metric: StringMetric,
) -> f64 {
    let mut total = 0.0;
    for (lcol, rcol) in left_cols.iter().zip(right_cols.iter()) {
        total += prepared_similarity(&lcol[i], &rcol[j], metric);
    }
    total / left_cols.len() as f64
}

/// The zero-copy scoring kernel bundled for reuse: the prepared (tokenised,
/// interned, numeric-cached) columns of both sides plus the metric.
/// [`PreparedScorer::score`] reproduces **exactly** — same dispatch, same
/// accumulation order, same floating-point result — the similarity the
/// per-pair reference path computes, so every caller (streaming, cached,
/// delta re-scoring) scores through one kernel.
pub struct PreparedScorer<'a> {
    left_cols: Vec<Vec<Prepared<'a>>>,
    right_cols: Vec<Vec<Prepared<'a>>>,
    metric: StringMetric,
}

impl<'a> PreparedScorer<'a> {
    /// Prepares both sides' compared columns once (tokenising through
    /// `interner`).
    pub fn new(
        left_schema: &Schema,
        left_rows: &'a [Row],
        right_schema: &Schema,
        right_rows: &'a [Row],
        config: &MappingConfig,
        interner: &mut TokenInterner,
    ) -> Self {
        let left_cols = config
            .attr_pairs
            .iter()
            .map(|(lcol, _)| prepare_column(left_schema, left_rows, lcol, interner))
            .collect();
        let right_cols = config
            .attr_pairs
            .iter()
            .map(|(_, rcol)| prepare_column(right_schema, right_rows, rcol, interner))
            .collect();
        PreparedScorer { left_cols, right_cols, metric: config.metric }
    }

    /// Similarity of left row `i` vs right row `j`.
    pub fn score(&self, i: usize, j: usize) -> f64 {
        prepared_tuple_similarity(&self.left_cols, &self.right_cols, i, j, self.metric)
    }
}

/// Statistics of one streaming candidate-generation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CandidateGenStats {
    /// Total pairs enumerated and scored.
    pub pairs_scored: usize,
    /// Number of chunks streamed to the scorer.
    pub chunks: usize,
    /// Configured chunk size (pairs per chunk).
    pub chunk_pairs: usize,
    /// Largest number of pairs resident at once, as observed by the
    /// scheduler: the peak summed size of the chunks held by the worker
    /// pool at one instant (each worker holds at most one chunk, so
    /// ≤ worker threads × chunk size). This is the streaming design's peak
    /// allocation, replacing the full pair-list materialisation of the
    /// pre-streaming implementation.
    pub peak_resident_pairs: usize,
}

/// A streaming source of candidate pairs, yielded as bounded chunks.
///
/// Enumerates exactly the pairs [`enumerate_pairs`] would produce — blocked
/// pairs in sorted `(left, right)` order with duplicates removed, or the
/// row-major cross product when blocking is off — but one left row at a
/// time, so the full pair list is never resident. Blocking state (the
/// inverted indexes over the right rows and the left rows' key ids) is
/// built up front; its size is linear in the input rows, not in the pair
/// count.
pub struct PairChunkStream {
    source: PairSource,
    buffer: Vec<(usize, usize)>,
    chunk_pairs: usize,
}

enum PairSource {
    /// Row-major cross product (blocking disabled).
    Exhaustive { left_len: usize, right_len: usize, next_row: usize },
    /// Token blocking: per attribute pair, an inverted index over the right
    /// rows plus each left row's blocking-key ids.
    Blocked {
        /// One inverted index (`key id → right rows`) per resolvable
        /// attribute pair.
        indexes: Vec<HashMap<u32, Vec<usize>>>,
        /// `left_keys[attr][row]`: blocking-key ids of the left row.
        left_keys: Vec<Vec<Vec<u32>>>,
        left_len: usize,
        next_row: usize,
    },
}

impl PairChunkStream {
    /// Builds a stream over the pairs the given configuration selects.
    /// `interner` is only used during construction (key interning).
    pub fn new(
        left_schema: &Schema,
        left_rows: &[Row],
        right_schema: &Schema,
        right_rows: &[Row],
        config: &MappingConfig,
        interner: &mut TokenInterner,
    ) -> Self {
        let source = if config.use_blocking {
            let mut indexes = Vec::new();
            let mut left_keys = Vec::new();
            for (lcol, rcol) in &config.attr_pairs {
                let (Ok(li), Ok(ri)) = (left_schema.index_of(lcol), right_schema.index_of(rcol))
                else {
                    continue;
                };
                let mut index: HashMap<u32, Vec<usize>> = HashMap::new();
                for (j, row) in right_rows.iter().enumerate() {
                    for key in blocking_key_ids(row.get(ri).unwrap_or(&Value::Null), interner) {
                        index.entry(key).or_default().push(j);
                    }
                }
                let keys: Vec<Vec<u32>> = left_rows
                    .iter()
                    .map(|row| blocking_key_ids(row.get(li).unwrap_or(&Value::Null), interner))
                    .collect();
                indexes.push(index);
                left_keys.push(keys);
            }
            PairSource::Blocked { indexes, left_keys, left_len: left_rows.len(), next_row: 0 }
        } else {
            PairSource::Exhaustive {
                left_len: left_rows.len(),
                right_len: right_rows.len(),
                next_row: 0,
            }
        };
        PairChunkStream { source, buffer: Vec::new(), chunk_pairs: config.chunk_pairs.max(1) }
    }

    /// Appends the next left row's pairs to the buffer. Returns false when
    /// the source is exhausted.
    fn refill(&mut self) -> bool {
        match &mut self.source {
            PairSource::Exhaustive { left_len, right_len, next_row } => {
                if *next_row >= *left_len || *right_len == 0 {
                    return false;
                }
                let i = *next_row;
                self.buffer.extend((0..*right_len).map(|j| (i, j)));
                *next_row += 1;
                *next_row < *left_len
            }
            PairSource::Blocked { indexes, left_keys, left_len, next_row } => {
                if *next_row >= *left_len {
                    return false;
                }
                let i = *next_row;
                // Union of this row's matches across all attribute pairs,
                // sorted and deduplicated — per-row this reproduces exactly
                // the globally sorted, deduplicated pair list of
                // `enumerate_pairs` restricted to row `i`.
                let mut js: Vec<usize> = Vec::new();
                for (index, keys) in indexes.iter().zip(left_keys.iter()) {
                    for key in &keys[i] {
                        if let Some(matched) = index.get(key) {
                            js.extend_from_slice(matched);
                        }
                    }
                }
                js.sort_unstable();
                js.dedup();
                self.buffer.extend(js.into_iter().map(|j| (i, j)));
                *next_row += 1;
                *next_row < *left_len
            }
        }
    }
}

impl Iterator for PairChunkStream {
    type Item = Vec<(usize, usize)>;

    fn next(&mut self) -> Option<Vec<(usize, usize)>> {
        while self.buffer.len() < self.chunk_pairs && self.refill() {}
        if self.buffer.is_empty() {
            return None;
        }
        let take = self.chunk_pairs.min(self.buffer.len());
        let rest = self.buffer.split_off(take);
        Some(std::mem::replace(&mut self.buffer, rest))
    }
}

/// Computes candidate pairs and their raw similarities.
///
/// Rows are tokenised once up front; pairs are enumerated as a stream of
/// bounded chunks ([`PairChunkStream`]) scored in parallel across CPU
/// cores, so the output is byte-identical to a sequential scan (and to
/// [`candidate_pairs_naive`]) while the full pair list is never resident.
pub fn candidate_pairs(
    left_schema: &Schema,
    left_rows: &[Row],
    right_schema: &Schema,
    right_rows: &[Row],
    config: &MappingConfig,
) -> Vec<Candidate> {
    candidate_pairs_streaming(left_schema, left_rows, right_schema, right_rows, config).0
}

/// [`candidate_pairs`] plus the streaming statistics of the run (total
/// pairs scored, chunk count, peak resident pairs).
pub fn candidate_pairs_streaming(
    left_schema: &Schema,
    left_rows: &[Row],
    right_schema: &Schema,
    right_rows: &[Row],
    config: &MappingConfig,
) -> (Vec<Candidate>, CandidateGenStats) {
    let chunk_pairs = config.chunk_pairs.max(1);
    if config.attr_pairs.is_empty() {
        return (Vec::new(), CandidateGenStats { chunk_pairs, ..Default::default() });
    }

    let mut interner = TokenInterner::new();
    let scorer = PreparedScorer::new(
        left_schema,
        left_rows,
        right_schema,
        right_rows,
        config,
        &mut interner,
    );

    let stream = PairChunkStream::new(
        left_schema,
        left_rows,
        right_schema,
        right_rows,
        config,
        &mut interner,
    );

    let threads = explain3d_parallel::max_threads().max(1);
    let scorer = &scorer;
    let min_similarity = config.min_similarity;

    // The persistent worker pool tracks the in-flight set itself, so the
    // residency metric comes straight from the scheduler (each worker holds
    // at most one chunk, so the peak is bounded by `threads × chunk size`)
    // instead of being reconstructed caller-side from assumed wave
    // boundaries.
    let (scored, sched) = explain3d_parallel::par_map_iter_stealing(
        stream,
        threads,
        Vec::len,
        |chunk: Vec<(usize, usize)>| {
            let mut out = Vec::new();
            for (i, j) in chunk {
                let sim = scorer.score(i, j);
                if sim >= min_similarity {
                    out.push(Candidate { left: i, right: j, similarity: sim });
                }
            }
            out
        },
    );

    let out: Vec<Candidate> = scored.into_iter().flatten().collect();
    (
        out,
        CandidateGenStats {
            pairs_scored: sched.total_weight,
            chunks: sched.executed,
            chunk_pairs,
            peak_resident_pairs: sched.peak_resident_weight,
        },
    )
}

/// The straightforward candidate generator: every pair is scored with
/// [`tuple_similarity`], re-tokenising both rows per comparison.
///
/// This is the reference implementation [`candidate_pairs`] is tested
/// against, and the baseline the `perf_report` benchmark measures the
/// interned kernel's speedup over. Prefer [`candidate_pairs`] everywhere
/// else.
pub fn candidate_pairs_naive(
    left_schema: &Schema,
    left_rows: &[Row],
    right_schema: &Schema,
    right_rows: &[Row],
    config: &MappingConfig,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    if config.attr_pairs.is_empty() {
        return out;
    }

    let mut interner = TokenInterner::new();
    let pairs_to_check =
        enumerate_pairs(left_schema, left_rows, right_schema, right_rows, config, &mut interner);

    for (i, j) in pairs_to_check {
        let sim = tuple_similarity(
            left_schema,
            &left_rows[i],
            right_schema,
            &right_rows[j],
            &config.attr_pairs,
            config.metric,
        );
        if sim >= config.min_similarity {
            out.push(Candidate { left: i, right: j, similarity: sim });
        }
    }
    out
}

/// The pairs a candidate generator must score: the blocked pair list when
/// blocking is enabled, the full row-major cross product otherwise. This is
/// the *reference* enumeration used by [`candidate_pairs_naive`];
/// [`PairChunkStream`] re-implements the same enumeration as a stream and
/// MUST stay in lock-step with it — any change to blocking semantics has to
/// land in both places (the contract is pinned by
/// `pair_chunk_stream_matches_enumerate_pairs` and the seeded equivalence
/// suites in `tests/perf_equivalence.rs`).
fn enumerate_pairs(
    left_schema: &Schema,
    left_rows: &[Row],
    right_schema: &Schema,
    right_rows: &[Row],
    config: &MappingConfig,
    interner: &mut TokenInterner,
) -> Vec<(usize, usize)> {
    if config.use_blocking {
        blocked_pairs(
            left_schema,
            left_rows,
            right_schema,
            right_rows,
            &config.attr_pairs,
            interner,
        )
    } else {
        let mut all = Vec::with_capacity(left_rows.len() * right_rows.len());
        for i in 0..left_rows.len() {
            for j in 0..right_rows.len() {
                all.push((i, j));
            }
        }
        all
    }
}

/// Token blocking: candidate pairs share at least one token (strings) or the
/// exact value (numbers/booleans) on at least one matching attribute.
/// Keys are interned ids, so the inverted index is `u32 → rows` rather than
/// `String → rows`. The result is sorted by `(left, right)`.
fn blocked_pairs(
    left_schema: &Schema,
    left_rows: &[Row],
    right_schema: &Schema,
    right_rows: &[Row],
    attr_pairs: &[(String, String)],
    interner: &mut TokenInterner,
) -> Vec<(usize, usize)> {
    let mut pairs: Vec<(usize, usize)> = Vec::new();

    for (lcol, rcol) in attr_pairs {
        let (Ok(li), Ok(ri)) = (left_schema.index_of(lcol), right_schema.index_of(rcol)) else {
            continue;
        };
        // Inverted index over the right side's blocking keys.
        let mut index: HashMap<u32, Vec<usize>> = HashMap::new();
        for (j, row) in right_rows.iter().enumerate() {
            for key in blocking_key_ids(row.get(ri).unwrap_or(&Value::Null), interner) {
                index.entry(key).or_default().push(j);
            }
        }
        for (i, row) in left_rows.iter().enumerate() {
            let mut seen: HashSet<usize> = HashSet::new();
            for key in blocking_key_ids(row.get(li).unwrap_or(&Value::Null), interner) {
                if let Some(js) = index.get(&key) {
                    for &j in js {
                        if seen.insert(j) {
                            pairs.push((i, j));
                        }
                    }
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Blocking keys of a value as interned ids: word tokens for strings, the
/// canonical text (one key) for numbers and booleans, nothing for NULL.
fn blocking_key_ids(value: &Value, interner: &mut TokenInterner) -> Vec<u32> {
    match value {
        Value::Null => Vec::new(),
        Value::Str(s) => interner.token_ids(s),
        other => vec![interner.intern(&other.to_string())],
    }
}

/// Labels a deterministic sample of candidates against a gold evidence set,
/// producing `(similarity, is_true_match)` pairs for calibrator fitting.
///
/// `sample_every` keeps one candidate out of every `sample_every` (1 = all).
pub fn label_candidates(
    candidates: &[Candidate],
    gold_pairs: &HashSet<(usize, usize)>,
    sample_every: usize,
) -> Vec<(f64, bool)> {
    let step = sample_every.max(1);
    candidates
        .iter()
        .enumerate()
        .filter(|(idx, _)| idx % step == 0)
        .map(|(_, c)| (c.similarity, gold_pairs.contains(&(c.left, c.right))))
        .collect()
}

/// Generates the initial tuple mapping: candidates → calibrated probabilities.
pub fn generate_mapping(
    left_schema: &Schema,
    left_rows: &[Row],
    right_schema: &Schema,
    right_rows: &[Row],
    config: &MappingConfig,
    calibrator: &BucketCalibrator,
) -> TupleMapping {
    let candidates = candidate_pairs(left_schema, left_rows, right_schema, right_rows, config);
    candidates
        .into_iter()
        .map(|c| TupleMatch::new(c.left, c.right, calibrator.probability(c.similarity)))
        .collect()
}

/// Convenience wrapper that also fits the calibrator from a gold standard
/// before producing the mapping — this mirrors the paper's experimental
/// setup, where bucket probabilities are estimated from a labelled sample.
pub fn generate_calibrated_mapping(
    left_schema: &Schema,
    left_rows: &[Row],
    right_schema: &Schema,
    right_rows: &[Row],
    config: &MappingConfig,
    gold_pairs: &HashSet<(usize, usize)>,
    sample_every: usize,
) -> (TupleMapping, BucketCalibrator) {
    let candidates = candidate_pairs(left_schema, left_rows, right_schema, right_rows, config);
    // Use the paper's 50 buckets when there are enough labelled candidates to
    // estimate each bucket; otherwise coarsen so per-bucket ratios are not
    // dominated by sampling noise.
    let buckets = (candidates.len() / 10).clamp(5, BucketCalibrator::DEFAULT_BUCKETS);
    let mut calibrator = BucketCalibrator::new(buckets);
    let labelled = label_candidates(&candidates, gold_pairs, sample_every);
    calibrator.fit(&labelled);
    let mapping = candidates
        .into_iter()
        .map(|c| TupleMatch::new(c.left, c.right, calibrator.probability(c.similarity)))
        .collect();
    (mapping, calibrator)
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_relation::prelude::ValueType;
    use explain3d_relation::row;

    fn left() -> (Schema, Vec<Row>) {
        (
            Schema::from_pairs(&[("program", ValueType::Str)]),
            vec![
                row!["Accounting"],
                row!["Computer Science"],
                row!["Electrical Engineering"],
                row!["Design"],
            ],
        )
    }

    fn right() -> (Schema, Vec<Row>) {
        (
            Schema::from_pairs(&[("major", ValueType::Str)]),
            vec![
                row!["Accounting"],
                row!["Computer Science and Engineering"],
                row!["Electrical Engineering"],
            ],
        )
    }

    fn config() -> MappingConfig {
        MappingConfig::new(vec![("program".to_string(), "major".to_string())])
    }

    #[test]
    fn candidates_respect_min_similarity() {
        let (ls, lr) = left();
        let (rs, rr) = right();
        let cands = candidate_pairs(&ls, &lr, &rs, &rr, &config());
        // "Design" shares no token with any right tuple, so it produces no candidate.
        assert!(cands.iter().all(|c| c.left != 3));
        // Exact matches have similarity 1.
        assert!(cands
            .iter()
            .any(|c| c.left == 0 && c.right == 0 && (c.similarity - 1.0).abs() < 1e-12));
        // Partial overlap: Computer Science vs Computer Science and Engineering.
        assert!(cands.iter().any(|c| c.left == 1 && c.right == 1 && c.similarity > 0.3));
    }

    #[test]
    fn blocking_matches_exhaustive_comparison_above_threshold() {
        let (ls, lr) = left();
        let (rs, rr) = right();
        let blocked = candidate_pairs(&ls, &lr, &rs, &rr, &config());
        let exhaustive = candidate_pairs(&ls, &lr, &rs, &rr, &config().without_blocking());
        // Every exhaustive candidate above the similarity floor that shares a
        // token must also be found by blocking.
        for c in &exhaustive {
            if c.similarity > 0.0 {
                assert!(
                    blocked.iter().any(|b| b.left == c.left && b.right == c.right),
                    "blocking missed pair ({}, {})",
                    c.left,
                    c.right
                );
            }
        }
    }

    #[test]
    fn interned_kernel_matches_naive_per_pair_scoring() {
        let ls = Schema::from_pairs(&[
            ("name", ValueType::Str),
            ("year", ValueType::Int),
            ("score", ValueType::Float),
        ]);
        let rs = Schema::from_pairs(&[
            ("title", ValueType::Str),
            ("published", ValueType::Int),
            ("rating", ValueType::Float),
        ]);
        let lr = vec![
            row!["Computer Science", 1999, 3.5],
            row!["electrical engineering dept", 2001, 4.0],
            row![Value::Null, 1999, 2.25],
            row!["design", Value::Null, Value::Null],
        ];
        let rr = vec![
            row!["computer science and engineering", 1999, 3.5],
            row!["Design School", 2001, 1.0],
            row![Value::Null, Value::Null, 4.0],
        ];
        let attr_pairs = vec![
            ("name".to_string(), "title".to_string()),
            ("year".to_string(), "published".to_string()),
            ("score".to_string(), "rating".to_string()),
            // Unknown columns contribute NULL-vs-value comparisons.
            ("missing".to_string(), "title".to_string()),
        ];
        for metric in [StringMetric::Jaccard, StringMetric::Jaro, StringMetric::JaroWinkler] {
            for blocking in [true, false] {
                let mut cfg = MappingConfig::new(attr_pairs.clone())
                    .with_metric(metric)
                    .with_min_similarity(0.0);
                cfg.use_blocking = blocking;
                let fast = candidate_pairs(&ls, &lr, &rs, &rr, &cfg);
                let naive = candidate_pairs_naive(&ls, &lr, &rs, &rr, &cfg);
                assert_eq!(fast.len(), naive.len(), "metric {metric:?} blocking {blocking}");
                for (f, n) in fast.iter().zip(naive.iter()) {
                    assert_eq!((f.left, f.right), (n.left, n.right));
                    assert_eq!(
                        f.similarity.to_bits(),
                        n.similarity.to_bits(),
                        "similarity differs for ({}, {}): {} vs {}",
                        f.left,
                        f.right,
                        f.similarity,
                        n.similarity
                    );
                }
            }
        }
    }

    #[test]
    fn numeric_blocking_uses_exact_values() {
        let ls = Schema::from_pairs(&[("year", ValueType::Int)]);
        let rs = Schema::from_pairs(&[("year", ValueType::Int)]);
        let lr = vec![row![1999], row![2000]];
        let rr = vec![row![1999], row![2001]];
        let cfg = MappingConfig::new(vec![("year".to_string(), "year".to_string())]);
        let cands = candidate_pairs(&ls, &lr, &rs, &rr, &cfg);
        assert_eq!(cands.len(), 1);
        assert_eq!((cands[0].left, cands[0].right), (0, 0));
    }

    #[test]
    fn empty_attr_pairs_produce_no_candidates() {
        let (ls, lr) = left();
        let (rs, rr) = right();
        let cfg = MappingConfig::new(vec![]);
        assert!(candidate_pairs(&ls, &lr, &rs, &rr, &cfg).is_empty());
        let (out, stats) = candidate_pairs_streaming(&ls, &lr, &rs, &rr, &cfg);
        assert!(out.is_empty());
        assert_eq!(stats.pairs_scored, 0);
        assert_eq!(stats.chunks, 0);
    }

    #[test]
    fn pair_chunk_stream_matches_enumerate_pairs() {
        let (ls, lr) = left();
        let (rs, rr) = right();
        for blocking in [true, false] {
            for chunk_pairs in [1usize, 2, 3, 7, 1024] {
                let mut cfg = config().with_chunk_pairs(chunk_pairs);
                cfg.use_blocking = blocking;
                let mut interner = TokenInterner::new();
                let expected = enumerate_pairs(&ls, &lr, &rs, &rr, &cfg, &mut interner);
                let mut interner = TokenInterner::new();
                let stream = PairChunkStream::new(&ls, &lr, &rs, &rr, &cfg, &mut interner);
                let mut streamed = Vec::new();
                for chunk in stream {
                    assert!(chunk.len() <= chunk_pairs, "chunk exceeded its bound");
                    streamed.extend(chunk);
                }
                assert_eq!(streamed, expected, "blocking={blocking} chunk={chunk_pairs}");
            }
        }
    }

    #[test]
    fn streaming_stats_bound_peak_residency() {
        let (ls, lr) = left();
        let (rs, rr) = right();
        let cfg = config().without_blocking().with_chunk_pairs(2).with_min_similarity(0.0);
        let (out, stats) = candidate_pairs_streaming(&ls, &lr, &rs, &rr, &cfg);
        assert_eq!(stats.pairs_scored, lr.len() * rr.len());
        assert_eq!(stats.chunk_pairs, 2);
        assert_eq!(stats.chunks, stats.pairs_scored.div_ceil(2));
        let threads = explain3d_parallel::max_threads().max(1);
        assert!(stats.peak_resident_pairs <= threads * stats.chunk_pairs);
        assert!(stats.peak_resident_pairs >= 1);
        // The retained output is unaffected by the chunk size.
        assert_eq!(
            out,
            candidate_pairs(
                &ls,
                &lr,
                &rs,
                &rr,
                &config().without_blocking().with_min_similarity(0.0)
            )
        );
    }

    #[test]
    fn chunk_size_never_changes_the_output() {
        let (ls, lr) = left();
        let (rs, rr) = right();
        let reference = candidate_pairs_naive(&ls, &lr, &rs, &rr, &config());
        for chunk_pairs in [1usize, 3, 5, 4096] {
            let fast = candidate_pairs(&ls, &lr, &rs, &rr, &config().with_chunk_pairs(chunk_pairs));
            assert_eq!(fast.len(), reference.len(), "chunk={chunk_pairs}");
            for (f, n) in fast.iter().zip(reference.iter()) {
                assert_eq!((f.left, f.right), (n.left, n.right));
                assert_eq!(f.similarity.to_bits(), n.similarity.to_bits());
            }
        }
    }

    #[test]
    fn candidate_ordering_is_total_and_deterministic() {
        let mut cands = vec![
            Candidate { left: 1, right: 0, similarity: 0.5 },
            Candidate { left: 0, right: 1, similarity: 0.9 },
            Candidate { left: 0, right: 1, similarity: 0.9 },
            Candidate { left: 0, right: 0, similarity: f64::NAN },
        ];
        cands.sort();
        cands.dedup();
        assert_eq!(cands.len(), 3);
        assert_eq!((cands[0].left, cands[0].right), (0, 0));
        assert_eq!((cands[1].left, cands[1].right), (0, 1));
        assert_eq!((cands[2].left, cands[2].right), (1, 0));
    }

    #[test]
    fn calibrated_mapping_boosts_true_matches() {
        let (ls, lr) = left();
        let (rs, rr) = right();
        let gold: HashSet<(usize, usize)> = HashSet::from([(0, 0), (1, 1), (2, 2)]);
        let (mapping, calibrator) =
            generate_calibrated_mapping(&ls, &lr, &rs, &rr, &config(), &gold, 1);
        assert!(!mapping.is_empty());
        // The exact-match bucket should have learned a high probability.
        assert!(calibrator.probability(1.0) > 0.5);
        let p00 = mapping.prob(0, 0).unwrap();
        assert!(p00 > 0.5);
    }

    #[test]
    fn generate_mapping_with_identity_calibration() {
        let (ls, lr) = left();
        let (rs, rr) = right();
        let calib = BucketCalibrator::new(10);
        let mapping = generate_mapping(&ls, &lr, &rs, &rr, &config(), &calib);
        // Probabilities fall back to bucket mid-points of the raw similarity.
        let p = mapping.prob(0, 0).unwrap();
        assert!(p > 0.9);
    }

    #[test]
    fn label_candidates_samples_deterministically() {
        let cands: Vec<Candidate> =
            (0..10).map(|i| Candidate { left: i, right: i, similarity: 0.5 }).collect();
        let gold: HashSet<(usize, usize)> = HashSet::from([(0, 0), (2, 2)]);
        let all = label_candidates(&cands, &gold, 1);
        assert_eq!(all.len(), 10);
        assert_eq!(all.iter().filter(|(_, l)| *l).count(), 2);
        let sampled = label_candidates(&cands, &gold, 3);
        assert_eq!(sampled.len(), 4); // indexes 0, 3, 6, 9
        let zero_step = label_candidates(&cands, &gold, 0);
        assert_eq!(zero_step.len(), 10);
    }
}
