//! Hash-keyed similarity score cache for incremental re-explanation.
//!
//! Pairwise similarity ([`crate::generator::candidate_pairs`]) is a pure
//! function of the *contents* of the two compared rows (restricted to the
//! matching attribute columns) plus the fixed [`MappingConfig`]. The cache
//! exploits that: each row is reduced to a 64-bit content hash over exactly
//! the compared columns, and scored pairs are memoised under the
//! `(left hash, right hash)` key. Re-scoring a relation after a small delta
//! then only pays for pairs whose *content* was never seen — pairs between
//! untouched tuples (or tuples whose edit was reverted) are answered from
//! the cache with the bit-identical similarity a fresh computation would
//! produce.
//!
//! [`candidate_pairs_cached`] is the drop-in cached twin of
//! [`crate::generator::candidate_pairs_streaming`]: same enumeration
//! (streaming through [`crate::generator::PairChunkStream`]), same chunked
//! parallel scoring, byte-identical output for every cache state — the
//! cache can only change *where* a similarity comes from, never its value.
//! Workers read a frozen snapshot of the map; freshly computed scores are
//! folded back in after the parallel phase, so the result is independent of
//! scheduling.
//!
//! Keys are 64-bit FNV-1a content hashes; two *different* contents
//! colliding on both the left and the right hash of the same pair would
//! return a stale score. With the ~10⁴-row relations this system targets,
//! that probability is ≈ 2⁻⁴⁴ per re-explanation — and the equivalence
//! property suite would surface it as a byte-identity failure.

use crate::generator::{Candidate, CandidateGenStats, MappingConfig, PairChunkStream};
use crate::tokenize::TokenInterner;
use explain3d_relation::prelude::{Row, Schema, Value};
use std::collections::HashMap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64-bit hasher over a canonical byte encoding.
#[derive(Debug, Clone, Copy)]
pub struct ContentHasher(u64);

impl ContentHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        ContentHasher(FNV_OFFSET)
    }

    /// Folds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` (little-endian) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a [`Value`] into the hash with a type-discriminated encoding:
    /// values of different variants never share an encoding, and `Int` is
    /// hashed by its exact `i64` (not its possibly-lossy `f64` image), so
    /// contents that could behave differently anywhere in the scoring
    /// pipeline always hash differently.
    pub fn write_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.write(&[0]),
            Value::Bool(b) => self.write(&[1, u8::from(*b)]),
            Value::Int(i) => {
                self.write(&[2]);
                self.write(&i.to_le_bytes());
            }
            Value::Float(f) => {
                self.write(&[3]);
                self.write(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                self.write(&[4]);
                self.write_u64(s.len() as u64);
                self.write(s.as_bytes());
            }
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for ContentHasher {
    fn default() -> Self {
        ContentHasher::new()
    }
}

/// Content hash of one row restricted to the given columns (in order).
/// Unresolvable columns hash as NULL, mirroring the scorer's
/// `unwrap_or(Value::Null)` dispatch.
pub fn row_content_hash(schema: &Schema, row: &Row, columns: &[&str]) -> u64 {
    let mut h = ContentHasher::new();
    for col in columns {
        match schema.index_of(col) {
            Ok(idx) => h.write_value(row.get(idx).unwrap_or(&Value::Null)),
            Err(_) => h.write_value(&Value::Null),
        }
    }
    h.finish()
}

/// Content hashes of every row over the given columns.
pub fn row_content_hashes(schema: &Schema, rows: &[Row], columns: &[&str]) -> Vec<u64> {
    rows.iter().map(|r| row_content_hash(schema, r, columns)).collect()
}

/// The columns of one side of [`MappingConfig::attr_pairs`] (`left = true`
/// selects the left column of each pair) — the columns a row's content hash
/// must cover.
pub fn compared_columns(config: &MappingConfig, left: bool) -> Vec<&str> {
    config.attr_pairs.iter().map(|(l, r)| if left { l.as_str() } else { r.as_str() }).collect()
}

/// Hit/miss counters of one cached scoring run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScoreCacheStats {
    /// Pairs answered from the cache.
    pub hits: usize,
    /// Pairs that had to be scored (and were then inserted).
    pub misses: usize,
}

/// Default [`ScoreCache`] segment capacity (entries). Two segments may be
/// resident, so peak memoisation is about twice this.
pub const DEFAULT_SCORE_CACHE_CAP: usize = 1 << 20;

/// A memo of pair similarities keyed by `(left content hash, right content
/// hash)`, with values stored as exact `f64` bit patterns.
///
/// Memory is **bounded** by segment rotation: inserts land in a `fresh`
/// segment; when it reaches the soft cap, it becomes the `stale` segment
/// (dropping the previous stale one) and a new fresh segment starts.
/// Lookups consult both, so recently-used scores survive one rotation; an
/// evicted score is simply recomputed on its next miss — eviction can cost
/// time, never correctness. A long-lived session over churning relations
/// therefore holds at most ~2 × cap entries instead of every pair content
/// it ever scored.
#[derive(Debug, Clone)]
pub struct ScoreCache {
    fresh: HashMap<(u64, u64), u64>,
    stale: HashMap<(u64, u64), u64>,
    soft_cap: usize,
    hits: usize,
    misses: usize,
}

impl Default for ScoreCache {
    fn default() -> Self {
        ScoreCache::with_soft_cap(DEFAULT_SCORE_CACHE_CAP)
    }
}

impl ScoreCache {
    /// An empty cache with the default segment capacity.
    pub fn new() -> Self {
        ScoreCache::default()
    }

    /// An empty cache whose segments rotate at `soft_cap` entries.
    pub fn with_soft_cap(soft_cap: usize) -> Self {
        ScoreCache {
            fresh: HashMap::new(),
            stale: HashMap::new(),
            soft_cap: soft_cap.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of memoised pair scores (counting a score present in both
    /// segments once per segment).
    pub fn len(&self) -> usize {
        self.fresh.len() + self.stale.len()
    }

    /// True when nothing is memoised yet.
    pub fn is_empty(&self) -> bool {
        self.fresh.is_empty() && self.stale.is_empty()
    }

    /// Cumulative hits over the cache's lifetime.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cumulative misses over the cache's lifetime.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Estimated resident bytes of the memoised scores: entries × the size
    /// of one `((u64, u64), u64)` key/value record. An *estimate* — hash-map
    /// bucket overhead is not charged — but one that moves with the actual
    /// residency: it grows with every insert and drops when a rotation
    /// frees the old stale segment, which is what a caller enforcing a
    /// memory budget (the service registry's LRU eviction) needs.
    pub fn memory_footprint(&self) -> usize {
        const ENTRY_BYTES: usize = std::mem::size_of::<((u64, u64), u64)>();
        self.len() * ENTRY_BYTES
    }

    /// Looks up a memoised similarity (no counter updates).
    pub fn peek(&self, left_hash: u64, right_hash: u64) -> Option<f64> {
        self.peek_bits((left_hash, right_hash)).map(f64::from_bits)
    }

    /// Raw bit-pattern lookup across both segments.
    fn peek_bits(&self, key: (u64, u64)) -> Option<u64> {
        self.fresh.get(&key).or_else(|| self.stale.get(&key)).copied()
    }

    /// Memoises a similarity (rotating the segments at the soft cap).
    pub fn insert(&mut self, left_hash: u64, right_hash: u64, similarity: f64) {
        self.fresh.insert((left_hash, right_hash), similarity.to_bits());
        self.maybe_rotate();
    }

    /// Rotates fresh → stale once the fresh segment reaches the soft cap.
    fn maybe_rotate(&mut self) {
        if self.fresh.len() >= self.soft_cap {
            self.stale = std::mem::take(&mut self.fresh);
        }
    }
}

/// [`crate::generator::candidate_pairs_streaming`] with score memoisation:
/// enumerates the same pairs through the same [`PairChunkStream`], but each
/// pair first consults `cache` under its content-hash key and only scores on
/// a miss (fresh scores are folded back into the cache). The retained
/// candidates are **byte-identical** to the uncached path for every cache
/// state — pinned by `cached_candidates_match_uncached` and the incremental
/// equivalence suite.
pub fn candidate_pairs_cached(
    left_schema: &Schema,
    left_rows: &[Row],
    right_schema: &Schema,
    right_rows: &[Row],
    config: &MappingConfig,
    cache: &mut ScoreCache,
) -> (Vec<Candidate>, CandidateGenStats, ScoreCacheStats) {
    let chunk_pairs = config.chunk_pairs.max(1);
    if config.attr_pairs.is_empty() {
        return (
            Vec::new(),
            CandidateGenStats { chunk_pairs, ..Default::default() },
            ScoreCacheStats::default(),
        );
    }

    let left_hashes = row_content_hashes(left_schema, left_rows, &compared_columns(config, true));
    let right_hashes =
        row_content_hashes(right_schema, right_rows, &compared_columns(config, false));

    let mut interner = TokenInterner::new();
    let scorer = crate::generator::PreparedScorer::new(
        left_schema,
        left_rows,
        right_schema,
        right_rows,
        config,
        &mut interner,
    );
    let stream = PairChunkStream::new(
        left_schema,
        left_rows,
        right_schema,
        right_rows,
        config,
        &mut interner,
    );

    let threads = explain3d_parallel::max_threads().max(1);
    let scorer = &scorer;
    let min_similarity = config.min_similarity;
    let snapshot: &ScoreCache = cache;
    let left_hashes = &left_hashes;
    let right_hashes = &right_hashes;

    // Workers read the frozen cache snapshot and report fresh scores back;
    // the scored values are independent of the cache state, so the output
    // is byte-identical to the uncached path regardless of scheduling.
    type ChunkOut = (Vec<Candidate>, Vec<((u64, u64), u64)>, usize);
    let (scored, sched) = explain3d_parallel::par_map_iter_stealing(
        stream,
        threads,
        Vec::len,
        move |chunk: Vec<(usize, usize)>| -> ChunkOut {
            let mut out = Vec::new();
            let mut fresh: Vec<((u64, u64), u64)> = Vec::new();
            let mut hits = 0usize;
            for (i, j) in chunk {
                let key = (left_hashes[i], right_hashes[j]);
                let sim = match snapshot.peek_bits(key) {
                    Some(bits) => {
                        hits += 1;
                        f64::from_bits(bits)
                    }
                    None => {
                        let sim = scorer.score(i, j);
                        fresh.push((key, sim.to_bits()));
                        sim
                    }
                };
                if sim >= min_similarity {
                    out.push(Candidate { left: i, right: j, similarity: sim });
                }
            }
            (out, fresh, hits)
        },
    );

    let mut out: Vec<Candidate> = Vec::new();
    let mut stats = ScoreCacheStats::default();
    let mut fresh_total: Vec<((u64, u64), u64)> = Vec::new();
    for (candidates, fresh, hits) in scored {
        out.extend(candidates);
        stats.hits += hits;
        stats.misses += fresh.len();
        fresh_total.extend(fresh);
    }
    for (key, bits) in fresh_total {
        cache.fresh.insert(key, bits);
    }
    cache.maybe_rotate();
    cache.hits += stats.hits;
    cache.misses += stats.misses;

    (
        out,
        CandidateGenStats {
            pairs_scored: sched.total_weight,
            chunks: sched.executed,
            chunk_pairs,
            peak_resident_pairs: sched.peak_resident_weight,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::candidate_pairs;
    use explain3d_relation::prelude::ValueType;
    use explain3d_relation::row;

    fn workload() -> (Schema, Vec<Row>, Schema, Vec<Row>) {
        let ls = Schema::from_pairs(&[("name", ValueType::Str), ("year", ValueType::Int)]);
        let rs = Schema::from_pairs(&[("title", ValueType::Str), ("published", ValueType::Int)]);
        let lr = vec![
            row!["computer science", 1999],
            row!["electrical engineering", 2001],
            row!["computer science", 1999], // duplicate content of row 0
            row![Value::Null, 1999],
        ];
        let rr = vec![
            row!["computer science and engineering", 1999],
            row!["electrical engineering", 2001],
            row!["design", Value::Null],
        ];
        (ls, lr, rs, rr)
    }

    fn config() -> MappingConfig {
        MappingConfig::new(vec![
            ("name".to_string(), "title".to_string()),
            ("year".to_string(), "published".to_string()),
        ])
        .with_min_similarity(0.0)
    }

    fn assert_identical(a: &[Candidate], b: &[Candidate]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!((x.left, x.right), (y.left, y.right));
            assert_eq!(x.similarity.to_bits(), y.similarity.to_bits());
        }
    }

    #[test]
    fn cached_candidates_match_uncached() {
        let (ls, lr, rs, rr) = workload();
        let reference = candidate_pairs(&ls, &lr, &rs, &rr, &config());
        let mut cache = ScoreCache::new();
        // Cold cache: everything misses, output identical.
        let (first, _, s1) = candidate_pairs_cached(&ls, &lr, &rs, &rr, &config(), &mut cache);
        assert_identical(&first, &reference);
        assert!(s1.misses > 0);
        // Warm cache: everything hits, output still identical.
        let (second, _, s2) = candidate_pairs_cached(&ls, &lr, &rs, &rr, &config(), &mut cache);
        assert_identical(&second, &reference);
        assert_eq!(s2.misses, 0, "warm re-run must be all hits");
        assert_eq!(s2.hits, s1.hits + s1.misses);
        // Lifetime counters are cumulative (monotone).
        assert_eq!(cache.hits(), s1.hits + s2.hits);
        assert_eq!(cache.misses(), s1.misses);
    }

    #[test]
    fn duplicate_content_shares_cache_entries() {
        let (ls, lr, rs, rr) = workload();
        let cfg = config();
        let cols = compared_columns(&cfg, true);
        let hashes = row_content_hashes(&ls, &lr, &cols);
        assert_eq!(hashes[0], hashes[2], "identical contents must hash identically");
        assert_ne!(hashes[0], hashes[1]);
        let mut cache = ScoreCache::new();
        let (_, gen_stats, s) = candidate_pairs_cached(&ls, &lr, &rs, &rr, &config(), &mut cache);
        // Rows 0 and 2 are content-identical, so their pair scores share
        // cache keys: strictly fewer distinct entries than scored pairs.
        assert!(cache.len() < gen_stats.pairs_scored);
        assert_eq!(s.hits + s.misses, gen_stats.pairs_scored);
    }

    #[test]
    fn content_hash_distinguishes_types_and_nulls() {
        let mut a = ContentHasher::new();
        a.write_value(&Value::Int(2));
        let mut b = ContentHasher::new();
        b.write_value(&Value::Float(2.0));
        assert_ne!(a.finish(), b.finish(), "Int and Float must not collide structurally");
        let mut c = ContentHasher::new();
        c.write_value(&Value::Null);
        let mut d = ContentHasher::new();
        d.write_value(&Value::str(""));
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn segment_rotation_bounds_memory_without_breaking_correctness() {
        let (ls, lr, rs, rr) = workload();
        let reference = candidate_pairs(&ls, &lr, &rs, &rr, &config());
        // A cap far below the pair count forces rotations mid-run.
        let mut cache = ScoreCache::with_soft_cap(3);
        for _ in 0..3 {
            let (out, gen_stats, _) =
                candidate_pairs_cached(&ls, &lr, &rs, &rr, &config(), &mut cache);
            assert_identical(&out, &reference);
            // A bulk run inserts at most its distinct pair contents before
            // the rotation check, so the cache never holds more than two
            // run-sized segments.
            assert!(
                cache.len() <= 2 * gen_stats.pairs_scored,
                "cache grew past its segments: {}",
                cache.len()
            );
        }
        // Evicted entries recompute (misses after the first run are
        // allowed), but hits still accumulate for surviving entries.
        assert!(cache.hits() + cache.misses() >= reference.len());
    }

    #[test]
    fn stale_entries_for_changed_content_are_not_consulted() {
        let (ls, mut lr, rs, rr) = workload();
        let mut cache = ScoreCache::new();
        let _ = candidate_pairs_cached(&ls, &lr, &rs, &rr, &config(), &mut cache);
        // Change one row's content: its pairs must miss (new hash), and the
        // output must equal a fresh uncached run on the new data.
        lr[1] = row!["design", 2001];
        let (cached, _, stats) = candidate_pairs_cached(&ls, &lr, &rs, &rr, &config(), &mut cache);
        let reference = candidate_pairs(&ls, &lr, &rs, &rr, &config());
        assert_identical(&cached, &reference);
        assert!(stats.misses > 0, "changed content must be re-scored");
        assert!(stats.hits > 0, "unchanged content must hit");
    }
}
