//! Similarity measures between attribute values and between tuples.
//!
//! The paper (Section 5.1.2) combines token-wise Jaccard similarity for
//! string attributes with normalised Euclidean distance for numeric
//! attributes, averaging across the matching attributes. Jaro and
//! Jaro-Winkler are also provided because the paper's RSWOOSH baseline
//! experimented with Jaro.

use crate::tokenize::token_set;
use explain3d_relation::prelude::{Row, Schema, Value};

/// Token-wise Jaccard similarity between two strings, in `[0, 1]`.
pub fn jaccard(a: &str, b: &str) -> f64 {
    let sa = token_set(a);
    let sb = token_set(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Jaccard similarity over two **sorted, deduplicated** token-id slices (as
/// produced by [`crate::tokenize::TokenInterner::token_ids`]), in `[0, 1]`.
///
/// This is the zero-copy twin of [`jaccard`]: intersection and union are
/// counted by a single linear merge, with no allocation and no string
/// comparisons. For ids produced by one interner it returns bit-identical
/// results to [`jaccard`] on the original strings (the intersection and
/// union cardinalities — and therefore the final division — are the same).
pub fn jaccard_ids(a: &[u32], b: &[u32]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "left ids not sorted/deduped");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "right ids not sorted/deduped");
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Normalised Euclidean similarity between two numbers:
/// `1 / (1 + |a - b|^2)`, as used in the paper.
pub fn numeric_similarity(a: f64, b: f64) -> f64 {
    1.0 / (1.0 + (a - b).powi(2))
}

/// Upper length bound (in characters) for the stack-only Jaro fast path:
/// match flags for both sides fit into `u128` bitmasks.
const JARO_STACK_LEN: usize = 128;

/// Jaro similarity between two strings, in `[0, 1]`.
///
/// ASCII inputs up to 128 characters — the overwhelmingly common case for
/// attribute values — are scored **allocation-free**: comparisons run
/// directly over the byte slices (case-folded on the fly) and the match
/// flags of both sides live in `u128` bitmasks on the stack. Longer or
/// non-ASCII inputs fall back to the equivalent buffered implementation.
pub fn jaro(a: &str, b: &str) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a.is_ascii() && b.is_ascii() && a.len() <= JARO_STACK_LEN && b.len() <= JARO_STACK_LEN {
        jaro_ascii(a.as_bytes(), b.as_bytes())
    } else {
        jaro_buffered(a, b)
    }
}

/// Allocation-free Jaro over ASCII byte slices (`len <= 128` each).
fn jaro_ascii(a: &[u8], b: &[u8]) -> f64 {
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut a_matched: u128 = 0;
    let mut b_matched: u128 = 0;
    let mut m = 0usize;

    for (i, &ca) in a.iter().enumerate() {
        let ca = ca.to_ascii_lowercase();
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for (j, &cb) in b.iter().enumerate().take(hi).skip(lo) {
            if b_matched & (1 << j) == 0 && cb.to_ascii_lowercase() == ca {
                a_matched |= 1 << i;
                b_matched |= 1 << j;
                m += 1;
                break;
            }
        }
    }
    if m == 0 {
        return 0.0;
    }

    // Walk the matched characters of both sides in order; every position
    // where they disagree is half a transposition.
    let mut half_transpositions = 0usize;
    let mut j = 0usize;
    for (i, &ca) in a.iter().enumerate() {
        if a_matched & (1 << i) == 0 {
            continue;
        }
        while b_matched & (1 << j) == 0 {
            j += 1;
        }
        if !ca.eq_ignore_ascii_case(&b[j]) {
            half_transpositions += 1;
        }
        j += 1;
    }

    let m = m as f64;
    let transpositions = half_transpositions as f64 / 2.0;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions) / m) / 3.0
}

/// Buffered Jaro fallback for long or non-ASCII inputs.
fn jaro_buffered(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().map(|c| c.to_ascii_lowercase()).collect();
    let b: Vec<char> = b.chars().map(|c| c.to_ascii_lowercase()).collect();
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut a_matched = vec![false; a.len()];
    let mut b_matched = vec![false; b.len()];
    let mut m = 0usize;

    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                a_matched[i] = true;
                b_matched[j] = true;
                m += 1;
                break;
            }
        }
    }
    if m == 0 {
        return 0.0;
    }

    let mut half_transpositions = 0usize;
    let mut j = 0usize;
    for (i, &ca) in a.iter().enumerate() {
        if !a_matched[i] {
            continue;
        }
        while !b_matched[j] {
            j += 1;
        }
        if ca != b[j] {
            half_transpositions += 1;
        }
        j += 1;
    }

    let m = m as f64;
    let transpositions = half_transpositions as f64 / 2.0;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions) / m) / 3.0
}

/// Jaro-Winkler similarity (Jaro boosted by shared prefix up to 4 chars).
/// The prefix scan compares characters case-insensitively in place, without
/// building lower-cased copies.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix =
        a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x.eq_ignore_ascii_case(y)).count()
            as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Similarity between two [`Value`]s: Jaccard for strings, normalised
/// Euclidean for numbers, exact match for booleans, 0 for NULL-vs-non-NULL.
pub fn value_similarity(a: &Value, b: &Value) -> f64 {
    match (a, b) {
        (Value::Null, Value::Null) => 1.0,
        (Value::Null, _) | (_, Value::Null) => 0.0,
        (Value::Str(x), Value::Str(y)) => jaccard(x, y),
        (Value::Bool(x), Value::Bool(y)) => {
            if x == y {
                1.0
            } else {
                0.0
            }
        }
        (x, y) => match (x.as_f64(), y.as_f64()) {
            (Some(fx), Some(fy)) => numeric_similarity(fx, fy),
            // Mixed string/number: compare textual forms.
            _ => jaccard(&x.to_string(), &y.to_string()),
        },
    }
}

/// Which string metric to use for tuple-level similarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StringMetric {
    /// Token-wise Jaccard (the paper's default).
    #[default]
    Jaccard,
    /// Jaro similarity.
    Jaro,
    /// Jaro-Winkler similarity.
    JaroWinkler,
}

/// Computes the similarity of two tuples over pairs of matching attributes:
/// the mean of per-attribute similarities, per Section 5.1.2.
///
/// `attr_pairs` maps a column of `left_schema` to a column of `right_schema`.
/// Unknown columns contribute similarity 0 (they cannot support a match).
pub fn tuple_similarity(
    left_schema: &Schema,
    left: &Row,
    right_schema: &Schema,
    right: &Row,
    attr_pairs: &[(String, String)],
    metric: StringMetric,
) -> f64 {
    if attr_pairs.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (lcol, rcol) in attr_pairs {
        let lv = left_schema
            .index_of(lcol)
            .ok()
            .and_then(|i| left.get(i).cloned())
            .unwrap_or(Value::Null);
        let rv = right_schema
            .index_of(rcol)
            .ok()
            .and_then(|i| right.get(i).cloned())
            .unwrap_or(Value::Null);
        total += match (&lv, &rv, metric) {
            (Value::Str(a), Value::Str(b), StringMetric::Jaro) => jaro(a, b),
            (Value::Str(a), Value::Str(b), StringMetric::JaroWinkler) => jaro_winkler(a, b),
            _ => value_similarity(&lv, &rv),
        };
    }
    total / attr_pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_relation::prelude::ValueType;
    use explain3d_relation::row;

    #[test]
    fn jaccard_basic_properties() {
        assert_eq!(jaccard("computer science", "computer science"), 1.0);
        assert_eq!(jaccard("computer science", "science computer"), 1.0);
        assert!((jaccard("computer science", "computer engineering") - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard("art", "biology"), 0.0);
        assert_eq!(jaccard("", ""), 1.0);
        assert_eq!(jaccard("x", ""), 0.0);
    }

    #[test]
    fn jaccard_symmetry_and_bounds() {
        let pairs = [
            ("food business management", "foodservice systems administration"),
            ("equine management", "management"),
            ("cs", "cse"),
        ];
        for (a, b) in pairs {
            let s1 = jaccard(a, b);
            let s2 = jaccard(b, a);
            assert!((s1 - s2).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&s1));
        }
    }

    #[test]
    fn numeric_similarity_decreases_with_distance() {
        assert_eq!(numeric_similarity(2.0, 2.0), 1.0);
        assert!(numeric_similarity(2.0, 3.0) > numeric_similarity(2.0, 5.0));
        assert!((numeric_similarity(1.0, 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_ids_matches_string_jaccard() {
        use crate::tokenize::TokenInterner;
        let mut interner = TokenInterner::new();
        let texts = [
            "computer science",
            "science computer",
            "computer engineering",
            "food business management",
            "foodservice systems administration",
            "",
            "equine management",
        ];
        let ids: Vec<Vec<u32>> = texts.iter().map(|t| interner.token_ids(t)).collect();
        for (i, a) in texts.iter().enumerate() {
            for (j, b) in texts.iter().enumerate() {
                let expected = jaccard(a, b);
                let got = jaccard_ids(&ids[i], &ids[j]);
                assert_eq!(
                    got.to_bits(),
                    expected.to_bits(),
                    "jaccard_ids({a:?}, {b:?}) = {got} != {expected}"
                );
            }
        }
    }

    #[test]
    fn jaro_fast_path_matches_buffered_fallback() {
        let pairs = [
            ("martha", "marhta"),
            ("dixon", "dicksonx"),
            ("computer", "computation"),
            ("", "abc"),
            ("xyz", "abc"),
            ("The Quick Brown Fox", "the quick brown fox"),
            ("a", "a"),
        ];
        for (a, b) in pairs {
            assert_eq!(
                jaro(a, b).to_bits(),
                jaro_buffered(a, b).to_bits(),
                "jaro({a:?}, {b:?}) fast path diverges from fallback"
            );
        }
        // Long inputs exercise the buffered fallback through the public API.
        let long_a = "lorem ipsum dolor sit amet ".repeat(8);
        let long_b = "lorem ipsum dolor sit amet consectetur ".repeat(6);
        let j = jaro(&long_a, &long_b);
        assert!((0.0..=1.0).contains(&j));
        // Non-ASCII inputs also take the fallback and stay in bounds.
        let j = jaro("café münchen", "cafe munchen");
        assert!((0.0..=1.0).contains(&j));
    }

    #[test]
    fn jaro_and_jaro_winkler() {
        assert_eq!(jaro("martha", "martha"), 1.0);
        assert!(jaro("martha", "marhta") > 0.9);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("xyz", "abc"), 0.0);
        // Winkler boosts shared prefixes.
        assert!(jaro_winkler("computer", "computation") >= jaro("computer", "computation"));
        assert!(jaro_winkler("dixon", "dicksonx") > jaro("dixon", "dicksonx"));
    }

    #[test]
    fn value_similarity_dispatches_by_type() {
        assert_eq!(value_similarity(&Value::str("cs"), &Value::str("cs")), 1.0);
        assert_eq!(value_similarity(&Value::Int(2), &Value::Int(2)), 1.0);
        assert!(value_similarity(&Value::Int(2), &Value::Int(4)) < 1.0);
        assert_eq!(value_similarity(&Value::Null, &Value::str("x")), 0.0);
        assert_eq!(value_similarity(&Value::Null, &Value::Null), 1.0);
        assert_eq!(value_similarity(&Value::Bool(true), &Value::Bool(true)), 1.0);
        assert_eq!(value_similarity(&Value::Bool(true), &Value::Bool(false)), 0.0);
        // Mixed types compare textually.
        assert_eq!(value_similarity(&Value::Int(1999), &Value::str("1999")), 1.0);
    }

    #[test]
    fn tuple_similarity_averages_attribute_pairs() {
        let ls = Schema::from_pairs(&[("program", ValueType::Str), ("n", ValueType::Int)]);
        let rs = Schema::from_pairs(&[("major", ValueType::Str), ("m", ValueType::Int)]);
        let lrow = row!["computer science", 2];
        let rrow = row!["computer science", 1];
        let pairs =
            vec![("program".to_string(), "major".to_string()), ("n".to_string(), "m".to_string())];
        let s = tuple_similarity(&ls, &lrow, &rs, &rrow, &pairs, StringMetric::Jaccard);
        assert!((s - (1.0 + 0.5) / 2.0).abs() < 1e-12);

        // Empty attribute pair list means no basis for similarity.
        assert_eq!(tuple_similarity(&ls, &lrow, &rs, &rrow, &[], StringMetric::Jaccard), 0.0);
        // Unknown columns contribute zero rather than erroring.
        let bad = vec![("nope".to_string(), "major".to_string())];
        assert_eq!(tuple_similarity(&ls, &lrow, &rs, &rrow, &bad, StringMetric::Jaccard), 0.0);
    }
}
