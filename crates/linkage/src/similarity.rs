//! Similarity measures between attribute values and between tuples.
//!
//! The paper (Section 5.1.2) combines token-wise Jaccard similarity for
//! string attributes with normalised Euclidean distance for numeric
//! attributes, averaging across the matching attributes. Jaro and
//! Jaro-Winkler are also provided because the paper's RSWOOSH baseline
//! experimented with Jaro.

use crate::tokenize::token_set;
use explain3d_relation::prelude::{Row, Schema, Value};

/// Token-wise Jaccard similarity between two strings, in `[0, 1]`.
pub fn jaccard(a: &str, b: &str) -> f64 {
    let sa = token_set(a);
    let sb = token_set(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Normalised Euclidean similarity between two numbers:
/// `1 / (1 + |a - b|^2)`, as used in the paper.
pub fn numeric_similarity(a: f64, b: f64) -> f64 {
    1.0 / (1.0 + (a - b).powi(2))
}

/// Jaro similarity between two strings, in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.to_ascii_lowercase().chars().collect();
    let b: Vec<char> = b.to_ascii_lowercase().chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut a_matches: Vec<char> = Vec::new();
    let mut b_matches: Vec<char> = Vec::new();

    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                b_matched[j] = true;
                a_matches.push(ca);
                break;
            }
        }
    }
    for (j, &cb) in b.iter().enumerate() {
        if b_matched[j] {
            b_matches.push(cb);
        }
    }
    let m = a_matches.len() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let transpositions = a_matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions) / m) / 3.0
}

/// Jaro-Winkler similarity (Jaro boosted by shared prefix up to 4 chars).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .to_ascii_lowercase()
        .chars()
        .zip(b.to_ascii_lowercase().chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Similarity between two [`Value`]s: Jaccard for strings, normalised
/// Euclidean for numbers, exact match for booleans, 0 for NULL-vs-non-NULL.
pub fn value_similarity(a: &Value, b: &Value) -> f64 {
    match (a, b) {
        (Value::Null, Value::Null) => 1.0,
        (Value::Null, _) | (_, Value::Null) => 0.0,
        (Value::Str(x), Value::Str(y)) => jaccard(x, y),
        (Value::Bool(x), Value::Bool(y)) => {
            if x == y {
                1.0
            } else {
                0.0
            }
        }
        (x, y) => match (x.as_f64(), y.as_f64()) {
            (Some(fx), Some(fy)) => numeric_similarity(fx, fy),
            // Mixed string/number: compare textual forms.
            _ => jaccard(&x.to_string(), &y.to_string()),
        },
    }
}

/// Which string metric to use for tuple-level similarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StringMetric {
    /// Token-wise Jaccard (the paper's default).
    #[default]
    Jaccard,
    /// Jaro similarity.
    Jaro,
    /// Jaro-Winkler similarity.
    JaroWinkler,
}

/// Computes the similarity of two tuples over pairs of matching attributes:
/// the mean of per-attribute similarities, per Section 5.1.2.
///
/// `attr_pairs` maps a column of `left_schema` to a column of `right_schema`.
/// Unknown columns contribute similarity 0 (they cannot support a match).
pub fn tuple_similarity(
    left_schema: &Schema,
    left: &Row,
    right_schema: &Schema,
    right: &Row,
    attr_pairs: &[(String, String)],
    metric: StringMetric,
) -> f64 {
    if attr_pairs.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (lcol, rcol) in attr_pairs {
        let lv = left_schema
            .index_of(lcol)
            .ok()
            .and_then(|i| left.get(i).cloned())
            .unwrap_or(Value::Null);
        let rv = right_schema
            .index_of(rcol)
            .ok()
            .and_then(|i| right.get(i).cloned())
            .unwrap_or(Value::Null);
        total += match (&lv, &rv, metric) {
            (Value::Str(a), Value::Str(b), StringMetric::Jaro) => jaro(a, b),
            (Value::Str(a), Value::Str(b), StringMetric::JaroWinkler) => jaro_winkler(a, b),
            _ => value_similarity(&lv, &rv),
        };
    }
    total / attr_pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_relation::row;
    use explain3d_relation::prelude::ValueType;

    #[test]
    fn jaccard_basic_properties() {
        assert_eq!(jaccard("computer science", "computer science"), 1.0);
        assert_eq!(jaccard("computer science", "science computer"), 1.0);
        assert!((jaccard("computer science", "computer engineering") - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard("art", "biology"), 0.0);
        assert_eq!(jaccard("", ""), 1.0);
        assert_eq!(jaccard("x", ""), 0.0);
    }

    #[test]
    fn jaccard_symmetry_and_bounds() {
        let pairs = [
            ("food business management", "foodservice systems administration"),
            ("equine management", "management"),
            ("cs", "cse"),
        ];
        for (a, b) in pairs {
            let s1 = jaccard(a, b);
            let s2 = jaccard(b, a);
            assert!((s1 - s2).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&s1));
        }
    }

    #[test]
    fn numeric_similarity_decreases_with_distance() {
        assert_eq!(numeric_similarity(2.0, 2.0), 1.0);
        assert!(numeric_similarity(2.0, 3.0) > numeric_similarity(2.0, 5.0));
        assert!((numeric_similarity(1.0, 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaro_and_jaro_winkler() {
        assert_eq!(jaro("martha", "martha"), 1.0);
        assert!(jaro("martha", "marhta") > 0.9);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("xyz", "abc"), 0.0);
        // Winkler boosts shared prefixes.
        assert!(jaro_winkler("computer", "computation") >= jaro("computer", "computation"));
        assert!(jaro_winkler("dixon", "dicksonx") > jaro("dixon", "dicksonx"));
    }

    #[test]
    fn value_similarity_dispatches_by_type() {
        assert_eq!(value_similarity(&Value::str("cs"), &Value::str("cs")), 1.0);
        assert_eq!(value_similarity(&Value::Int(2), &Value::Int(2)), 1.0);
        assert!(value_similarity(&Value::Int(2), &Value::Int(4)) < 1.0);
        assert_eq!(value_similarity(&Value::Null, &Value::str("x")), 0.0);
        assert_eq!(value_similarity(&Value::Null, &Value::Null), 1.0);
        assert_eq!(value_similarity(&Value::Bool(true), &Value::Bool(true)), 1.0);
        assert_eq!(value_similarity(&Value::Bool(true), &Value::Bool(false)), 0.0);
        // Mixed types compare textually.
        assert_eq!(value_similarity(&Value::Int(1999), &Value::str("1999")), 1.0);
    }

    #[test]
    fn tuple_similarity_averages_attribute_pairs() {
        let ls = Schema::from_pairs(&[("program", ValueType::Str), ("n", ValueType::Int)]);
        let rs = Schema::from_pairs(&[("major", ValueType::Str), ("m", ValueType::Int)]);
        let lrow = row!["computer science", 2];
        let rrow = row!["computer science", 1];
        let pairs = vec![
            ("program".to_string(), "major".to_string()),
            ("n".to_string(), "m".to_string()),
        ];
        let s = tuple_similarity(&ls, &lrow, &rs, &rrow, &pairs, StringMetric::Jaccard);
        assert!((s - (1.0 + 0.5) / 2.0).abs() < 1e-12);

        // Empty attribute pair list means no basis for similarity.
        assert_eq!(
            tuple_similarity(&ls, &lrow, &rs, &rrow, &[], StringMetric::Jaccard),
            0.0
        );
        // Unknown columns contribute zero rather than erroring.
        let bad = vec![("nope".to_string(), "major".to_string())];
        assert_eq!(
            tuple_similarity(&ls, &lrow, &rs, &rrow, &bad, StringMetric::Jaccard),
            0.0
        );
    }
}
