//! The Explain3D pipeline: Stage 2 orchestration with optional
//! smart partitioning (Sections 3.2 and 4).
//!
//! Given two canonical relations, the attribute matches, and the initial
//! tuple mapping, the pipeline
//!
//! 1. builds the bipartite mapping graph,
//! 2. splits it according to the configured [`PartitioningStrategy`],
//! 3. encodes and solves one MILP per sub-problem,
//! 4. merges the decoded explanations and scores the result.

use crate::attr_match::AttributeMatches;
use crate::canonical::CanonicalRelation;
use crate::encode::{solve_subproblem, SubProblem};
use crate::explanation::ExplanationSet;
use crate::probability::{log_probability, ProbabilityParams};
use explain3d_linkage::TupleMapping;
use explain3d_milp::prelude::MilpConfig;
use explain3d_partition::{smart_partition_packed, MappingGraph, SmartPartitionConfig};
use std::time::{Duration, Instant};

/// How Stage 2 splits the problem before encoding MILPs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitioningStrategy {
    /// The basic algorithm: a single MILP over the whole problem (the
    /// paper's NOOPT configuration).
    None,
    /// Split into maximal connected components of the mapping graph (exact,
    /// but no size guarantee — Section 4's motivating observation).
    ConnectedComponents,
    /// Smart partitioning (Algorithm 3) with the given batch size:
    /// `k = ⌈(|T1|+|T2|)/batch⌉` partitions of size at most `batch`.
    Smart {
        /// Maximum number of tuples per partition.
        batch_size: usize,
    },
}

/// Configuration of the Explain3D pipeline.
#[derive(Debug, Clone)]
pub struct Explain3DConfig {
    /// Prior parameters of the probability model.
    pub params: ProbabilityParams,
    /// Partitioning strategy for Stage 2.
    pub strategy: PartitioningStrategy,
    /// MILP solver configuration (per sub-problem).
    pub milp: MilpConfig,
    /// Solve sub-problem MILPs concurrently across CPU cores. Partitioning
    /// produces independent sub-problems by construction and results are
    /// merged in partition order, so parallel and sequential runs return
    /// identical reports **as long as the MILP search itself is
    /// deterministic** — which it is by default: [`MilpConfig`] bounds the
    /// search with a deterministic per-model *node budget* derived from
    /// [`MilpConfig::deadline`] instead of a wall-clock limit, so
    /// `Explain3DConfig::default()` is byte-reproducible even under thread
    /// contention. Setting a wall-clock [`MilpConfig::time_limit`]
    /// re-introduces scheduling-dependent results for solves that hit it
    /// (see `perf_report` and `tests/perf_equivalence.rs`).
    pub parallel: bool,
    /// Worker threads for the solve phase: `None` uses all available cores
    /// (ignored when [`parallel`](Explain3DConfig::parallel) is off).
    pub threads: Option<usize>,
}

impl Default for Explain3DConfig {
    fn default() -> Self {
        Explain3DConfig {
            params: ProbabilityParams::default(),
            strategy: PartitioningStrategy::Smart { batch_size: 1000 },
            milp: MilpConfig::default(),
            parallel: true,
            threads: None,
        }
    }
}

impl Explain3DConfig {
    /// The basic (un-partitioned) configuration.
    pub fn no_opt() -> Self {
        Explain3DConfig { strategy: PartitioningStrategy::None, ..Default::default() }
    }

    /// Connected-component splitting only.
    pub fn connected_components() -> Self {
        Explain3DConfig {
            strategy: PartitioningStrategy::ConnectedComponents,
            ..Default::default()
        }
    }

    /// Smart partitioning with the given batch size.
    pub fn batched(batch_size: usize) -> Self {
        Explain3DConfig {
            strategy: PartitioningStrategy::Smart { batch_size },
            ..Default::default()
        }
    }

    /// Overrides the probability parameters.
    pub fn with_params(mut self, params: ProbabilityParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides the MILP configuration.
    pub fn with_milp(mut self, milp: MilpConfig) -> Self {
        self.milp = milp;
        self
    }

    /// Enables or disables concurrent sub-problem solving.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Uses exactly `threads` worker threads for the solve phase
    /// (`threads <= 1` disables concurrency).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.parallel = threads > 1;
        self.threads = Some(threads.max(1));
        self
    }

    /// The worker-thread count this configuration requests.
    pub fn requested_threads(&self) -> usize {
        if !self.parallel {
            1
        } else {
            self.threads.unwrap_or_else(explain3d_parallel::max_threads).max(1)
        }
    }
}

/// Cache and delta statistics of an *incremental* re-explanation
/// ([`crate::pipeline::PipelineStats::delta`]). All counters are
/// **cumulative over the owning session's lifetime**, so across successive
/// `re_explain` calls every field is monotone non-decreasing — the
/// invariant `tests/incremental_equivalence.rs` pins. A cold (from-scratch)
/// pipeline run reports all-zero `DeltaStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Tuple pairs whose similarity was actually recomputed (score-cache
    /// misses during candidate generation).
    pub pair_cache_misses: usize,
    /// Tuple pairs answered from the hash-keyed similarity score cache.
    pub pair_cache_hits: usize,
    /// Candidates carried over from the previous run without touching the
    /// scorer at all (both endpoints untouched by any delta).
    pub candidates_reused: usize,
    /// Sub-problem components answered verbatim from the solution cache.
    pub component_cache_hits: usize,
    /// Sub-problem components that had to be (re-)solved.
    pub component_cache_misses: usize,
    /// Packed parts whose every component hit the solution cache.
    pub parts_reused: usize,
    /// Packed parts containing at least one re-solved component.
    pub parts_dirty: usize,
    /// Dirty-component solves that successfully imported a persisted basis
    /// ([`explain3d_milp::prelude::SolveStats::final_basis`]).
    pub warm_basis_imports: usize,
}

/// Timing and size statistics for a pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Time spent generating / refreshing the candidate pair set. Zero for
    /// the stateless [`Explain3D::explain`] path (candidate generation is
    /// Stage 1, outside this solver); the incremental session fills it.
    pub candidate_time: Duration,
    /// Time spent partitioning the mapping graph.
    pub partition_time: Duration,
    /// Time spent merging per-component outcomes into the final report
    /// ([`assemble_report`] — normalisation, scoring, completeness check).
    pub assemble_time: Duration,
    /// Wall-clock time of the encode-and-solve phase. With `parallel`
    /// enabled this is the span of the whole concurrent phase, which on a
    /// multi-core machine is smaller than
    /// [`solve_cpu_time`](PipelineStats::solve_cpu_time).
    pub solve_time: Duration,
    /// Total wall-clock time of the pipeline.
    pub total_time: Duration,
    /// Per-sub-problem encode+solve time summed across all sub-problems
    /// (i.e. the work a sequential run would serialise). The ratio
    /// `solve_cpu_time / solve_time` approximates the parallel speedup.
    pub solve_cpu_time: Duration,
    /// Encode+solve time of the slowest single sub-problem — the lower
    /// bound on `solve_time` no amount of parallelism can beat.
    pub max_subproblem_time: Duration,
    /// Worker threads used for the solve phase (1 when sequential).
    pub threads: usize,
    /// Number of sub-problems (MILPs) solved.
    pub num_subproblems: usize,
    /// Target part count of the smart partitioner,
    /// `k = ⌈(|T1| + |T2|) / batch⌉` (0 for the other strategies). The
    /// packed partitioner lands `num_subproblems` at
    /// `target_parts + split_components` or below on pack-friendly
    /// workloads, instead of one part per connected component.
    pub target_parts: usize,
    /// Connected components the smart partitioner had to split across parts
    /// because they exceeded the batch bound (0 for other strategies).
    pub split_components: usize,
    /// Smart-partition parts exceeding the batch bound because a single
    /// high-probability cluster is larger than the batch itself (0 for
    /// other strategies).
    pub oversized_parts: usize,
    /// Size (tuples) of the largest sub-problem.
    pub max_subproblem_size: usize,
    /// Total branch-and-bound nodes across all MILPs.
    pub milp_nodes: usize,
    /// Total MILPs solved. With smart partitioning this is the number of
    /// connected components (each packed part is solved component-wise, so
    /// `milp_count >= num_subproblems`); otherwise it equals
    /// [`num_subproblems`](PipelineStats::num_subproblems).
    pub milp_count: usize,
    /// Number of MILPs that hit a limit before proving optimality (their
    /// solutions are feasible but possibly sub-optimal).
    pub suboptimal_subproblems: usize,
    /// Components executed by a worker other than the one they were dealt
    /// to by the work-stealing Stage-2 scheduler (0 for sequential runs).
    pub steals: usize,
    /// LP relaxations re-solved warm from a parent basis across all MILPs.
    pub warm_lp_solves: usize,
    /// Incremental-re-explanation cache statistics (all zero for a cold,
    /// from-scratch run).
    pub delta: DeltaStats,
}

/// The result of an Explain3D run.
#[derive(Debug, Clone)]
pub struct ExplanationReport {
    /// The derived explanations and evidence mapping.
    pub explanations: ExplanationSet,
    /// Log-probability score of the explanations (Equation 6).
    pub log_probability: f64,
    /// Whether the merged explanations satisfy the completeness property.
    pub complete: bool,
    /// Pipeline statistics.
    pub stats: PipelineStats,
}

/// The Explain3D Stage-2 solver.
#[derive(Debug, Clone, Default)]
pub struct Explain3D {
    config: Explain3DConfig,
}

impl Explain3D {
    /// Creates a solver with the given configuration.
    pub fn new(config: Explain3DConfig) -> Self {
        Explain3D { config }
    }

    /// Creates a solver with the default configuration (smart partitioning,
    /// batch size 1000).
    pub fn with_defaults() -> Self {
        Explain3D::default()
    }

    /// The configuration.
    pub fn config(&self) -> &Explain3DConfig {
        &self.config
    }

    /// Runs Stage 2 on canonical relations and an initial tuple mapping,
    /// returning the optimal (or best-found) explanations.
    pub fn explain(
        &self,
        left: &CanonicalRelation,
        right: &CanonicalRelation,
        matches: &AttributeMatches,
        mapping: &TupleMapping,
    ) -> ExplanationReport {
        let start = Instant::now();
        let relation = matches.mapping_relation();

        let partition_start = Instant::now();
        let (jobs, meta) = component_jobs(self.config.strategy, left, right, mapping);
        let partition_time = partition_start.elapsed();

        // Solve the components on the work-stealing pool. They are
        // independent by construction and results come back in input order,
        // so the merge below is identical to a sequential nested loop over
        // parts and their components — one huge component keeps only one
        // worker busy while the rest of the pool drains the other parts.
        let solve_start = Instant::now();
        let requested = self.config.requested_threads();
        let threads = requested.min(jobs.len()).max(1);
        let config = &self.config;
        let (outcomes, sched): (Vec<(usize, ComponentOutcome)>, _) =
            explain3d_parallel::par_map_stealing_weighted(
                jobs,
                requested,
                |(_, sub)| sub.size().max(1),
                |(part, sub)| (part, solve_component(left, right, relation, config, &sub, None)),
            );

        let mut report =
            assemble_report(left, right, matches, mapping, &self.config, &meta, outcomes);
        report.stats.threads = threads;
        report.stats.steals = sched.steals;
        report.stats.partition_time = partition_time;
        report.stats.solve_time = solve_start.elapsed();
        report.stats.total_time = start.elapsed();
        report
    }

    /// Convenience wrapper that solves a single prepared sub-problem
    /// (used by tests and the baselines).
    pub fn explain_subproblem(
        &self,
        left: &CanonicalRelation,
        right: &CanonicalRelation,
        matches: &AttributeMatches,
        sub: &SubProblem,
    ) -> ExplanationSet {
        let relation = matches.mapping_relation();
        let (explanations, _) =
            solve_subproblem(left, right, relation, &self.config.params, sub, &self.config.milp);
        explanations
    }
}

/// Partition-phase metadata: per-part sizes plus the packing diagnostics.
/// Produced by [`component_jobs`] alongside the job list; consumed by
/// [`assemble_report`] so the cold pipeline and the incremental
/// re-explanation path fold statistics identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionMeta {
    /// Size (tuples) of each non-empty part, in partition order.
    pub part_sizes: Vec<usize>,
    /// Target part count `k` of the smart partitioner (0 otherwise).
    pub target_parts: usize,
    /// Components split across parts by the smart partitioner.
    pub split_components: usize,
    /// Parts exceeding the batch bound (unsplittable clusters).
    pub oversized_parts: usize,
}

/// Splits the problem into per-part *component* jobs according to the
/// strategy — the partition phase of [`Explain3D::explain`], exposed so the
/// incremental re-explanation subsystem derives **exactly** the job list a
/// cold run would solve (the byte-identity invariant hinges on it).
///
/// A batch-packed part holds several independent connected components
/// (packing merges small components to hit the target part count); the MILP
/// objective decomposes over components, so the solve phase schedules one
/// MILP per component. The partitioner already knows the component
/// structure (`component_parts`), so no per-part union-find re-derivation
/// is needed. Empty parts are dropped here so all code paths see the same
/// work list. Jobs are `(part index, component)` pairs, part-major in
/// partition order — exactly the order a sequential nested loop would solve
/// and merge them in.
pub fn component_jobs(
    strategy: PartitioningStrategy,
    left: &CanonicalRelation,
    right: &CanonicalRelation,
    mapping: &TupleMapping,
) -> (Vec<(usize, SubProblem)>, PartitionMeta) {
    // Build the bipartite mapping graph.
    let mut graph = MappingGraph::new(left.len(), right.len());
    for m in mapping.matches() {
        if m.left < left.len() && m.right < right.len() {
            graph.add_edge(m.left, m.right, m.prob);
        }
    }

    let mut meta = PartitionMeta::default();
    let mut jobs: Vec<(usize, SubProblem)> = Vec::new();
    let push_part = |comps: Vec<SubProblem>,
                     jobs: &mut Vec<(usize, SubProblem)>,
                     part_sizes: &mut Vec<usize>| {
        let size: usize = comps.iter().map(SubProblem::size).sum();
        if size == 0 {
            return;
        }
        let part = part_sizes.len();
        part_sizes.push(size);
        jobs.extend(comps.into_iter().filter(|c| !c.is_empty()).map(|c| (part, c)));
    };
    match strategy {
        PartitioningStrategy::None => {
            push_part(
                vec![SubProblem::full(left, right, mapping)],
                &mut jobs,
                &mut meta.part_sizes,
            );
        }
        PartitioningStrategy::ConnectedComponents => {
            for c in graph.connected_components() {
                push_part(
                    vec![component_to_subproblem(&c, mapping)],
                    &mut jobs,
                    &mut meta.part_sizes,
                );
            }
        }
        PartitioningStrategy::Smart { batch_size } => {
            let cfg = SmartPartitionConfig::with_batch_size(batch_size);
            let packed = smart_partition_packed(&graph, &cfg);
            meta.target_parts = packed.target_parts;
            meta.split_components = packed.split_components;
            meta.oversized_parts = packed.oversized_parts.len();
            for comps in packed.component_parts(&graph) {
                push_part(
                    comps.iter().map(|c| component_to_subproblem(c, mapping)).collect(),
                    &mut jobs,
                    &mut meta.part_sizes,
                );
            }
        }
    }
    (jobs, meta)
}

/// Merges per-component outcomes into the final report — the deterministic
/// tail of [`Explain3D::explain`], shared with the incremental path so a
/// re-explanation that substitutes cached outcomes for solves assembles a
/// byte-identical report. Outcomes must arrive in job order (the
/// work-stealing scheduler preserves input order). Timing fields
/// (`partition_time`, `solve_time`, `total_time`, `candidate_time`) and
/// scheduler fields (`threads`, `steals`) are left at their defaults for
/// the caller to fill; `assemble_time` is measured here.
pub fn assemble_report(
    left: &CanonicalRelation,
    right: &CanonicalRelation,
    matches: &AttributeMatches,
    mapping: &TupleMapping,
    config: &Explain3DConfig,
    meta: &PartitionMeta,
    outcomes: Vec<(usize, ComponentOutcome)>,
) -> ExplanationReport {
    let relation = matches.mapping_relation();
    let mut merged = ExplanationSet::new();
    let mut stats = PipelineStats {
        target_parts: meta.target_parts,
        split_components: meta.split_components,
        oversized_parts: meta.oversized_parts,
        num_subproblems: meta.part_sizes.len(),
        max_subproblem_size: meta.part_sizes.iter().copied().max().unwrap_or(0),
        threads: 1,
        ..Default::default()
    };
    let assemble_start = Instant::now();
    let mut part_times = vec![Duration::ZERO; meta.part_sizes.len()];
    for (part, outcome) in outcomes {
        stats.milp_nodes += outcome.nodes;
        stats.milp_count += 1;
        stats.suboptimal_subproblems += outcome.suboptimal;
        stats.warm_lp_solves += outcome.warm_lp_solves;
        stats.solve_cpu_time += outcome.solve_time;
        part_times[part] += outcome.solve_time;
        merged.merge(outcome.explanations);
    }
    stats.max_subproblem_time = part_times.into_iter().max().unwrap_or(Duration::ZERO);
    merged.normalise();

    let log_prob = log_probability(&merged, left, right, mapping, &config.params);
    let complete = merged.is_complete(left, right, relation);
    stats.assemble_time = assemble_start.elapsed();
    ExplanationReport { explanations: merged, log_probability: log_prob, complete, stats }
}

/// The result of encoding and solving one sub-problem component (one MILP).
#[derive(Debug, Clone)]
pub struct ComponentOutcome {
    /// Decoded explanations of the component (or the heuristic fallback).
    pub explanations: ExplanationSet,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// 1 when the solve stopped before proving optimality, else 0.
    pub suboptimal: usize,
    /// Warm LP re-solves inside the search.
    pub warm_lp_solves: usize,
    /// Encode + solve wall-clock time.
    pub solve_time: Duration,
    /// The root relaxation's exported basis, for persisting across
    /// incremental re-explanations (`None` for empty models or dense-kernel
    /// solves).
    pub final_basis: Option<explain3d_milp::prelude::SparseBasis>,
    /// Whether a caller-supplied `warm_basis` was accepted.
    pub basis_imported: bool,
}

/// Encodes and solves one component: the work-stealing scheduler's work
/// item, shared by the parallel and sequential solve paths — and by the
/// incremental re-explanation subsystem, which calls it for dirty
/// components only. `warm_basis` optionally imports a persisted root basis
/// from a previous solve of a similar component
/// ([`explain3d_milp::prelude::MilpConfig::initial_basis`]); pass `None`
/// for the exact cold path (a successful import can legitimately pick a
/// different equally-optimal solution, so byte-identical re-explanations
/// must not import).
pub fn solve_component(
    left: &CanonicalRelation,
    right: &CanonicalRelation,
    relation: crate::attr_match::SemanticRelation,
    config: &Explain3DConfig,
    comp: &SubProblem,
    warm_basis: Option<explain3d_milp::prelude::SparseBasis>,
) -> ComponentOutcome {
    let comp_start = Instant::now();
    let encoded = crate::encode::encode(left, right, relation, &config.params, comp);
    // Warm-start the branch-and-bound with a greedily-constructed
    // complete solution so obviously-worse branches are pruned early;
    // the same solution serves as a fallback when the exact search hits
    // a node or time limit without an incumbent.
    let (fallback, hint) =
        crate::encode::heuristic_solution(left, right, relation, &config.params, comp);
    let milp_config = config.milp.clone().with_incumbent_hint(hint).with_initial_basis(warm_basis);
    let (solution, solve_stats) =
        explain3d_milp::branch_bound::solve_with_stats(&encoded.model, &milp_config);
    let explanations = if solution.status.has_solution() {
        crate::encode::decode(&encoded, &solution)
    } else {
        // Limit reached (or everything pruned by the warm-start bound):
        // the greedy complete solution is still valid output.
        fallback
    };
    ComponentOutcome {
        explanations,
        nodes: solve_stats.nodes,
        suboptimal: usize::from(solution.status != explain3d_milp::prelude::SolveStatus::Optimal),
        warm_lp_solves: solve_stats.warm_lp_solves,
        solve_time: comp_start.elapsed(),
        final_basis: solve_stats.final_basis,
        basis_imported: solve_stats.basis_imported,
    }
}

/// Converts a partition/component into a sub-problem, restricting matches to
/// the component's own edges.
fn component_to_subproblem(
    component: &explain3d_partition::Component,
    mapping: &TupleMapping,
) -> SubProblem {
    SubProblem {
        left_tuples: component.left.clone(),
        right_tuples: component.right.clone(),
        matches: component
            .edges
            .iter()
            .filter_map(|&e| mapping.matches().get(e).copied())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::CanonicalTuple;
    use explain3d_linkage::TupleMatch;
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn canon(name: &str, entries: &[(&str, f64)]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: name.to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: entries
                .iter()
                .enumerate()
                .map(|(i, (k, imp))| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: *imp,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    /// A pair of relations with `n` matching entities, where entity 0 has an
    /// impact mismatch and the last left entity is missing on the right.
    fn scenario(n: usize) -> (CanonicalRelation, CanonicalRelation, TupleMapping) {
        let left_entries: Vec<(String, f64)> =
            (0..n).map(|i| (format!("entity {i}"), if i == 0 { 2.0 } else { 1.0 })).collect();
        let right_entries: Vec<(String, f64)> =
            (0..n - 1).map(|i| (format!("entity {i}"), 1.0)).collect();
        let left_refs: Vec<(&str, f64)> =
            left_entries.iter().map(|(s, i)| (s.as_str(), *i)).collect();
        let right_refs: Vec<(&str, f64)> =
            right_entries.iter().map(|(s, i)| (s.as_str(), *i)).collect();
        let t1 = canon("Q1", &left_refs);
        let t2 = canon("Q2", &right_refs);
        let mut mapping = TupleMapping::new();
        for i in 0..n - 1 {
            mapping.push(TupleMatch::new(i, i, 0.92));
            if i + 1 < n - 1 {
                mapping.push(TupleMatch::new(i, i + 1, 0.15));
            }
        }
        (t1, t2, mapping)
    }

    fn attr() -> AttributeMatches {
        AttributeMatches::single_equivalent("k", "k")
    }

    #[test]
    fn all_strategies_find_the_same_explanations() {
        let (t1, t2, mapping) = scenario(8);
        let configs = [
            Explain3DConfig::no_opt(),
            Explain3DConfig::connected_components(),
            Explain3DConfig::batched(4),
        ];
        let mut reports = Vec::new();
        for cfg in configs {
            let report = Explain3D::new(cfg).explain(&t1, &t2, &attr(), &mapping);
            assert!(report.complete, "incomplete explanations: {:?}", report.explanations);
            reports.push(report);
        }
        // Explanation sets agree across strategies (high-probability matches
        // are never cut, so partitioning loses nothing here).
        let base = &reports[0].explanations;
        for r in &reports[1..] {
            assert_eq!(base.provenance, r.explanations.provenance);
            assert_eq!(base.value.len(), r.explanations.value.len());
            assert_eq!(base.evidence.len(), r.explanations.evidence.len());
        }
        // Entity 7 is missing on the right; entity 0 has an impact mismatch.
        assert_eq!(base.provenance.len(), 1);
        assert_eq!(base.provenance[0].tuple, 7);
        assert_eq!(base.value.len(), 1);
    }

    #[test]
    fn stats_reflect_partitioning() {
        let (t1, t2, mapping) = scenario(12);
        let no_opt = Explain3D::new(Explain3DConfig::no_opt()).explain(&t1, &t2, &attr(), &mapping);
        assert_eq!(no_opt.stats.num_subproblems, 1);
        assert_eq!(no_opt.stats.max_subproblem_size, t1.len() + t2.len());

        let batched =
            Explain3D::new(Explain3DConfig::batched(6)).explain(&t1, &t2, &attr(), &mapping);
        assert!(batched.stats.num_subproblems > 1);
        assert!(batched.stats.max_subproblem_size <= 6);
        // Packing diagnostics: 23 tuples / batch 6 → k = 4, and the packed
        // part count stays within target + splits (no oversized clusters).
        assert_eq!(batched.stats.target_parts, 4);
        assert_eq!(batched.stats.oversized_parts, 0);
        assert!(
            batched.stats.num_subproblems
                <= batched.stats.target_parts + batched.stats.split_components,
            "{} sub-problems for target {} + {} splits",
            batched.stats.num_subproblems,
            batched.stats.target_parts,
            batched.stats.split_components
        );
        assert_eq!(no_opt.stats.target_parts, 0);

        let cc = Explain3D::new(Explain3DConfig::connected_components()).explain(
            &t1,
            &t2,
            &attr(),
            &mapping,
        );
        assert!(cc.stats.num_subproblems >= 1);
        assert!(cc.stats.total_time >= cc.stats.solve_time);
    }

    #[test]
    fn parallel_and_sequential_runs_are_identical() {
        let (t1, t2, mapping) = scenario(16);
        for cfg in [
            Explain3DConfig::batched(4),
            Explain3DConfig::connected_components(),
            Explain3DConfig::no_opt(),
        ] {
            let par = Explain3D::new(cfg.clone().with_parallel(true)).explain(
                &t1,
                &t2,
                &attr(),
                &mapping,
            );
            let seq = Explain3D::new(cfg.with_parallel(false)).explain(&t1, &t2, &attr(), &mapping);
            assert_eq!(par.explanations, seq.explanations);
            assert_eq!(par.log_probability.to_bits(), seq.log_probability.to_bits());
            assert_eq!(par.complete, seq.complete);
            assert_eq!(par.stats.num_subproblems, seq.stats.num_subproblems);
            assert_eq!(par.stats.milp_nodes, seq.stats.milp_nodes);
            assert_eq!(seq.stats.threads, 1);
            // Per-sub-problem timings fold into the aggregate stats.
            assert!(par.stats.solve_cpu_time >= par.stats.max_subproblem_time);
            if par.stats.num_subproblems > 0 {
                assert!(par.stats.max_subproblem_time > Duration::ZERO);
            }
        }
    }

    #[test]
    fn identical_inputs_yield_no_explanations_and_high_score() {
        let t1 = canon("Q1", &[("a", 1.0), ("b", 1.0)]);
        let t2 = canon("Q2", &[("a", 1.0), ("b", 1.0)]);
        let mut mapping = TupleMapping::new();
        mapping.push(TupleMatch::new(0, 0, 0.9));
        mapping.push(TupleMatch::new(1, 1, 0.9));
        let report = Explain3D::with_defaults().explain(&t1, &t2, &attr(), &mapping);
        assert!(report.explanations.is_empty());
        assert!(report.complete);
        assert_eq!(report.explanations.evidence.len(), 2);
        assert!(report.log_probability < 0.0);
    }

    #[test]
    fn empty_mapping_forces_all_tuples_to_be_explained() {
        let t1 = canon("Q1", &[("a", 1.0), ("b", 1.0)]);
        let t2 = canon("Q2", &[("c", 1.0)]);
        let mapping = TupleMapping::new();
        let report = Explain3D::with_defaults().explain(&t1, &t2, &attr(), &mapping);
        assert!(report.complete);
        // Every tuple is either removed or zeroed.
        assert_eq!(report.explanations.len(), 3);
        assert!(report.explanations.evidence.is_empty());
    }

    #[test]
    fn empty_relations_produce_empty_report() {
        let t1 = canon("Q1", &[]);
        let t2 = canon("Q2", &[]);
        let report = Explain3D::with_defaults().explain(&t1, &t2, &attr(), &TupleMapping::new());
        assert!(report.explanations.is_empty());
        assert!(report.complete);
        assert_eq!(report.stats.num_subproblems, 0);
    }

    #[test]
    fn subproblem_helper_solves_directly() {
        let (t1, t2, mapping) = scenario(4);
        let sub = SubProblem::full(&t1, &t2, &mapping);
        let e = Explain3D::with_defaults().explain_subproblem(&t1, &t2, &attr(), &sub);
        assert!(e.is_complete(&t1, &t2, attr().mapping_relation()));
    }
}
