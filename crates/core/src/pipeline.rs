//! The Explain3D pipeline: Stage 2 orchestration with optional
//! smart partitioning (Sections 3.2 and 4).
//!
//! Given two canonical relations, the attribute matches, and the initial
//! tuple mapping, the pipeline
//!
//! 1. builds the bipartite mapping graph,
//! 2. splits it according to the configured [`PartitioningStrategy`],
//! 3. encodes and solves one MILP per sub-problem,
//! 4. merges the decoded explanations and scores the result.

use crate::attr_match::AttributeMatches;
use crate::canonical::CanonicalRelation;
use crate::encode::{solve_subproblem, SubProblem};
use crate::explanation::ExplanationSet;
use crate::probability::{log_probability, ProbabilityParams};
use explain3d_linkage::TupleMapping;
use explain3d_milp::prelude::MilpConfig;
use explain3d_partition::{smart_partition_packed, MappingGraph, SmartPartitionConfig};
use std::time::{Duration, Instant};

/// How Stage 2 splits the problem before encoding MILPs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitioningStrategy {
    /// The basic algorithm: a single MILP over the whole problem (the
    /// paper's NOOPT configuration).
    None,
    /// Split into maximal connected components of the mapping graph (exact,
    /// but no size guarantee — Section 4's motivating observation).
    ConnectedComponents,
    /// Smart partitioning (Algorithm 3) with the given batch size:
    /// `k = ⌈(|T1|+|T2|)/batch⌉` partitions of size at most `batch`.
    Smart {
        /// Maximum number of tuples per partition.
        batch_size: usize,
    },
}

/// Configuration of the Explain3D pipeline.
#[derive(Debug, Clone)]
pub struct Explain3DConfig {
    /// Prior parameters of the probability model.
    pub params: ProbabilityParams,
    /// Partitioning strategy for Stage 2.
    pub strategy: PartitioningStrategy,
    /// MILP solver configuration (per sub-problem).
    pub milp: MilpConfig,
    /// Solve sub-problem MILPs concurrently across CPU cores. Partitioning
    /// produces independent sub-problems by construction and results are
    /// merged in partition order, so parallel and sequential runs return
    /// identical reports **as long as the MILP search itself is
    /// deterministic** — i.e. bounded by [`MilpConfig::max_nodes`] or
    /// unbounded. With a wall-clock [`MilpConfig::time_limit`], a
    /// sub-problem that hits the limit may explore fewer nodes under
    /// thread contention and return a different (still feasible)
    /// solution; prefer node limits when byte-identical output matters
    /// (see `perf_report` and `tests/perf_equivalence.rs`).
    pub parallel: bool,
}

impl Default for Explain3DConfig {
    fn default() -> Self {
        Explain3DConfig {
            params: ProbabilityParams::default(),
            strategy: PartitioningStrategy::Smart { batch_size: 1000 },
            milp: MilpConfig::default(),
            parallel: true,
        }
    }
}

impl Explain3DConfig {
    /// The basic (un-partitioned) configuration.
    pub fn no_opt() -> Self {
        Explain3DConfig { strategy: PartitioningStrategy::None, ..Default::default() }
    }

    /// Connected-component splitting only.
    pub fn connected_components() -> Self {
        Explain3DConfig {
            strategy: PartitioningStrategy::ConnectedComponents,
            ..Default::default()
        }
    }

    /// Smart partitioning with the given batch size.
    pub fn batched(batch_size: usize) -> Self {
        Explain3DConfig {
            strategy: PartitioningStrategy::Smart { batch_size },
            ..Default::default()
        }
    }

    /// Overrides the probability parameters.
    pub fn with_params(mut self, params: ProbabilityParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides the MILP configuration.
    pub fn with_milp(mut self, milp: MilpConfig) -> Self {
        self.milp = milp;
        self
    }

    /// Enables or disables concurrent sub-problem solving.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }
}

/// Timing and size statistics for a pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Time spent partitioning the mapping graph.
    pub partition_time: Duration,
    /// Wall-clock time of the encode-and-solve phase. With `parallel`
    /// enabled this is the span of the whole concurrent phase, which on a
    /// multi-core machine is smaller than
    /// [`solve_cpu_time`](PipelineStats::solve_cpu_time).
    pub solve_time: Duration,
    /// Total wall-clock time of the pipeline.
    pub total_time: Duration,
    /// Per-sub-problem encode+solve time summed across all sub-problems
    /// (i.e. the work a sequential run would serialise). The ratio
    /// `solve_cpu_time / solve_time` approximates the parallel speedup.
    pub solve_cpu_time: Duration,
    /// Encode+solve time of the slowest single sub-problem — the lower
    /// bound on `solve_time` no amount of parallelism can beat.
    pub max_subproblem_time: Duration,
    /// Worker threads used for the solve phase (1 when sequential).
    pub threads: usize,
    /// Number of sub-problems (MILPs) solved.
    pub num_subproblems: usize,
    /// Target part count of the smart partitioner,
    /// `k = ⌈(|T1| + |T2|) / batch⌉` (0 for the other strategies). The
    /// packed partitioner lands `num_subproblems` at
    /// `target_parts + split_components` or below on pack-friendly
    /// workloads, instead of one part per connected component.
    pub target_parts: usize,
    /// Connected components the smart partitioner had to split across parts
    /// because they exceeded the batch bound (0 for other strategies).
    pub split_components: usize,
    /// Smart-partition parts exceeding the batch bound because a single
    /// high-probability cluster is larger than the batch itself (0 for
    /// other strategies).
    pub oversized_parts: usize,
    /// Size (tuples) of the largest sub-problem.
    pub max_subproblem_size: usize,
    /// Total branch-and-bound nodes across all MILPs.
    pub milp_nodes: usize,
    /// Total MILPs solved. With smart partitioning this is the number of
    /// connected components (each packed part is solved component-wise, so
    /// `milp_count >= num_subproblems`); otherwise it equals
    /// [`num_subproblems`](PipelineStats::num_subproblems).
    pub milp_count: usize,
    /// Number of MILPs that hit a limit before proving optimality (their
    /// solutions are feasible but possibly sub-optimal).
    pub suboptimal_subproblems: usize,
}

/// The result of an Explain3D run.
#[derive(Debug, Clone)]
pub struct ExplanationReport {
    /// The derived explanations and evidence mapping.
    pub explanations: ExplanationSet,
    /// Log-probability score of the explanations (Equation 6).
    pub log_probability: f64,
    /// Whether the merged explanations satisfy the completeness property.
    pub complete: bool,
    /// Pipeline statistics.
    pub stats: PipelineStats,
}

/// The Explain3D Stage-2 solver.
#[derive(Debug, Clone, Default)]
pub struct Explain3D {
    config: Explain3DConfig,
}

impl Explain3D {
    /// Creates a solver with the given configuration.
    pub fn new(config: Explain3DConfig) -> Self {
        Explain3D { config }
    }

    /// Creates a solver with the default configuration (smart partitioning,
    /// batch size 1000).
    pub fn with_defaults() -> Self {
        Explain3D::default()
    }

    /// The configuration.
    pub fn config(&self) -> &Explain3DConfig {
        &self.config
    }

    /// Runs Stage 2 on canonical relations and an initial tuple mapping,
    /// returning the optimal (or best-found) explanations.
    pub fn explain(
        &self,
        left: &CanonicalRelation,
        right: &CanonicalRelation,
        matches: &AttributeMatches,
        mapping: &TupleMapping,
    ) -> ExplanationReport {
        let start = Instant::now();
        let relation = matches.mapping_relation();

        // Build the bipartite mapping graph.
        let mut graph = MappingGraph::new(left.len(), right.len());
        for m in mapping.matches() {
            if m.left < left.len() && m.right < right.len() {
                graph.add_edge(m.left, m.right, m.prob);
            }
        }

        // Split into sub-problems according to the strategy. Empty parts are
        // dropped here so both code paths below see the same work list.
        let partition_start = Instant::now();
        let mut packing_stats = (0usize, 0usize, 0usize); // (target, splits, oversized)
        let subproblems: Vec<SubProblem> = match self.config.strategy {
            PartitioningStrategy::None => {
                vec![SubProblem::full(left, right, mapping)]
            }
            PartitioningStrategy::ConnectedComponents => graph
                .connected_components()
                .into_iter()
                .map(|c| component_to_subproblem(&c, mapping))
                .collect(),
            PartitioningStrategy::Smart { batch_size } => {
                let cfg = SmartPartitionConfig::with_batch_size(batch_size);
                let packed = smart_partition_packed(&graph, &cfg);
                packing_stats =
                    (packed.target_parts, packed.split_components, packed.oversized_parts.len());
                packed
                    .partition
                    .parts(&graph)
                    .into_iter()
                    .map(|c| component_to_subproblem(&c, mapping))
                    .collect()
            }
        };
        let subproblems: Vec<SubProblem> =
            subproblems.into_iter().filter(|s| !s.is_empty()).collect();
        let partition_time = partition_start.elapsed();

        // Solve the sub-problems. Partitioning makes them independent by
        // construction, so they are fanned out across worker threads;
        // `par_map_with` returns outcomes indexed by partition id (input
        // order), so the merge below is identical to a sequential run.
        //
        // A batch-packed part may contain several *independent* connected
        // components (packing merges small components to hit the target
        // part count); the MILP objective decomposes over components, so
        // each part is solved component-wise — identical models to a
        // component-per-part run, batched into `k` work items.
        let decompose = matches!(self.config.strategy, PartitioningStrategy::Smart { .. });
        let solve_start = Instant::now();
        let requested = if self.config.parallel { explain3d_parallel::max_threads() } else { 1 };
        // `par_map_with` never uses more workers than items (and runs inline
        // below two), so record the worker count actually used.
        let threads = requested.min(subproblems.len()).max(1);
        let config = &self.config;
        let outcomes: Vec<SubOutcome> =
            explain3d_parallel::par_map_with(subproblems, requested, |sub| {
                solve_one(left, right, relation, config, &sub, decompose)
            });

        // Deterministic merge in partition order, folding per-sub-problem
        // timings into the run statistics.
        let mut merged = ExplanationSet::new();
        let (target_parts, split_components, oversized_parts) = packing_stats;
        let mut stats = PipelineStats {
            partition_time,
            threads,
            target_parts,
            split_components,
            oversized_parts,
            ..Default::default()
        };
        for outcome in outcomes {
            stats.num_subproblems += 1;
            stats.max_subproblem_size = stats.max_subproblem_size.max(outcome.size);
            stats.milp_nodes += outcome.nodes;
            stats.milp_count += outcome.milps;
            stats.suboptimal_subproblems += outcome.suboptimal;
            stats.solve_cpu_time += outcome.solve_time;
            stats.max_subproblem_time = stats.max_subproblem_time.max(outcome.solve_time);
            merged.merge(outcome.explanations);
        }
        merged.normalise();
        stats.solve_time = solve_start.elapsed();
        stats.total_time = start.elapsed();

        let log_prob = log_probability(&merged, left, right, mapping, &self.config.params);
        let complete = merged.is_complete(left, right, relation);

        ExplanationReport { explanations: merged, log_probability: log_prob, complete, stats }
    }

    /// Convenience wrapper that solves a single prepared sub-problem
    /// (used by tests and the baselines).
    pub fn explain_subproblem(
        &self,
        left: &CanonicalRelation,
        right: &CanonicalRelation,
        matches: &AttributeMatches,
        sub: &SubProblem,
    ) -> ExplanationSet {
        let relation = matches.mapping_relation();
        let (explanations, _) =
            solve_subproblem(left, right, relation, &self.config.params, sub, &self.config.milp);
        explanations
    }
}

/// The result of encoding and solving one sub-problem (one partition; with
/// decomposition enabled, one or more MILPs).
struct SubOutcome {
    explanations: ExplanationSet,
    nodes: usize,
    suboptimal: usize,
    milps: usize,
    solve_time: Duration,
    size: usize,
}

/// Encodes and solves one sub-problem: the loop body shared by the parallel
/// and sequential solve paths. With `decompose` the sub-problem is split
/// into its connected components and one MILP is solved per component —
/// exact (the objective decomposes over components) and exponentially
/// cheaper than one MILP over a packed part of independent components.
fn solve_one(
    left: &CanonicalRelation,
    right: &CanonicalRelation,
    relation: crate::attr_match::SemanticRelation,
    config: &Explain3DConfig,
    sub: &SubProblem,
    decompose: bool,
) -> SubOutcome {
    let sub_start = Instant::now();
    let decomposed: Vec<SubProblem>;
    let components: &[SubProblem] = if decompose {
        decomposed = sub.connected_components();
        &decomposed
    } else {
        std::slice::from_ref(sub)
    };
    let mut explanations = ExplanationSet::new();
    let mut nodes = 0usize;
    let mut suboptimal = 0usize;
    for comp in components {
        let encoded = crate::encode::encode(left, right, relation, &config.params, comp);
        // Warm-start the branch-and-bound with a greedily-constructed
        // complete solution so obviously-worse branches are pruned early;
        // the same solution serves as a fallback when the exact search hits
        // a node or time limit without an incumbent.
        let (fallback, hint) =
            crate::encode::heuristic_solution(left, right, relation, &config.params, comp);
        let milp_config = config.milp.clone().with_incumbent_hint(hint);
        let (solution, solve_stats) =
            explain3d_milp::branch_bound::solve_with_stats(&encoded.model, &milp_config);
        let comp_explanations = if solution.status.has_solution() {
            crate::encode::decode(&encoded, &solution)
        } else {
            // Limit reached (or everything pruned by the warm-start bound):
            // the greedy complete solution is still valid output.
            fallback
        };
        explanations.merge(comp_explanations);
        nodes += solve_stats.nodes;
        suboptimal += usize::from(solution.status != explain3d_milp::prelude::SolveStatus::Optimal);
    }
    SubOutcome {
        explanations,
        nodes,
        suboptimal,
        milps: components.len(),
        solve_time: sub_start.elapsed(),
        size: sub.size(),
    }
}

/// Converts a partition/component into a sub-problem, restricting matches to
/// the component's own edges.
fn component_to_subproblem(
    component: &explain3d_partition::Component,
    mapping: &TupleMapping,
) -> SubProblem {
    SubProblem {
        left_tuples: component.left.clone(),
        right_tuples: component.right.clone(),
        matches: component
            .edges
            .iter()
            .filter_map(|&e| mapping.matches().get(e).copied())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::CanonicalTuple;
    use explain3d_linkage::TupleMatch;
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn canon(name: &str, entries: &[(&str, f64)]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: name.to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: entries
                .iter()
                .enumerate()
                .map(|(i, (k, imp))| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: *imp,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    /// A pair of relations with `n` matching entities, where entity 0 has an
    /// impact mismatch and the last left entity is missing on the right.
    fn scenario(n: usize) -> (CanonicalRelation, CanonicalRelation, TupleMapping) {
        let left_entries: Vec<(String, f64)> =
            (0..n).map(|i| (format!("entity {i}"), if i == 0 { 2.0 } else { 1.0 })).collect();
        let right_entries: Vec<(String, f64)> =
            (0..n - 1).map(|i| (format!("entity {i}"), 1.0)).collect();
        let left_refs: Vec<(&str, f64)> =
            left_entries.iter().map(|(s, i)| (s.as_str(), *i)).collect();
        let right_refs: Vec<(&str, f64)> =
            right_entries.iter().map(|(s, i)| (s.as_str(), *i)).collect();
        let t1 = canon("Q1", &left_refs);
        let t2 = canon("Q2", &right_refs);
        let mut mapping = TupleMapping::new();
        for i in 0..n - 1 {
            mapping.push(TupleMatch::new(i, i, 0.92));
            if i + 1 < n - 1 {
                mapping.push(TupleMatch::new(i, i + 1, 0.15));
            }
        }
        (t1, t2, mapping)
    }

    fn attr() -> AttributeMatches {
        AttributeMatches::single_equivalent("k", "k")
    }

    #[test]
    fn all_strategies_find_the_same_explanations() {
        let (t1, t2, mapping) = scenario(8);
        let configs = [
            Explain3DConfig::no_opt(),
            Explain3DConfig::connected_components(),
            Explain3DConfig::batched(4),
        ];
        let mut reports = Vec::new();
        for cfg in configs {
            let report = Explain3D::new(cfg).explain(&t1, &t2, &attr(), &mapping);
            assert!(report.complete, "incomplete explanations: {:?}", report.explanations);
            reports.push(report);
        }
        // Explanation sets agree across strategies (high-probability matches
        // are never cut, so partitioning loses nothing here).
        let base = &reports[0].explanations;
        for r in &reports[1..] {
            assert_eq!(base.provenance, r.explanations.provenance);
            assert_eq!(base.value.len(), r.explanations.value.len());
            assert_eq!(base.evidence.len(), r.explanations.evidence.len());
        }
        // Entity 7 is missing on the right; entity 0 has an impact mismatch.
        assert_eq!(base.provenance.len(), 1);
        assert_eq!(base.provenance[0].tuple, 7);
        assert_eq!(base.value.len(), 1);
    }

    #[test]
    fn stats_reflect_partitioning() {
        let (t1, t2, mapping) = scenario(12);
        let no_opt = Explain3D::new(Explain3DConfig::no_opt()).explain(&t1, &t2, &attr(), &mapping);
        assert_eq!(no_opt.stats.num_subproblems, 1);
        assert_eq!(no_opt.stats.max_subproblem_size, t1.len() + t2.len());

        let batched =
            Explain3D::new(Explain3DConfig::batched(6)).explain(&t1, &t2, &attr(), &mapping);
        assert!(batched.stats.num_subproblems > 1);
        assert!(batched.stats.max_subproblem_size <= 6);
        // Packing diagnostics: 23 tuples / batch 6 → k = 4, and the packed
        // part count stays within target + splits (no oversized clusters).
        assert_eq!(batched.stats.target_parts, 4);
        assert_eq!(batched.stats.oversized_parts, 0);
        assert!(
            batched.stats.num_subproblems
                <= batched.stats.target_parts + batched.stats.split_components,
            "{} sub-problems for target {} + {} splits",
            batched.stats.num_subproblems,
            batched.stats.target_parts,
            batched.stats.split_components
        );
        assert_eq!(no_opt.stats.target_parts, 0);

        let cc = Explain3D::new(Explain3DConfig::connected_components()).explain(
            &t1,
            &t2,
            &attr(),
            &mapping,
        );
        assert!(cc.stats.num_subproblems >= 1);
        assert!(cc.stats.total_time >= cc.stats.solve_time);
    }

    #[test]
    fn parallel_and_sequential_runs_are_identical() {
        let (t1, t2, mapping) = scenario(16);
        for cfg in [
            Explain3DConfig::batched(4),
            Explain3DConfig::connected_components(),
            Explain3DConfig::no_opt(),
        ] {
            let par = Explain3D::new(cfg.clone().with_parallel(true)).explain(
                &t1,
                &t2,
                &attr(),
                &mapping,
            );
            let seq = Explain3D::new(cfg.with_parallel(false)).explain(&t1, &t2, &attr(), &mapping);
            assert_eq!(par.explanations, seq.explanations);
            assert_eq!(par.log_probability.to_bits(), seq.log_probability.to_bits());
            assert_eq!(par.complete, seq.complete);
            assert_eq!(par.stats.num_subproblems, seq.stats.num_subproblems);
            assert_eq!(par.stats.milp_nodes, seq.stats.milp_nodes);
            assert_eq!(seq.stats.threads, 1);
            // Per-sub-problem timings fold into the aggregate stats.
            assert!(par.stats.solve_cpu_time >= par.stats.max_subproblem_time);
            if par.stats.num_subproblems > 0 {
                assert!(par.stats.max_subproblem_time > Duration::ZERO);
            }
        }
    }

    #[test]
    fn identical_inputs_yield_no_explanations_and_high_score() {
        let t1 = canon("Q1", &[("a", 1.0), ("b", 1.0)]);
        let t2 = canon("Q2", &[("a", 1.0), ("b", 1.0)]);
        let mut mapping = TupleMapping::new();
        mapping.push(TupleMatch::new(0, 0, 0.9));
        mapping.push(TupleMatch::new(1, 1, 0.9));
        let report = Explain3D::with_defaults().explain(&t1, &t2, &attr(), &mapping);
        assert!(report.explanations.is_empty());
        assert!(report.complete);
        assert_eq!(report.explanations.evidence.len(), 2);
        assert!(report.log_probability < 0.0);
    }

    #[test]
    fn empty_mapping_forces_all_tuples_to_be_explained() {
        let t1 = canon("Q1", &[("a", 1.0), ("b", 1.0)]);
        let t2 = canon("Q2", &[("c", 1.0)]);
        let mapping = TupleMapping::new();
        let report = Explain3D::with_defaults().explain(&t1, &t2, &attr(), &mapping);
        assert!(report.complete);
        // Every tuple is either removed or zeroed.
        assert_eq!(report.explanations.len(), 3);
        assert!(report.explanations.evidence.is_empty());
    }

    #[test]
    fn empty_relations_produce_empty_report() {
        let t1 = canon("Q1", &[]);
        let t2 = canon("Q2", &[]);
        let report = Explain3D::with_defaults().explain(&t1, &t2, &attr(), &TupleMapping::new());
        assert!(report.explanations.is_empty());
        assert!(report.complete);
        assert_eq!(report.stats.num_subproblems, 0);
    }

    #[test]
    fn subproblem_helper_solves_directly() {
        let (t1, t2, mapping) = scenario(4);
        let sub = SubProblem::full(&t1, &t2, &mapping);
        let e = Explain3D::with_defaults().explain_subproblem(&t1, &t2, &attr(), &sub);
        assert!(e.is_complete(&t1, &t2, attr().mapping_relation()));
    }
}
