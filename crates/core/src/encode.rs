//! Stage 2: MILP encoding of the EXP-3D problem (Section 3.2, Eq. 7–13).
//!
//! For a sub-problem (a subset of canonical tuples of both relations plus the
//! tuple matches among them) the encoder introduces:
//!
//! * per tuple `t`: a binary `x_t` (provenance-based explanation), an impact
//!   variable `I*_t`, a binary `y_t` (impact unchanged), and a continuous
//!   `P_t` carrying the linearised tuple log-probability of Eq. 8;
//! * per match `m = (t_i, t_j, p)`: a binary `z_ij` (evidence membership) and
//!   a continuous `w_ij` linearising the product `z_ij · I*_i` of Eq. 11;
//! * validity constraints (Eq. 10), impact-equality constraints (Eq. 12), and
//!   the objective of Eq. 13.

use crate::attr_match::SemanticRelation;
use crate::canonical::CanonicalRelation;
use crate::explanation::{ExplanationSet, Side};
use crate::probability::ProbabilityParams;
use explain3d_linkage::{TupleMapping, TupleMatch};
use explain3d_milp::prelude::*;
use std::collections::HashMap;

/// A sub-problem handed to the MILP encoder: canonical tuple indexes of both
/// sides plus the matches among them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SubProblem {
    /// Canonical tuple ids of `T1` participating in the sub-problem.
    pub left_tuples: Vec<usize>,
    /// Canonical tuple ids of `T2` participating in the sub-problem.
    pub right_tuples: Vec<usize>,
    /// Tuple matches restricted to the above tuples.
    pub matches: Vec<TupleMatch>,
}

impl SubProblem {
    /// A sub-problem covering both relations entirely.
    pub fn full(
        left: &CanonicalRelation,
        right: &CanonicalRelation,
        mapping: &TupleMapping,
    ) -> Self {
        SubProblem {
            left_tuples: (0..left.len()).collect(),
            right_tuples: (0..right.len()).collect(),
            matches: mapping.matches().to_vec(),
        }
    }

    /// Number of tuples in the sub-problem.
    pub fn size(&self) -> usize {
        self.left_tuples.len() + self.right_tuples.len()
    }

    /// True when the sub-problem has no tuples.
    pub fn is_empty(&self) -> bool {
        self.size() == 0
    }

    /// Splits the sub-problem into its maximal connected components (with
    /// respect to its own matches). Isolated tuples become singleton
    /// components. Components are returned in deterministic order (by
    /// smallest member in `left_tuples ++ right_tuples` order), each with
    /// tuples in the order they appear in the parent and matches in the
    /// parent's match order.
    ///
    /// The MILP objective decomposes over connected components, so solving
    /// each component separately and merging is exact — this is what lets a
    /// batch-packed partition (several small components per part) keep the
    /// per-MILP size at the component scale instead of the part scale.
    pub fn connected_components(&self) -> Vec<SubProblem> {
        let nl = self.left_tuples.len();
        let n = nl + self.right_tuples.len();
        if n == 0 {
            return Vec::new();
        }
        // Local ids: 0..nl = left tuples, nl..n = right tuples.
        let left_local: HashMap<usize, usize> =
            self.left_tuples.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let right_local: HashMap<usize, usize> =
            self.right_tuples.iter().enumerate().map(|(j, &t)| (t, nl + j)).collect();
        let mut dsu = explain3d_partition::DisjointSet::new(n);
        for m in &self.matches {
            if let (Some(&a), Some(&b)) = (left_local.get(&m.left), right_local.get(&m.right)) {
                dsu.union(a, b);
            }
        }
        let groups = dsu.groups();
        let mut comp_of = vec![usize::MAX; n];
        for (c, group) in groups.iter().enumerate() {
            for &id in group {
                comp_of[id] = c;
            }
        }
        let mut out: Vec<SubProblem> = groups
            .iter()
            .map(|group| {
                let mut comp = SubProblem::default();
                for &id in group {
                    if id < nl {
                        comp.left_tuples.push(self.left_tuples[id]);
                    } else {
                        comp.right_tuples.push(self.right_tuples[id - nl]);
                    }
                }
                comp
            })
            .collect();
        for m in &self.matches {
            if let Some(&a) = left_local.get(&m.left) {
                if right_local.contains_key(&m.right) {
                    out[comp_of[a]].matches.push(*m);
                }
            }
        }
        out
    }
}

/// Variable handles for one tuple. The `y`/`p` handles are kept for
/// debugging and model inspection even though decoding only needs `x` and
/// `istar`.
#[derive(Debug, Clone, Copy)]
#[allow(dead_code)]
struct TupleVars {
    x: VarId,
    istar: VarId,
    y: VarId,
    p: VarId,
}

/// An encoded sub-problem: the MILP model plus the bookkeeping needed to
/// decode a solution back into explanations.
#[derive(Debug, Clone)]
pub struct EncodedProblem {
    /// The MILP model (maximisation of Eq. 13).
    pub model: Model,
    left_vars: HashMap<usize, TupleVars>,
    right_vars: HashMap<usize, TupleVars>,
    match_vars: Vec<(TupleMatch, VarId)>,
    left_impacts: HashMap<usize, f64>,
    right_impacts: HashMap<usize, f64>,
}

impl EncodedProblem {
    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.model.num_vars()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.model.num_constraints()
    }
}

/// Encodes a sub-problem into a MILP (Algorithm 1, lines 1–10).
pub fn encode(
    left: &CanonicalRelation,
    right: &CanonicalRelation,
    relation: SemanticRelation,
    params: &ProbabilityParams,
    sub: &SubProblem,
) -> EncodedProblem {
    let mut model = Model::new();
    let mut objective = LinExpr::zero();

    let a = params.log_removed();
    let b = params.log_kept_correct();
    let c = params.log_kept_changed();
    let p_lower = b.min(c); // lower bound L for the linearised P_t

    // Impact bound U: the largest total impact either side of the sub-problem
    // can accumulate (plus head-room), used as the big-M constant.
    let left_total: f64 = sub.left_tuples.iter().map(|&i| left.tuples[i].impact).sum();
    let right_total: f64 = sub.right_tuples.iter().map(|&j| right.tuples[j].impact).sum();
    let impact_bound = (left_total.max(right_total).max(1.0)).ceil() + 1.0;

    // Impacts are encoded as integer variables when every impact in the
    // sub-problem is integral (COUNT / SUM over integers), continuous
    // otherwise (e.g. SUM over floats).
    let integral_impacts = sub
        .left_tuples
        .iter()
        .map(|&i| left.tuples[i].impact)
        .chain(sub.right_tuples.iter().map(|&j| right.tuples[j].impact))
        .all(|imp| (imp - imp.round()).abs() < 1e-9);

    let mut left_vars: HashMap<usize, TupleVars> = HashMap::new();
    let mut right_vars: HashMap<usize, TupleVars> = HashMap::new();
    let mut left_impacts: HashMap<usize, f64> = HashMap::new();
    let mut right_impacts: HashMap<usize, f64> = HashMap::new();

    // --- Per-tuple variables, constraints and objective terms (Eq. 7-8). ---
    let encode_tuple = |model: &mut Model,
                        objective: &mut LinExpr,
                        side: Side,
                        idx: usize,
                        impact: f64|
     -> TupleVars {
        let tag = match side {
            Side::Left => format!("l{idx}"),
            Side::Right => format!("r{idx}"),
        };
        let x = model.add_binary(format!("x_{tag}"));
        let istar = if integral_impacts {
            model.add_integer(format!("istar_{tag}"), 0.0, impact_bound)
        } else {
            model.add_continuous(format!("istar_{tag}"), 0.0, impact_bound)
        };
        let y = model.add_binary(format!("y_{tag}"));
        let p = model.add_continuous(format!("p_{tag}"), p_lower, 0.0);

        // Equation 7: y_t = 1 ⟺ I*_t = I_t, via big-M in both directions.
        // I* - I <= M(1 - y)  and  I - I* <= M(1 - y).
        let m_big = impact_bound;
        model.add_le(
            format!("y_link_up_{tag}"),
            LinExpr::term(istar, 1.0) + LinExpr::term(y, m_big),
            impact + m_big,
        );
        model.add_ge(
            format!("y_link_down_{tag}"),
            LinExpr::term(istar, 1.0) - LinExpr::term(y, m_big),
            impact - m_big,
        );

        // Equation 8: P_t = (1 - x_t)((1 - y_t) b + y_t c') where the paper's
        // b/c constants correspond to kept-correct / kept-changed here.
        // Written with B = log_kept_correct (y=1) and C = log_kept_changed (y=0):
        // value(y) = C + (B - C) y.
        // P >= L (1 - x)
        model.add_ge(
            format!("p_floor_{tag}"),
            LinExpr::term(p, 1.0) + LinExpr::term(x, p_lower),
            p_lower,
        );
        // P >= value(y) - U x  (U = 0)
        model.add_ge(format!("p_lo_{tag}"), LinExpr::term(p, 1.0) - LinExpr::term(y, b - c), c);
        // P <= value(y) - L x
        model.add_le(
            format!("p_hi_{tag}"),
            LinExpr::term(p, 1.0) - LinExpr::term(y, b - c) + LinExpr::term(x, p_lower),
            c,
        );

        // Objective contribution: a·x_t + P_t.
        objective.add_term(x, a);
        objective.add_term(p, 1.0);

        TupleVars { x, istar, y, p }
    };

    for &i in &sub.left_tuples {
        let impact = left.tuples[i].impact;
        let vars = encode_tuple(&mut model, &mut objective, Side::Left, i, impact);
        left_vars.insert(i, vars);
        left_impacts.insert(i, impact);
    }
    for &j in &sub.right_tuples {
        let impact = right.tuples[j].impact;
        let vars = encode_tuple(&mut model, &mut objective, Side::Right, j, impact);
        right_vars.insert(j, vars);
        right_impacts.insert(j, impact);
    }

    // --- Per-match variables and constraints (Eq. 9). ---
    let mut match_vars: Vec<(TupleMatch, VarId)> = Vec::new();
    let mut left_degree: HashMap<usize, LinExpr> = HashMap::new();
    let mut right_degree: HashMap<usize, LinExpr> = HashMap::new();
    // w_ij products grouped by the component anchor side.
    let mut anchored_sums: HashMap<(Side, usize), LinExpr> = HashMap::new();

    // The side whose tuples have degree ≤ 1 in a valid mapping; components
    // are anchored at tuples of the *other* side (Eq. 11-12).
    let anchor_side = if relation.left_degree_limited() { Side::Right } else { Side::Left };

    for m in &sub.matches {
        let (Some(lv), Some(rv)) = (left_vars.get(&m.left), right_vars.get(&m.right)) else {
            continue; // match references a tuple outside the sub-problem
        };
        let tag = format!("l{}_r{}", m.left, m.right);
        let z = model.add_binary(format!("z_{tag}"));

        // z ≤ 1 - x_i and z ≤ 1 - x_j.
        model.add_le(
            format!("z_left_{tag}"),
            LinExpr::term(z, 1.0) + LinExpr::term(lv.x, 1.0),
            1.0,
        );
        model.add_le(
            format!("z_right_{tag}"),
            LinExpr::term(z, 1.0) + LinExpr::term(rv.x, 1.0),
            1.0,
        );

        // Objective: z·log p + (1 - z)·log(1 - p).
        let lp = params.log_match_kept(m.prob);
        let lnp = params.log_match_dropped(m.prob);
        objective.add_term(z, lp - lnp);
        objective.add_constant(lnp);

        // Degree expressions for the validity constraints.
        left_degree.entry(m.left).or_insert_with(LinExpr::zero).add_term(z, 1.0);
        right_degree.entry(m.right).or_insert_with(LinExpr::zero).add_term(z, 1.0);

        // w_ij = z_ij · I*_source, where "source" is the degree-limited side.
        let (source_vars, anchor_idx) = match anchor_side {
            Side::Right => (lv, m.right),
            Side::Left => (rv, m.left),
        };
        let w = model.add_continuous(format!("w_{tag}"), 0.0, impact_bound);
        // w ≤ U z ; w ≤ I* ; w ≥ I* − U(1 − z) ; w ≥ 0.
        model.add_le(
            format!("w_cap_{tag}"),
            LinExpr::term(w, 1.0) - LinExpr::term(z, impact_bound),
            0.0,
        );
        model.add_le(
            format!("w_le_istar_{tag}"),
            LinExpr::term(w, 1.0) - LinExpr::term(source_vars.istar, 1.0),
            0.0,
        );
        model.add_ge(
            format!("w_ge_istar_{tag}"),
            LinExpr::term(w, 1.0)
                - LinExpr::term(source_vars.istar, 1.0)
                - LinExpr::term(z, impact_bound),
            -impact_bound,
        );
        anchored_sums
            .entry((anchor_side, anchor_idx))
            .or_insert_with(LinExpr::zero)
            .add_term(w, 1.0);

        match_vars.push((*m, z));
    }

    // --- Validity constraints (Eq. 10). ---
    if relation.left_degree_limited() {
        for (&i, expr) in &left_degree {
            model.add_le(format!("valid_left_{i}"), expr.clone(), 1.0);
        }
    }
    if relation.right_degree_limited() {
        for (&j, expr) in &right_degree {
            model.add_le(format!("valid_right_{j}"), expr.clone(), 1.0);
        }
    }

    // --- Impact equality (Eq. 12) anchored at the unlimited side. ---
    match anchor_side {
        Side::Right => {
            for &j in &sub.right_tuples {
                let sum =
                    anchored_sums.get(&(Side::Right, j)).cloned().unwrap_or_else(LinExpr::zero);
                let rv = &right_vars[&j];
                model.add_eq(format!("impact_eq_r{j}"), sum - LinExpr::term(rv.istar, 1.0), 0.0);
            }
            // Completeness closure: a kept-but-unmatched left tuple must have
            // zero refined impact (it forms a singleton component).
            for &i in &sub.left_tuples {
                let lv = &left_vars[&i];
                let degree = left_degree.get(&i).cloned().unwrap_or_else(LinExpr::zero);
                model.add_le(
                    format!("closure_l{i}"),
                    LinExpr::term(lv.istar, 1.0)
                        - degree.scaled(impact_bound)
                        - LinExpr::term(lv.x, impact_bound),
                    0.0,
                );
            }
        }
        Side::Left => {
            for &i in &sub.left_tuples {
                let sum =
                    anchored_sums.get(&(Side::Left, i)).cloned().unwrap_or_else(LinExpr::zero);
                let lv = &left_vars[&i];
                model.add_eq(format!("impact_eq_l{i}"), sum - LinExpr::term(lv.istar, 1.0), 0.0);
            }
            for &j in &sub.right_tuples {
                let rv = &right_vars[&j];
                let degree = right_degree.get(&j).cloned().unwrap_or_else(LinExpr::zero);
                model.add_le(
                    format!("closure_r{j}"),
                    LinExpr::term(rv.istar, 1.0)
                        - degree.scaled(impact_bound)
                        - LinExpr::term(rv.x, impact_bound),
                    0.0,
                );
            }
        }
    }

    model.maximize(objective);

    EncodedProblem { model, left_vars, right_vars, match_vars, left_impacts, right_impacts }
}

/// Decodes a MILP solution back into explanations (Algorithm 1, line 12).
pub fn decode(encoded: &EncodedProblem, solution: &Solution) -> ExplanationSet {
    let mut out = ExplanationSet::new();
    if !solution.status.has_solution() {
        return out;
    }
    let tol = 1e-4;

    let mut decode_side =
        |side: Side, vars: &HashMap<usize, TupleVars>, impacts: &HashMap<usize, f64>| {
            let mut indexes: Vec<&usize> = vars.keys().collect();
            indexes.sort();
            for &idx in indexes {
                let v = &vars[&idx];
                let original = impacts[&idx];
                if solution.is_set(v.x) {
                    out.add_provenance(side, idx);
                    continue;
                }
                let refined = solution.value(v.istar);
                if (refined - original).abs() > tol {
                    out.add_value(side, idx, original, refined);
                }
            }
        };
    decode_side(Side::Left, &encoded.left_vars, &encoded.left_impacts);
    decode_side(Side::Right, &encoded.right_vars, &encoded.right_impacts);

    for (m, z) in &encoded.match_vars {
        if solution.is_set(*z) {
            out.evidence.push(*m);
        }
    }
    out.normalise();
    out
}

/// Builds a quickly-constructed *complete* solution of the sub-problem and
/// its objective value (Eq. 13). Used both as a warm-start bound for the
/// branch-and-bound search and as a fallback when the exact search hits its
/// node or time limit without producing a solution.
///
/// The heuristic greedily keeps matches by descending probability subject to
/// the validity constraints, removes every unmatched tuple, and repairs any
/// residual impact imbalance with a value change on the anchor-side tuple.
/// The result is complete by construction, so its score is a valid lower
/// bound on the optimal objective.
pub fn heuristic_solution(
    left: &CanonicalRelation,
    right: &CanonicalRelation,
    relation: SemanticRelation,
    params: &ProbabilityParams,
    sub: &SubProblem,
) -> (ExplanationSet, f64) {
    use std::collections::HashSet;
    let in_left: HashSet<usize> = sub.left_tuples.iter().copied().collect();
    let in_right: HashSet<usize> = sub.right_tuples.iter().copied().collect();

    // Greedy valid evidence by descending probability.
    let mut sorted = sub.matches.clone();
    sorted.sort_by(TupleMatch::cmp_by_prob_desc);
    let mut left_deg: HashMap<usize, usize> = HashMap::new();
    let mut right_deg: HashMap<usize, usize> = HashMap::new();
    let mut kept: Vec<TupleMatch> = Vec::new();
    for m in &sorted {
        if !in_left.contains(&m.left) || !in_right.contains(&m.right) {
            continue;
        }
        // Keeping an unlikely match costs more (log p vs log(1-p)) than it
        // can possibly save in tuple terms, so the heuristic only keeps
        // confident matches.
        if m.prob < 0.5 {
            continue;
        }
        if relation.left_degree_limited() && left_deg.get(&m.left).copied().unwrap_or(0) >= 1 {
            continue;
        }
        if relation.right_degree_limited() && right_deg.get(&m.right).copied().unwrap_or(0) >= 1 {
            continue;
        }
        *left_deg.entry(m.left).or_insert(0) += 1;
        *right_deg.entry(m.right).or_insert(0) += 1;
        kept.push(*m);
    }
    let kept_pairs: HashSet<(usize, usize)> = kept.iter().map(|m| (m.left, m.right)).collect();

    // Impact balance per anchored group.
    let anchor_right = relation.left_degree_limited();
    let mut group_sum: HashMap<usize, f64> = HashMap::new();
    for m in &kept {
        if anchor_right {
            *group_sum.entry(m.right).or_insert(0.0) += left.tuples[m.left].impact;
        } else {
            *group_sum.entry(m.left).or_insert(0.0) += right.tuples[m.right].impact;
        }
    }

    let mut explanations = ExplanationSet::new();
    for m in &kept {
        explanations.evidence.push(*m);
    }
    let mut score = 0.0;
    // Tuple terms (and the corresponding explanations).
    for &i in &sub.left_tuples {
        if left_deg.contains_key(&i) {
            let balanced = if anchor_right {
                true // the anchor-side tuple absorbs any imbalance
            } else {
                (group_sum.get(&i).copied().unwrap_or(0.0) - left.tuples[i].impact).abs() < 1e-9
            };
            if !balanced {
                explanations.add_value(
                    Side::Left,
                    i,
                    left.tuples[i].impact,
                    group_sum.get(&i).copied().unwrap_or(0.0),
                );
            }
            score += if balanced { params.log_kept_correct() } else { params.log_kept_changed() };
        } else {
            explanations.add_provenance(Side::Left, i);
            score += params.log_removed();
        }
    }
    for &j in &sub.right_tuples {
        if right_deg.contains_key(&j) {
            let balanced = if anchor_right {
                (group_sum.get(&j).copied().unwrap_or(0.0) - right.tuples[j].impact).abs() < 1e-9
            } else {
                true
            };
            if !balanced {
                explanations.add_value(
                    Side::Right,
                    j,
                    right.tuples[j].impact,
                    group_sum.get(&j).copied().unwrap_or(0.0),
                );
            }
            score += if balanced { params.log_kept_correct() } else { params.log_kept_changed() };
        } else {
            explanations.add_provenance(Side::Right, j);
            score += params.log_removed();
        }
    }
    // Match terms.
    for m in &sub.matches {
        if !in_left.contains(&m.left) || !in_right.contains(&m.right) {
            continue;
        }
        score += if kept_pairs.contains(&(m.left, m.right)) {
            params.log_match_kept(m.prob)
        } else {
            params.log_match_dropped(m.prob)
        };
    }
    explanations.normalise();
    (explanations, score)
}

/// The objective value of the heuristic warm-start solution (see
/// [`heuristic_solution`]).
pub fn heuristic_objective(
    left: &CanonicalRelation,
    right: &CanonicalRelation,
    relation: SemanticRelation,
    params: &ProbabilityParams,
    sub: &SubProblem,
) -> f64 {
    heuristic_solution(left, right, relation, params, sub).1
}

/// Encodes and solves a sub-problem, returning the decoded explanations and
/// the solver's objective value (Eq. 13, including constant terms).
pub fn solve_subproblem(
    left: &CanonicalRelation,
    right: &CanonicalRelation,
    relation: SemanticRelation,
    params: &ProbabilityParams,
    sub: &SubProblem,
    milp_config: &MilpConfig,
) -> (ExplanationSet, Solution) {
    let encoded = encode(left, right, relation, params, sub);
    let solution = explain3d_milp::branch_bound::solve(&encoded.model, milp_config);
    let explanations = decode(&encoded, &solution);
    (explanations, solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::CanonicalTuple;
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn canon(name: &str, entries: &[(&str, f64)]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: name.to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: entries
                .iter()
                .enumerate()
                .map(|(i, (k, imp))| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: *imp,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    fn mapping(ms: &[(usize, usize, f64)]) -> TupleMapping {
        ms.iter().map(|&(l, r, p)| TupleMatch::new(l, r, p)).collect()
    }

    fn solve_full(
        left: &CanonicalRelation,
        right: &CanonicalRelation,
        relation: SemanticRelation,
        m: &TupleMapping,
    ) -> ExplanationSet {
        let sub = SubProblem::full(left, right, m);
        let params = ProbabilityParams::default();
        let (explanations, solution) =
            solve_subproblem(left, right, relation, &params, &sub, &MilpConfig::default());
        assert!(solution.status.has_solution(), "solver returned {:?}", solution.status);
        explanations
    }

    #[test]
    fn identical_relations_need_no_explanations() {
        let t1 = canon("Q1", &[("A", 1.0), ("B", 2.0)]);
        let t2 = canon("Q2", &[("A", 1.0), ("B", 2.0)]);
        let m = mapping(&[(0, 0, 0.9), (1, 1, 0.9)]);
        let e = solve_full(&t1, &t2, SemanticRelation::Equivalent, &m);
        assert!(e.is_empty(), "unexpected explanations: {e:?}");
        assert_eq!(e.evidence.len(), 2);
        assert!(e.is_complete(&t1, &t2, SemanticRelation::Equivalent));
    }

    #[test]
    fn running_example_cs_counted_twice_and_design_missing() {
        // T1 (from Q1): Accounting 1, CS 2, Design 1.
        // T2 (from Q2): Accounting 1, CSE 1.
        let t1 = canon("Q1", &[("Accounting", 1.0), ("CS", 2.0), ("Design", 1.0)]);
        let t2 = canon("Q2", &[("Accounting", 1.0), ("CSE", 1.0)]);
        let m = mapping(&[(0, 0, 0.95), (1, 1, 0.7), (2, 1, 0.1)]);
        let e = solve_full(&t1, &t2, SemanticRelation::Equivalent, &m);

        // Evidence keeps Accounting↔Accounting and CS↔CSE.
        assert!(e.evidence.contains_pair(0, 0));
        assert!(e.evidence.contains_pair(1, 1));
        assert!(!e.evidence.contains_pair(2, 1));
        // Design is a provenance-based explanation.
        assert_eq!(e.provenance_tuples(Side::Left), std::collections::BTreeSet::from([2]));
        // The CS/CSE impact mismatch is a value-based explanation.
        assert_eq!(e.value.len(), 1);
        assert!(e.is_complete(&t1, &t2, SemanticRelation::Equivalent));
    }

    #[test]
    fn prefers_unambiguous_one_to_one_matching_over_greedy_best_pair() {
        // The example from Section 5.2: pairs {A, B} vs {A', B'} with
        // p(A,A')=0.8, p(B,B')=0.8, p(A,B')=0.9, p(B,A')=0.5.
        // Record linkage would pick (A,B'); Explain3D keeps (A,A'),(B,B')
        // because leaving tuples unmatched is expensive.
        let t1 = canon("Q1", &[("A", 1.0), ("B", 1.0)]);
        let t2 = canon("Q2", &[("A'", 1.0), ("B'", 1.0)]);
        let m = mapping(&[(0, 0, 0.8), (1, 1, 0.8), (0, 1, 0.9), (1, 0, 0.5)]);
        let e = solve_full(&t1, &t2, SemanticRelation::Equivalent, &m);
        assert!(e.evidence.contains_pair(0, 0));
        assert!(e.evidence.contains_pair(1, 1));
        assert!(e.is_empty());
    }

    #[test]
    fn containment_match_allows_many_to_one() {
        // program ⊑ college: ECE and EE both map to Engineering (impact 2).
        let t1 = canon("Q1", &[("ECE", 1.0), ("EE", 1.0), ("CS", 2.0)]);
        let t2 = canon("Q3", &[("Engineering", 2.0), ("Computer Science", 1.0)]);
        let m = mapping(&[(0, 0, 0.8), (1, 0, 0.8), (2, 1, 0.8)]);
        let e = solve_full(&t1, &t2, SemanticRelation::LessGeneral, &m);
        // Both engineering programs map to the same college; that is valid
        // under ⊑ and balances impacts 1+1=2.
        assert!(e.evidence.contains_pair(0, 0));
        assert!(e.evidence.contains_pair(1, 0));
        assert!(e.evidence.contains_pair(2, 1));
        // CS counted twice vs 1 bachelor listed: one value-based explanation.
        assert_eq!(e.value.len(), 1);
        assert_eq!(e.provenance.len(), 0);
        assert!(e.is_complete(&t1, &t2, SemanticRelation::LessGeneral));
    }

    #[test]
    fn equivalence_forbids_many_to_one() {
        let t1 = canon("Q1", &[("ECE", 1.0), ("EE", 1.0)]);
        let t2 = canon("Q2", &[("Engineering", 2.0)]);
        let m = mapping(&[(0, 0, 0.8), (1, 0, 0.8)]);
        let e = solve_full(&t1, &t2, SemanticRelation::Equivalent, &m);
        // Only one of the two left tuples may match under ≡.
        let matched: usize = [e.evidence.contains_pair(0, 0), e.evidence.contains_pair(1, 0)]
            .iter()
            .filter(|&&b| b)
            .count();
        assert!(matched <= 1);
        assert!(e.is_complete(&t1, &t2, SemanticRelation::Equivalent));
    }

    #[test]
    fn missing_tuple_on_the_right_is_reported() {
        let t1 = canon("Q1", &[("A", 1.0)]);
        let t2 = canon("Q2", &[("A", 1.0), ("Extra", 3.0)]);
        let m = mapping(&[(0, 0, 0.9)]);
        let e = solve_full(&t1, &t2, SemanticRelation::Equivalent, &m);
        // "Extra" has no candidate match at all: it must be explained.
        assert!(
            e.provenance_tuples(Side::Right).contains(&1)
                || e.value_changes(Side::Right).get(&1).map(|v| v.abs() < 1e-6).unwrap_or(false),
            "Extra must be removed or zeroed: {e:?}"
        );
        assert!(e.is_complete(&t1, &t2, SemanticRelation::Equivalent));
    }

    #[test]
    fn empty_subproblem_produces_empty_model() {
        let t1 = canon("Q1", &[]);
        let t2 = canon("Q2", &[]);
        let m = TupleMapping::new();
        let sub = SubProblem::full(&t1, &t2, &m);
        assert!(sub.is_empty());
        let params = ProbabilityParams::default();
        let enc = encode(&t1, &t2, SemanticRelation::Equivalent, &params, &sub);
        assert_eq!(enc.num_vars(), 0);
        let sol = explain3d_milp::branch_bound::solve_default(&enc.model);
        let e = decode(&enc, &sol);
        assert!(e.is_empty());
    }

    #[test]
    fn matches_outside_subproblem_are_ignored() {
        let t1 = canon("Q1", &[("A", 1.0), ("B", 1.0)]);
        let t2 = canon("Q2", &[("A", 1.0), ("B", 1.0)]);
        let m = mapping(&[(0, 0, 0.9), (1, 1, 0.9)]);
        let sub = SubProblem {
            left_tuples: vec![0],
            right_tuples: vec![0],
            matches: m.matches().to_vec(), // includes (1,1) which is outside
        };
        let params = ProbabilityParams::default();
        let enc = encode(&t1, &t2, SemanticRelation::Equivalent, &params, &sub);
        // Only tuple 0 of each side and match (0,0) are encoded: 4+4+2 vars.
        assert_eq!(enc.num_vars(), 10);
        let sol = explain3d_milp::branch_bound::solve_default(&enc.model);
        let e = decode(&enc, &sol);
        assert!(e.evidence.contains_pair(0, 0));
        assert!(!e.evidence.contains_pair(1, 1));
    }

    #[test]
    fn fractional_impacts_use_continuous_variables() {
        let t1 = canon("Q1", &[("A", 1.5)]);
        let t2 = canon("Q2", &[("A", 2.5)]);
        let m = mapping(&[(0, 0, 0.9)]);
        let e = solve_full(&t1, &t2, SemanticRelation::Equivalent, &m);
        // A value-based explanation reconciles 1.5 vs 2.5.
        assert_eq!(e.value.len(), 1);
        assert!(e.is_complete(&t1, &t2, SemanticRelation::Equivalent));
    }

    #[test]
    fn objective_matches_probability_model_on_decoded_solution() {
        let t1 = canon("Q1", &[("Accounting", 1.0), ("CS", 2.0), ("Design", 1.0)]);
        let t2 = canon("Q2", &[("Accounting", 1.0), ("CSE", 1.0)]);
        let m = mapping(&[(0, 0, 0.95), (1, 1, 0.7), (2, 1, 0.1)]);
        let params = ProbabilityParams::default();
        let sub = SubProblem::full(&t1, &t2, &m);
        let (e, sol) = solve_subproblem(
            &t1,
            &t2,
            SemanticRelation::Equivalent,
            &params,
            &sub,
            &MilpConfig::default(),
        );
        let scored = crate::probability::log_probability(&e, &t1, &t2, &m, &params);
        assert!(
            (scored - sol.objective).abs() < 1e-6,
            "decoded score {scored} vs MILP objective {}",
            sol.objective
        );
    }
}
