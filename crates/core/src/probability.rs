//! The probabilistic objective of the EXP-3D problem (Section 3.1, Eq. 1–6).
//!
//! `Pr(E | T1, T2, M_tuple) ∝ Pr(T1, T2 | E) · Pr(M_tuple | T1, T2, E) · Pr(E)`
//!
//! with per-tuple priors `α` (the tuple is covered by both queries) and `β`
//! (the tuple's impact is correct), and per-match probability `p`. The prior
//! `Pr(E)` is 1 for complete explanations and 0 otherwise, so the search only
//! considers complete explanations and maximises the first two factors in
//! log-space.

use crate::canonical::CanonicalRelation;
use crate::explanation::{ExplanationSet, Side};
use explain3d_linkage::TupleMapping;

/// Prior parameters of the probability model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityParams {
    /// `α ∈ (0.5, 1]`: a-priori probability that a tuple is covered by both
    /// queries (i.e. it is *not* a provenance-based explanation).
    pub alpha: f64,
    /// `β ∈ (0.5, 1]`: a-priori probability that a tuple's impact is correct
    /// (i.e. it is *not* a value-based explanation).
    pub beta: f64,
    /// Probabilities are clamped into `[ε, 1-ε]` before taking logs so the
    /// objective stays finite even for matches reported with p = 1.
    pub prob_floor: f64,
}

impl Default for ProbabilityParams {
    fn default() -> Self {
        ProbabilityParams { alpha: 0.8, beta: 0.9, prob_floor: 1e-3 }
    }
}

impl ProbabilityParams {
    /// Creates parameters, validating `α, β ∈ (0.5, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!((0.5..=1.0).contains(&alpha) && alpha > 0.5, "α must be in (0.5, 1]");
        assert!((0.5..=1.0).contains(&beta) && beta > 0.5, "β must be in (0.5, 1]");
        ProbabilityParams { alpha, beta, ..Default::default() }
    }

    fn clamp(&self, p: f64) -> f64 {
        p.clamp(self.prob_floor, 1.0 - self.prob_floor)
    }

    /// `a = log(1 - α)`: log-probability of a provenance-based explanation.
    pub fn log_removed(&self) -> f64 {
        (1.0 - self.clamp(self.alpha)).ln()
    }

    /// `b = log α + log β`: log-probability of a kept tuple with correct
    /// impact.
    pub fn log_kept_correct(&self) -> f64 {
        self.clamp(self.alpha).ln() + self.clamp(self.beta).ln()
    }

    /// `c = log α + log(1 - β)`: log-probability of a kept tuple whose impact
    /// is changed by a value-based explanation.
    pub fn log_kept_changed(&self) -> f64 {
        self.clamp(self.alpha).ln() + (1.0 - self.clamp(self.beta)).ln()
    }

    /// `log p` for a tuple match included in the evidence.
    pub fn log_match_kept(&self, p: f64) -> f64 {
        self.clamp(p).ln()
    }

    /// `log(1 - p)` for a tuple match excluded from the evidence.
    pub fn log_match_dropped(&self, p: f64) -> f64 {
        (1.0 - self.clamp(p)).ln()
    }
}

/// Scores a set of explanations against the canonical relations and the
/// initial tuple mapping: `log Pr(T1, T2 | E) + log Pr(M_tuple | T1, T2, E)`
/// (Equation 6). The completeness prior `Pr(E)` is *not* checked here; use
/// [`ExplanationSet::is_complete`] for that.
pub fn log_probability(
    explanations: &ExplanationSet,
    left: &CanonicalRelation,
    right: &CanonicalRelation,
    initial_mapping: &TupleMapping,
    params: &ProbabilityParams,
) -> f64 {
    let mut total = 0.0;

    // Per-tuple factor (Equations 2-3).
    let removed_left = explanations.provenance_tuples(Side::Left);
    let removed_right = explanations.provenance_tuples(Side::Right);
    let changed_left = explanations.value_changes(Side::Left);
    let changed_right = explanations.value_changes(Side::Right);

    for i in 0..left.len() {
        total += if removed_left.contains(&i) {
            params.log_removed()
        } else if changed_left.contains_key(&i) {
            params.log_kept_changed()
        } else {
            params.log_kept_correct()
        };
    }
    for j in 0..right.len() {
        total += if removed_right.contains(&j) {
            params.log_removed()
        } else if changed_right.contains_key(&j) {
            params.log_kept_changed()
        } else {
            params.log_kept_correct()
        };
    }

    // Per-match factor (Equations 4-5).
    for m in initial_mapping.matches() {
        let kept = explanations.evidence.contains_pair(m.left, m.right);
        total +=
            if kept { params.log_match_kept(m.prob) } else { params.log_match_dropped(m.prob) };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::CanonicalTuple;
    use explain3d_linkage::TupleMatch;
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn canon(entries: &[(&str, f64)]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: "Q".to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: entries
                .iter()
                .enumerate()
                .map(|(i, (k, imp))| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: *imp,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    #[test]
    fn constants_are_ordered_as_expected() {
        let p = ProbabilityParams::default();
        // Keeping a tuple with correct impact is the most likely outcome;
        // changing its value or removing it are both penalised.
        assert!(p.log_kept_correct() > p.log_kept_changed());
        assert!(p.log_kept_correct() > p.log_removed());
        // All log-probabilities are finite and negative.
        for v in [p.log_kept_correct(), p.log_kept_changed(), p.log_removed()] {
            assert!(v.is_finite() && v < 0.0);
        }
    }

    #[test]
    fn match_probabilities_are_clamped() {
        let p = ProbabilityParams::default();
        assert!(p.log_match_kept(1.0).is_finite());
        assert!(p.log_match_dropped(1.0).is_finite());
        assert!(p.log_match_kept(0.0).is_finite());
        assert!(p.log_match_kept(0.9) > p.log_match_kept(0.5));
        assert!(p.log_match_dropped(0.1) > p.log_match_dropped(0.9));
    }

    #[test]
    #[should_panic(expected = "α")]
    fn alpha_must_exceed_half() {
        ProbabilityParams::new(0.4, 0.9);
    }

    #[test]
    fn fewer_explanations_score_higher() {
        let t1 = canon(&[("A", 1.0), ("B", 1.0)]);
        let t2 = canon(&[("A", 1.0), ("B", 1.0)]);
        let mut mapping = TupleMapping::new();
        mapping.push(TupleMatch::new(0, 0, 0.9));
        mapping.push(TupleMatch::new(1, 1, 0.9));
        let params = ProbabilityParams::default();

        // Perfect evidence, no explanations.
        let mut perfect = ExplanationSet::new();
        perfect.evidence.push(TupleMatch::new(0, 0, 0.9));
        perfect.evidence.push(TupleMatch::new(1, 1, 0.9));

        // Same evidence but with a gratuitous provenance explanation.
        let mut noisy = perfect.clone();
        noisy.add_provenance(Side::Left, 1);

        let s_perfect = log_probability(&perfect, &t1, &t2, &mapping, &params);
        let s_noisy = log_probability(&noisy, &t1, &t2, &mapping, &params);
        assert!(s_perfect > s_noisy);
    }

    #[test]
    fn keeping_high_probability_matches_scores_higher() {
        let t1 = canon(&[("A", 1.0)]);
        let t2 = canon(&[("A", 1.0)]);
        let mut mapping = TupleMapping::new();
        mapping.push(TupleMatch::new(0, 0, 0.95));
        let params = ProbabilityParams::default();

        let mut with_match = ExplanationSet::new();
        with_match.evidence.push(TupleMatch::new(0, 0, 0.95));
        let without_match = ExplanationSet::new();

        let s_with = log_probability(&with_match, &t1, &t2, &mapping, &params);
        let s_without = log_probability(&without_match, &t1, &t2, &mapping, &params);
        assert!(s_with > s_without);
    }

    #[test]
    fn value_change_beats_removal_only_when_alpha_is_low_enough() {
        // With α = β the two penalties are log(1-α) vs log α + log(1-β);
        // for α = β = 0.9 removal (log 0.1 ≈ -2.30) is slightly cheaper than
        // a value change (log 0.9 + log 0.1 ≈ -2.41)... in fact removal wins.
        let p = ProbabilityParams::new(0.9, 0.9);
        assert!(p.log_removed() > p.log_kept_changed());
        // With a much higher α (tuples almost surely covered), changing a
        // value becomes cheaper than claiming the tuple is unmatched.
        let p = ProbabilityParams::new(0.99, 0.9);
        assert!(p.log_kept_changed() > p.log_removed());
    }
}
