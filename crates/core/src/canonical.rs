//! Stage 1: canonicalisation of provenance relations (Definition 3.1).
//!
//! Canonicalisation groups provenance tuples that share the same values on
//! the matching attributes and sums their impacts:
//! `T = π_{A,I}(A G_{SUM(I)} (P))`. Queries whose aggregate requires a strict
//! one-to-one correspondence (AVG, MAX, MIN) are *not* grouped.

use crate::attr_match::AttributeMatches;
use explain3d_relation::prelude::{Aggregate, ProvenanceRelation, Row, Schema, Value};
use std::collections::HashMap;

/// A canonical tuple: the values of the matching attributes, the aggregated
/// impact, and the ids of the provenance tuples it represents.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalTuple {
    /// Index of the tuple within its canonical relation.
    pub id: usize,
    /// Values of the matching (key) attributes, in key-attribute order.
    pub key: Vec<Value>,
    /// Aggregated impact (`SUM` of the member tuples' impacts).
    pub impact: f64,
    /// Provenance tuple ids merged into this canonical tuple.
    pub members: Vec<usize>,
    /// A representative full provenance row (used by summarisation).
    pub representative: Row,
}

impl CanonicalTuple {
    /// Renders the key values as a single display string.
    pub fn key_text(&self) -> String {
        self.key.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" | ")
    }
}

/// A canonical relation `T` (Definition 3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalRelation {
    /// Name of the query this relation belongs to.
    pub query_name: String,
    /// Schema of the underlying provenance rows.
    pub schema: Schema,
    /// The matching (key) attributes used for grouping.
    pub key_attrs: Vec<String>,
    /// The canonical tuples.
    pub tuples: Vec<CanonicalTuple>,
    /// The aggregate of the originating query, if any.
    pub aggregate: Option<Aggregate>,
}

impl CanonicalRelation {
    /// Number of canonical tuples (the paper's `|T|`).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Total impact across canonical tuples (equals the provenance total).
    pub fn total_impact(&self) -> f64 {
        self.tuples.iter().map(|t| t.impact).sum()
    }

    /// The canonical tuple with the given id.
    pub fn tuple(&self, id: usize) -> Option<&CanonicalTuple> {
        self.tuples.get(id)
    }

    /// Key rows (one per canonical tuple) for similarity computation: the
    /// schema restricted to the key attributes.
    pub fn key_schema(&self) -> Schema {
        let names: Vec<&str> = self.key_attrs.iter().map(String::as_str).collect();
        self.schema.project(&names).unwrap_or_else(|_| self.schema.clone())
    }

    /// Rows containing only the key attribute values, aligned with
    /// [`key_schema`](Self::key_schema).
    pub fn key_rows(&self) -> Vec<Row> {
        self.tuples.iter().map(|t| Row::new(t.key.clone())).collect()
    }

    /// Looks up a canonical tuple by its key values (loose value equality).
    pub fn find_by_key(&self, key: &[Value]) -> Option<usize> {
        self.tuples.iter().position(|t| {
            t.key.len() == key.len() && t.key.iter().zip(key).all(|(a, b)| a.loose_eq(b))
        })
    }
}

/// Canonicalises a provenance relation with respect to the given key
/// attributes (the side-specific attributes of `M_attr`).
///
/// Attributes that do not resolve in the provenance schema contribute NULL
/// key values (this keeps the pipeline robust to partially-specified
/// matches). Grouping is skipped for AVG/MAX/MIN queries per the paper.
pub fn canonicalize(provenance: &ProvenanceRelation, key_attrs: &[String]) -> CanonicalRelation {
    let indices: Vec<Option<usize>> =
        key_attrs.iter().map(|a| provenance.schema.index_of(a).ok()).collect();

    let group = !provenance.aggregate.map(|a| a.requires_one_to_one()).unwrap_or(false);

    let mut tuples: Vec<CanonicalTuple> = Vec::new();
    if group {
        // `Value` is not hashable directly; group on a canonical textual form
        // of the key (case-insensitive, as schema values are entity labels).
        let mut by_text: HashMap<String, usize> = HashMap::new();
        for t in &provenance.tuples {
            let key: Vec<Value> = indices
                .iter()
                .map(|idx| idx.and_then(|i| t.row.get(i).cloned()).unwrap_or(Value::Null))
                .collect();
            let text = key
                .iter()
                .map(|v| v.to_string().to_ascii_lowercase())
                .collect::<Vec<_>>()
                .join("\u{1}");
            match by_text.get(&text) {
                Some(&pos) => {
                    tuples[pos].impact += t.impact;
                    tuples[pos].members.push(t.tid);
                }
                None => {
                    let id = tuples.len();
                    by_text.insert(text, id);
                    tuples.push(CanonicalTuple {
                        id,
                        key,
                        impact: t.impact,
                        members: vec![t.tid],
                        representative: t.row.clone(),
                    });
                }
            }
        }
    } else {
        for t in &provenance.tuples {
            let key: Vec<Value> = indices
                .iter()
                .map(|idx| idx.and_then(|i| t.row.get(i).cloned()).unwrap_or(Value::Null))
                .collect();
            tuples.push(CanonicalTuple {
                id: t.tid,
                key,
                impact: t.impact,
                members: vec![t.tid],
                representative: t.row.clone(),
            });
        }
        for (i, t) in tuples.iter_mut().enumerate() {
            t.id = i;
        }
    }

    CanonicalRelation {
        query_name: provenance.query_name.clone(),
        schema: provenance.schema.clone(),
        key_attrs: key_attrs.to_vec(),
        tuples,
        aggregate: provenance.aggregate,
    }
}

/// Canonicalises both provenance relations of a comparison using the left and
/// right attribute sets of `M_attr`.
pub fn canonicalize_pair(
    left: &ProvenanceRelation,
    right: &ProvenanceRelation,
    matches: &AttributeMatches,
) -> (CanonicalRelation, CanonicalRelation) {
    (canonicalize(left, &matches.left_attrs()), canonicalize(right, &matches.right_attrs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_relation::prelude::*;
    use explain3d_relation::row;

    /// Provenance of Q1 from Figure 1: 7 programs, impact 1 each, with CS
    /// listed twice (B.S. and B.A.).
    fn q1_provenance() -> ProvenanceRelation {
        let schema = Schema::from_pairs(&[("program", ValueType::Str), ("degree", ValueType::Str)]);
        let mut p = ProvenanceRelation::new("Q1", schema, Some(Aggregate::Count));
        for (prog, deg) in [
            ("Accounting", "B.S."),
            ("CS", "B.A."),
            ("CS", "B.S."),
            ("ECE", "B.S."),
            ("EE", "B.S."),
            ("Management", "B.A."),
            ("Design", "B.A."),
        ] {
            p.push(row![prog, deg], 1.0);
        }
        p
    }

    #[test]
    fn figure_3_canonicalisation() {
        let p = q1_provenance();
        let t = canonicalize(&p, &["program".to_string()]);
        // 7 provenance tuples collapse into 6 canonical tuples; CS has impact 2.
        assert_eq!(t.len(), 6);
        assert_eq!(t.total_impact(), 7.0);
        let cs = t.find_by_key(&[Value::str("CS")]).unwrap();
        assert_eq!(t.tuples[cs].impact, 2.0);
        assert_eq!(t.tuples[cs].members.len(), 2);
        let acct = t.find_by_key(&[Value::str("Accounting")]).unwrap();
        assert_eq!(t.tuples[acct].impact, 1.0);
        // Ids are dense and sequential.
        for (i, tup) in t.tuples.iter().enumerate() {
            assert_eq!(tup.id, i);
        }
    }

    #[test]
    fn grouping_is_case_insensitive_on_keys() {
        let schema = Schema::from_pairs(&[("program", ValueType::Str)]);
        let mut p = ProvenanceRelation::new("Q", schema, Some(Aggregate::Count));
        p.push(row!["Computer Science"], 1.0);
        p.push(row!["computer science"], 1.0);
        let t = canonicalize(&p, &["program".to_string()]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.tuples[0].impact, 2.0);
    }

    #[test]
    fn one_to_one_aggregates_skip_grouping() {
        let schema = Schema::from_pairs(&[("program", ValueType::Str), ("n", ValueType::Int)]);
        let mut p = ProvenanceRelation::new("Qavg", schema, Some(Aggregate::Avg));
        p.push(row!["CS", 3], 3.0);
        p.push(row!["CS", 5], 5.0);
        let t = canonicalize(&p, &["program".to_string()]);
        assert_eq!(t.len(), 2, "AVG queries must not merge tuples");
        assert_eq!(t.total_impact(), 8.0);
    }

    #[test]
    fn non_aggregate_queries_are_grouped() {
        let p = {
            let schema = Schema::from_pairs(&[("program", ValueType::Str)]);
            let mut p = ProvenanceRelation::new("Qsel", schema, None);
            p.push(row!["CS"], 1.0);
            p.push(row!["CS"], 1.0);
            p.push(row!["EE"], 1.0);
            p
        };
        let t = canonicalize(&p, &["program".to_string()]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unknown_key_attributes_become_null() {
        let p = q1_provenance();
        let t = canonicalize(&p, &["nonexistent".to_string()]);
        // All tuples share the NULL key and collapse into one canonical tuple.
        assert_eq!(t.len(), 1);
        assert!(t.tuples[0].key[0].is_null());
        assert_eq!(t.total_impact(), 7.0);
    }

    #[test]
    fn key_schema_and_rows_align() {
        let p = q1_provenance();
        let t = canonicalize(&p, &["program".to_string()]);
        let ks = t.key_schema();
        assert_eq!(ks.arity(), 1);
        let rows = t.key_rows();
        assert_eq!(rows.len(), t.len());
        assert_eq!(rows[0].arity(), 1);
        assert!(t.find_by_key(&[Value::str("Design")]).is_some());
        assert!(t.find_by_key(&[Value::str("Biology")]).is_none());
        assert!(t.tuple(0).is_some());
        assert!(t.tuple(99).is_none());
        assert!(!t.is_empty());
        assert!(t.tuples[0].key_text().contains("Accounting"));
    }

    #[test]
    fn canonicalize_pair_uses_both_sides_of_mattr() {
        let p1 = q1_provenance();
        let schema2 =
            Schema::from_pairs(&[("college", ValueType::Str), ("num_bach", ValueType::Int)]);
        let mut p2 = ProvenanceRelation::new("Q3", schema2, Some(Aggregate::Sum));
        p2.push(row!["Business", 2], 2.0);
        p2.push(row!["Engineering", 2], 2.0);
        p2.push(row!["Computer Science", 1], 1.0);
        let m = AttributeMatches::single_less_general("program", "college");
        let (t1, t2) = canonicalize_pair(&p1, &p2, &m);
        assert_eq!(t1.len(), 6);
        assert_eq!(t2.len(), 3);
        assert_eq!(t2.total_impact(), 5.0);
        assert_eq!(t1.key_attrs, vec!["program".to_string()]);
        assert_eq!(t2.key_attrs, vec!["college".to_string()]);
    }
}
