//! Attribute matches `M_attr` and query comparability (Definitions 2.1–2.2).

use std::fmt;

/// The semantic relation `φ` between two sets of attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticRelation {
    /// `A_i ≡ A_j`: one-to-one correspondence between instantiations.
    Equivalent,
    /// `A_i ⊑ A_j`: the left attribute is less general (many left values map
    /// to one right value; e.g. `program ⊑ college`).
    LessGeneral,
    /// `A_i ⊒ A_j`: the left attribute is more general (one left value maps
    /// to many right values).
    MoreGeneral,
}

impl SemanticRelation {
    /// True when left tuples may match at most one right tuple in a valid
    /// mapping (Definition 3.2).
    pub fn left_degree_limited(&self) -> bool {
        matches!(self, SemanticRelation::Equivalent | SemanticRelation::LessGeneral)
    }

    /// True when right tuples may match at most one left tuple in a valid
    /// mapping (Definition 3.2).
    pub fn right_degree_limited(&self) -> bool {
        matches!(self, SemanticRelation::Equivalent | SemanticRelation::MoreGeneral)
    }

    /// The relation with left and right swapped.
    pub fn flipped(&self) -> SemanticRelation {
        match self {
            SemanticRelation::Equivalent => SemanticRelation::Equivalent,
            SemanticRelation::LessGeneral => SemanticRelation::MoreGeneral,
            SemanticRelation::MoreGeneral => SemanticRelation::LessGeneral,
        }
    }
}

impl fmt::Display for SemanticRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SemanticRelation::Equivalent => "≡",
            SemanticRelation::LessGeneral => "⊑",
            SemanticRelation::MoreGeneral => "⊒",
        })
    }
}

/// One attribute match `(A_i φ A_j)` between sets of categorical attributes
/// of the two queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeMatch {
    /// Matching attributes of the left query's provenance relation.
    pub left: Vec<String>,
    /// Matching attributes of the right query's provenance relation.
    pub right: Vec<String>,
    /// The semantic relation between the attribute sets.
    pub relation: SemanticRelation,
}

impl AttributeMatch {
    /// An equivalence match on a single attribute pair.
    pub fn equivalent(left: impl Into<String>, right: impl Into<String>) -> Self {
        AttributeMatch {
            left: vec![left.into()],
            right: vec![right.into()],
            relation: SemanticRelation::Equivalent,
        }
    }

    /// A `⊑` (less general) match on a single attribute pair.
    pub fn less_general(left: impl Into<String>, right: impl Into<String>) -> Self {
        AttributeMatch {
            left: vec![left.into()],
            right: vec![right.into()],
            relation: SemanticRelation::LessGeneral,
        }
    }

    /// A `⊒` (more general) match on a single attribute pair.
    pub fn more_general(left: impl Into<String>, right: impl Into<String>) -> Self {
        AttributeMatch {
            left: vec![left.into()],
            right: vec![right.into()],
            relation: SemanticRelation::MoreGeneral,
        }
    }

    /// An equivalence match over multi-attribute sets.
    pub fn equivalent_sets(left: Vec<String>, right: Vec<String>) -> Self {
        AttributeMatch { left, right, relation: SemanticRelation::Equivalent }
    }
}

impl fmt::Display for AttributeMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) {} ({})", self.left.join(", "), self.relation, self.right.join(", "))
    }
}

/// The attribute matches `M_attr(Q1, Q2)` between two queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttributeMatches {
    matches: Vec<AttributeMatch>,
}

impl AttributeMatches {
    /// Creates an empty set of matches (non-comparable queries).
    pub fn none() -> Self {
        AttributeMatches::default()
    }

    /// Creates attribute matches from a list.
    pub fn new(matches: Vec<AttributeMatch>) -> Self {
        AttributeMatches { matches }
    }

    /// A single equivalence match on one attribute pair — the most common
    /// configuration in the paper's experiments.
    pub fn single_equivalent(left: impl Into<String>, right: impl Into<String>) -> Self {
        AttributeMatches { matches: vec![AttributeMatch::equivalent(left, right)] }
    }

    /// A single `⊑` match (e.g. `program ⊑ college`).
    pub fn single_less_general(left: impl Into<String>, right: impl Into<String>) -> Self {
        AttributeMatches { matches: vec![AttributeMatch::less_general(left, right)] }
    }

    /// Adds a match.
    pub fn push(&mut self, m: AttributeMatch) {
        self.matches.push(m);
    }

    /// The matches.
    pub fn matches(&self) -> &[AttributeMatch] {
        &self.matches
    }

    /// Number of matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// True when there are no matches.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Definition 2.2: two queries are comparable iff `M_attr ≠ ∅`.
    pub fn comparable(&self) -> bool {
        !self.matches.is_empty()
    }

    /// The matching attributes of the left query (used for canonicalisation).
    pub fn left_attrs(&self) -> Vec<String> {
        let mut out = Vec::new();
        for m in &self.matches {
            for a in &m.left {
                if !out.contains(a) {
                    out.push(a.clone());
                }
            }
        }
        out
    }

    /// The matching attributes of the right query.
    pub fn right_attrs(&self) -> Vec<String> {
        let mut out = Vec::new();
        for m in &self.matches {
            for a in &m.right {
                if !out.contains(a) {
                    out.push(a.clone());
                }
            }
        }
        out
    }

    /// Pairs of `(left attribute, right attribute)` used by record linkage to
    /// compute tuple similarities. Multi-attribute sets are flattened
    /// pairwise (shorter side padded by repeating its last attribute).
    pub fn attr_pairs(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for m in &self.matches {
            let n = m.left.len().max(m.right.len());
            for i in 0..n {
                let l = m.left.get(i).or(m.left.last());
                let r = m.right.get(i).or(m.right.last());
                if let (Some(l), Some(r)) = (l, r) {
                    let pair = (l.clone(), r.clone());
                    if !out.contains(&pair) {
                        out.push(pair);
                    }
                }
            }
        }
        out
    }

    /// The overall cardinality discipline of the evidence mapping
    /// (Definition 3.2): if *any* match limits a side's degree, the valid
    /// mapping must respect it. With multiple matches the strictest
    /// combination applies.
    pub fn mapping_relation(&self) -> SemanticRelation {
        let mut left_limited = false;
        let mut right_limited = false;
        for m in &self.matches {
            left_limited |= m.relation.left_degree_limited();
            right_limited |= m.relation.right_degree_limited();
        }
        match (left_limited, right_limited) {
            (true, true) | (false, false) => SemanticRelation::Equivalent,
            (true, false) => SemanticRelation::LessGeneral,
            (false, true) => SemanticRelation::MoreGeneral,
        }
    }
}

impl fmt::Display for AttributeMatches {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.matches.is_empty() {
            return f.write_str("∅");
        }
        for (i, m) in self.matches.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparability_requires_at_least_one_match() {
        assert!(!AttributeMatches::none().comparable());
        assert!(AttributeMatches::single_equivalent("program", "major").comparable());
    }

    #[test]
    fn degree_limits_follow_definition_3_2() {
        assert!(SemanticRelation::Equivalent.left_degree_limited());
        assert!(SemanticRelation::Equivalent.right_degree_limited());
        assert!(SemanticRelation::LessGeneral.left_degree_limited());
        assert!(!SemanticRelation::LessGeneral.right_degree_limited());
        assert!(!SemanticRelation::MoreGeneral.left_degree_limited());
        assert!(SemanticRelation::MoreGeneral.right_degree_limited());
    }

    #[test]
    fn flipping_relations() {
        assert_eq!(SemanticRelation::LessGeneral.flipped(), SemanticRelation::MoreGeneral);
        assert_eq!(SemanticRelation::MoreGeneral.flipped(), SemanticRelation::LessGeneral);
        assert_eq!(SemanticRelation::Equivalent.flipped(), SemanticRelation::Equivalent);
    }

    #[test]
    fn attribute_collection_and_pairs() {
        let mut m = AttributeMatches::single_equivalent("program", "major");
        m.push(AttributeMatch::less_general("program", "college"));
        assert_eq!(m.left_attrs(), vec!["program".to_string()]);
        assert_eq!(m.right_attrs(), vec!["major".to_string(), "college".to_string()]);
        let pairs = m.attr_pairs();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&("program".to_string(), "major".to_string())));
        assert!(pairs.contains(&("program".to_string(), "college".to_string())));
    }

    #[test]
    fn multi_attribute_sets_flatten_pairwise() {
        let m = AttributeMatches::new(vec![AttributeMatch::equivalent_sets(
            vec!["firstname".into(), "lastname".into()],
            vec!["name".into()],
        )]);
        let pairs = m.attr_pairs();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], ("firstname".to_string(), "name".to_string()));
        assert_eq!(pairs[1], ("lastname".to_string(), "name".to_string()));
    }

    #[test]
    fn mapping_relation_combines_matches() {
        let eq = AttributeMatches::single_equivalent("a", "b");
        assert_eq!(eq.mapping_relation(), SemanticRelation::Equivalent);
        let lg = AttributeMatches::single_less_general("program", "college");
        assert_eq!(lg.mapping_relation(), SemanticRelation::LessGeneral);
        let mg = AttributeMatches::new(vec![AttributeMatch::more_general("college", "program")]);
        assert_eq!(mg.mapping_relation(), SemanticRelation::MoreGeneral);
        assert_eq!(AttributeMatches::none().mapping_relation(), SemanticRelation::Equivalent);
    }

    #[test]
    fn display_uses_paper_notation() {
        let m = AttributeMatches::single_less_general("program", "college");
        let s = m.to_string();
        assert!(s.contains('⊑'));
        assert!(s.contains("program"));
        assert_eq!(AttributeMatches::none().to_string(), "∅");
    }
}
