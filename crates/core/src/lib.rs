//! # explain3d-core
//!
//! The core of the Explain3D reproduction (VLDB 2019): derive interpretable
//! explanations for the disagreement between the results of two semantically
//! similar queries over two disjoint datasets.
//!
//! The framework has three stages:
//!
//! 1. **Canonicalisation** ([`canonical`], [`prepare`]): execute both
//!    queries, derive provenance relations, and group provenance tuples by
//!    the matching attributes of [`attr_match::AttributeMatches`].
//! 2. **Optimal explanation search** ([`encode`], [`pipeline`]): encode the
//!    EXP-3D problem as a MILP (Eq. 7–13) — per sub-problem produced by the
//!    configured partitioning strategy — solve it, and decode the result
//!    into provenance-based and value-based [`explanation`]s together with
//!    their evidence mapping.
//! 3. **Summarisation** is provided by the companion `explain3d-summarize`
//!    crate and wired up in the top-level `explain3d` facade.
//!
//! ```
//! use explain3d_core::prelude::*;
//! use explain3d_linkage::{TupleMapping, TupleMatch};
//!
//! // Tiny canonical relations (normally produced by `prepare`).
//! # use explain3d_relation::prelude::{Row, Schema, Value, ValueType};
//! # fn canon(name: &str, entries: &[(&str, f64)]) -> CanonicalRelation {
//! #     CanonicalRelation {
//! #         query_name: name.to_string(),
//! #         schema: Schema::from_pairs(&[("k", ValueType::Str)]),
//! #         key_attrs: vec!["k".to_string()],
//! #         tuples: entries.iter().enumerate().map(|(i, (k, imp))| CanonicalTuple {
//! #             id: i, key: vec![Value::str(*k)], impact: *imp, members: vec![i],
//! #             representative: Row::new(vec![Value::str(*k)]),
//! #         }).collect(),
//! #         aggregate: None,
//! #     }
//! # }
//! let t1 = canon("Q1", &[("CS", 2.0), ("Design", 1.0)]);
//! let t2 = canon("Q2", &[("CSE", 1.0)]);
//! let mut mapping = TupleMapping::new();
//! mapping.push(TupleMatch::new(0, 0, 0.8));
//!
//! let matches = AttributeMatches::single_equivalent("k", "k");
//! let report = Explain3D::with_defaults().explain(&t1, &t2, &matches, &mapping);
//! assert!(report.complete);
//! assert_eq!(report.explanations.provenance.len(), 1); // Design is missing
//! assert_eq!(report.explanations.value.len(), 1);      // CS counted twice
//! ```

#![warn(missing_docs)]

pub mod attr_match;
pub mod canonical;
pub mod encode;
pub mod explanation;
pub mod pipeline;
pub mod prepare;
pub mod probability;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::attr_match::{AttributeMatch, AttributeMatches, SemanticRelation};
    pub use crate::canonical::{
        canonicalize, canonicalize_pair, CanonicalRelation, CanonicalTuple,
    };
    pub use crate::encode::{decode, encode, solve_subproblem, EncodedProblem, SubProblem};
    pub use crate::explanation::{ExplanationSet, ProvenanceExplanation, Side, ValueExplanation};
    pub use crate::pipeline::{
        assemble_report, component_jobs, solve_component, ComponentOutcome, DeltaStats, Explain3D,
        Explain3DConfig, ExplanationReport, PartitionMeta, PartitioningStrategy, PipelineStats,
    };
    pub use crate::prepare::{
        build_initial_mapping, prepare, MappingOptions, PreparedComparison, QueryCase,
    };
    pub use crate::probability::{log_probability, ProbabilityParams};
}

pub use prelude::*;
