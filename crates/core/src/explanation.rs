//! Explanations and their evidence (Definition 2.5).
//!
//! The output of Explain3D is `E = (Δ, δ | M*_tuple)`:
//! * Δ — provenance-based explanations: canonical tuples of one relation
//!   that have no counterpart in the other;
//! * δ — value-based explanations: canonical tuples whose impact must change;
//! * M*_tuple — the evidence mapping, a refined subset of the initial tuple
//!   mapping that justifies the explanations.

use crate::attr_match::SemanticRelation;
use crate::canonical::CanonicalRelation;
use explain3d_linkage::TupleMapping;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Which canonical relation a tuple-level explanation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// The first query / canonical relation (`T1`).
    Left,
    /// The second query / canonical relation (`T2`).
    Right,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Side::Left => "T1",
            Side::Right => "T2",
        })
    }
}

/// A provenance-based explanation: canonical tuple `tuple` of `side` does not
/// map to any tuple of the other relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProvenanceExplanation {
    /// The relation the tuple belongs to.
    pub side: Side,
    /// Canonical tuple index.
    pub tuple: usize,
}

/// A value-based explanation: canonical tuple `tuple` of `side` should have
/// impact `new_impact` instead of `old_impact`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueExplanation {
    /// The relation the tuple belongs to.
    pub side: Side,
    /// Canonical tuple index.
    pub tuple: usize,
    /// The tuple's original impact.
    pub old_impact: f64,
    /// The refined impact suggested by the explanation.
    pub new_impact: f64,
}

/// A complete explanation result `E = (Δ, δ | M*_tuple)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExplanationSet {
    /// Provenance-based explanations Δ.
    pub provenance: Vec<ProvenanceExplanation>,
    /// Value-based explanations δ.
    pub value: Vec<ValueExplanation>,
    /// The evidence mapping M*_tuple (canonical tuple index pairs).
    pub evidence: TupleMapping,
}

impl ExplanationSet {
    /// Creates an empty explanation set.
    pub fn new() -> Self {
        ExplanationSet::default()
    }

    /// Total number of explanations `|E| = |Δ| + |δ|`.
    pub fn len(&self) -> usize {
        self.provenance.len() + self.value.len()
    }

    /// True when there are no explanations (the queries agree under the
    /// evidence mapping).
    pub fn is_empty(&self) -> bool {
        self.provenance.is_empty() && self.value.is_empty()
    }

    /// Adds a provenance-based explanation.
    pub fn add_provenance(&mut self, side: Side, tuple: usize) {
        self.provenance.push(ProvenanceExplanation { side, tuple });
    }

    /// Adds a value-based explanation.
    pub fn add_value(&mut self, side: Side, tuple: usize, old_impact: f64, new_impact: f64) {
        self.value.push(ValueExplanation { side, tuple, old_impact, new_impact });
    }

    /// The provenance-explanation tuples of one side, as a set.
    pub fn provenance_tuples(&self, side: Side) -> BTreeSet<usize> {
        self.provenance.iter().filter(|e| e.side == side).map(|e| e.tuple).collect()
    }

    /// The value-explanation tuples of one side, keyed by tuple index.
    pub fn value_changes(&self, side: Side) -> BTreeMap<usize, f64> {
        self.value.iter().filter(|e| e.side == side).map(|e| (e.tuple, e.new_impact)).collect()
    }

    /// Merges another explanation set (used when sub-problems are solved
    /// independently and their results combined).
    pub fn merge(&mut self, other: ExplanationSet) {
        self.provenance.extend(other.provenance);
        self.value.extend(other.value);
        for m in other.evidence.matches() {
            self.evidence.push(*m);
        }
    }

    /// Sorts the explanations deterministically (for stable reports/tests).
    pub fn normalise(&mut self) {
        self.provenance.sort();
        self.value.sort_by_key(|e| (e.side, e.tuple));
    }

    /// Checks the *completeness* of the explanations (Definition 3.4): after
    /// removing Δ tuples and applying δ impact changes, the evidence mapping
    /// must be valid (Definition 3.2) and every connected component must
    /// satisfy impact equality (Definition 3.3). Unmatched surviving tuples
    /// must have zero refined impact. Returns the list of violations.
    pub fn completeness_violations(
        &self,
        left: &CanonicalRelation,
        right: &CanonicalRelation,
        relation: SemanticRelation,
        tolerance: f64,
    ) -> Vec<String> {
        let mut violations = Vec::new();
        let removed_left = self.provenance_tuples(Side::Left);
        let removed_right = self.provenance_tuples(Side::Right);
        let changed_left = self.value_changes(Side::Left);
        let changed_right = self.value_changes(Side::Right);

        let impact_left = |i: usize| -> f64 {
            changed_left.get(&i).copied().unwrap_or_else(|| left.tuples[i].impact)
        };
        let impact_right = |j: usize| -> f64 {
            changed_right.get(&j).copied().unwrap_or_else(|| right.tuples[j].impact)
        };

        // Evidence must not touch removed tuples.
        for m in self.evidence.matches() {
            if removed_left.contains(&m.left) {
                violations.push(format!("evidence uses removed left tuple {}", m.left));
            }
            if removed_right.contains(&m.right) {
                violations.push(format!("evidence uses removed right tuple {}", m.right));
            }
        }

        // Mapping validity (degree constraints).
        if relation.left_degree_limited() {
            for (l, ms) in self.evidence.by_left() {
                if ms.len() > 1 {
                    violations.push(format!("left tuple {l} matched {} times", ms.len()));
                }
            }
        }
        if relation.right_degree_limited() {
            for (r, ms) in self.evidence.by_right() {
                if ms.len() > 1 {
                    violations.push(format!("right tuple {r} matched {} times", ms.len()));
                }
            }
        }

        // Impact equality per connected component of the evidence graph.
        let mut dsu = explain3d_partition::DisjointSet::new(left.len() + right.len());
        for m in self.evidence.matches() {
            dsu.union(m.left, left.len() + m.right);
        }
        let mut component_balance: BTreeMap<usize, f64> = BTreeMap::new();
        let mut matched_left: BTreeSet<usize> = BTreeSet::new();
        let mut matched_right: BTreeSet<usize> = BTreeSet::new();
        for m in self.evidence.matches() {
            matched_left.insert(m.left);
            matched_right.insert(m.right);
        }
        for i in 0..left.len() {
            if removed_left.contains(&i) {
                continue;
            }
            if !matched_left.contains(&i) {
                if impact_left(i).abs() > tolerance {
                    violations.push(format!(
                        "left tuple {i} is unmatched but keeps impact {}",
                        impact_left(i)
                    ));
                }
                continue;
            }
            *component_balance.entry(dsu.find(i)).or_insert(0.0) += impact_left(i);
        }
        for j in 0..right.len() {
            if removed_right.contains(&j) {
                continue;
            }
            if !matched_right.contains(&j) {
                if impact_right(j).abs() > tolerance {
                    violations.push(format!(
                        "right tuple {j} is unmatched but keeps impact {}",
                        impact_right(j)
                    ));
                }
                continue;
            }
            *component_balance.entry(dsu.find(left.len() + j)).or_insert(0.0) -= impact_right(j);
        }
        for (root, balance) in component_balance {
            if balance.abs() > tolerance {
                violations.push(format!(
                    "impact imbalance {balance:+.3} in component rooted at node {root}"
                ));
            }
        }
        violations
    }

    /// True when the explanation set is complete (Definition 3.4).
    pub fn is_complete(
        &self,
        left: &CanonicalRelation,
        right: &CanonicalRelation,
        relation: SemanticRelation,
    ) -> bool {
        self.completeness_violations(left, right, relation, 1e-6).is_empty()
    }

    /// Renders the explanations against the canonical relations, using the
    /// tuples' key values (human-readable report).
    pub fn render(&self, left: &CanonicalRelation, right: &CanonicalRelation) -> String {
        let mut out = String::new();
        let key_of = |side: Side, idx: usize| -> String {
            let rel = match side {
                Side::Left => left,
                Side::Right => right,
            };
            rel.tuple(idx).map(|t| t.key_text()).unwrap_or_else(|| format!("#{idx}"))
        };
        out.push_str(&format!(
            "Explanations ({} provenance-based, {} value-based, {} evidence matches)\n",
            self.provenance.len(),
            self.value.len(),
            self.evidence.len()
        ));
        for e in &self.provenance {
            out.push_str(&format!(
                "  [Δ] {} tuple `{}` has no counterpart\n",
                e.side,
                key_of(e.side, e.tuple)
            ));
        }
        for e in &self.value {
            out.push_str(&format!(
                "  [δ] {} tuple `{}` impact {} ↦ {}\n",
                e.side,
                key_of(e.side, e.tuple),
                e.old_impact,
                e.new_impact
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::{CanonicalRelation, CanonicalTuple};
    use explain3d_linkage::TupleMatch;
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn canon(name: &str, attr: &str, entries: &[(&str, f64)]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: name.to_string(),
            schema: Schema::from_pairs(&[(attr, ValueType::Str)]),
            key_attrs: vec![attr.to_string()],
            tuples: entries
                .iter()
                .enumerate()
                .map(|(i, (k, imp))| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: *imp,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    /// T1 = {Accounting:1, CS:2, Design:1}, T2 = {Accounting:1, CSE:1}.
    fn pair() -> (CanonicalRelation, CanonicalRelation) {
        (
            canon("Q1", "program", &[("Accounting", 1.0), ("CS", 2.0), ("Design", 1.0)]),
            canon("Q2", "major", &[("Accounting", 1.0), ("CSE", 1.0)]),
        )
    }

    #[test]
    fn building_and_accessors() {
        let mut e = ExplanationSet::new();
        assert!(e.is_empty());
        e.add_provenance(Side::Left, 2);
        e.add_value(Side::Right, 1, 1.0, 2.0);
        e.evidence.push(TupleMatch::new(0, 0, 1.0));
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        assert_eq!(e.provenance_tuples(Side::Left), BTreeSet::from([2]));
        assert!(e.provenance_tuples(Side::Right).is_empty());
        assert_eq!(e.value_changes(Side::Right).get(&1), Some(&2.0));
    }

    #[test]
    fn complete_explanation_for_the_running_example() {
        let (t1, t2) = pair();
        // Evidence: Accounting↔Accounting, CS↔CSE. Explanations: Design is
        // missing from T2 (Δ), CSE should have impact 2 (δ).
        let mut e = ExplanationSet::new();
        e.evidence.push(TupleMatch::new(0, 0, 1.0));
        e.evidence.push(TupleMatch::new(1, 1, 0.9));
        e.add_provenance(Side::Left, 2);
        e.add_value(Side::Right, 1, 1.0, 2.0);
        assert!(e.is_complete(&t1, &t2, SemanticRelation::Equivalent));
    }

    #[test]
    fn incomplete_when_impacts_do_not_balance() {
        let (t1, t2) = pair();
        let mut e = ExplanationSet::new();
        e.evidence.push(TupleMatch::new(0, 0, 1.0));
        e.evidence.push(TupleMatch::new(1, 1, 0.9));
        e.add_provenance(Side::Left, 2);
        // Missing the value explanation for CSE: CS has impact 2 vs CSE 1.
        let violations = e.completeness_violations(&t1, &t2, SemanticRelation::Equivalent, 1e-6);
        assert!(violations.iter().any(|v| v.contains("imbalance")));
        assert!(!e.is_complete(&t1, &t2, SemanticRelation::Equivalent));
    }

    #[test]
    fn incomplete_when_unmatched_tuple_keeps_impact() {
        let (t1, t2) = pair();
        let mut e = ExplanationSet::new();
        e.evidence.push(TupleMatch::new(0, 0, 1.0));
        e.evidence.push(TupleMatch::new(1, 1, 0.9));
        e.add_value(Side::Right, 1, 1.0, 2.0);
        // Design (left tuple 2) is neither removed nor matched.
        let violations = e.completeness_violations(&t1, &t2, SemanticRelation::Equivalent, 1e-6);
        assert!(violations.iter().any(|v| v.contains("unmatched")));
    }

    #[test]
    fn invalid_mapping_degree_is_reported() {
        let (t1, t2) = pair();
        let mut e = ExplanationSet::new();
        // Left tuple 1 matched twice violates the ≡ cardinality.
        e.evidence.push(TupleMatch::new(1, 0, 0.9));
        e.evidence.push(TupleMatch::new(1, 1, 0.9));
        e.add_provenance(Side::Left, 0);
        e.add_provenance(Side::Left, 2);
        let violations = e.completeness_violations(&t1, &t2, SemanticRelation::Equivalent, 1e-6);
        assert!(violations.iter().any(|v| v.contains("matched 2 times")));
        // Under ⊒ (only right side limited) the same evidence passes the
        // degree check (though impacts may still be off).
        let v2 = e.completeness_violations(&t1, &t2, SemanticRelation::MoreGeneral, 1e-6);
        assert!(!v2.iter().any(|v| v.contains("left tuple 1 matched")));
    }

    #[test]
    fn evidence_on_removed_tuples_is_flagged() {
        let (t1, t2) = pair();
        let mut e = ExplanationSet::new();
        e.evidence.push(TupleMatch::new(2, 1, 0.5));
        e.add_provenance(Side::Left, 2);
        let violations = e.completeness_violations(&t1, &t2, SemanticRelation::Equivalent, 1e-6);
        assert!(violations.iter().any(|v| v.contains("removed left tuple 2")));
    }

    #[test]
    fn merge_and_normalise() {
        let mut a = ExplanationSet::new();
        a.add_provenance(Side::Right, 5);
        let mut b = ExplanationSet::new();
        b.add_provenance(Side::Left, 1);
        b.add_value(Side::Left, 0, 1.0, 0.0);
        b.evidence.push(TupleMatch::new(0, 0, 0.8));
        a.merge(b);
        a.normalise();
        assert_eq!(a.len(), 3);
        assert_eq!(a.provenance[0].side, Side::Left);
        assert_eq!(a.evidence.len(), 1);
    }

    #[test]
    fn render_mentions_key_values() {
        let (t1, t2) = pair();
        let mut e = ExplanationSet::new();
        e.add_provenance(Side::Left, 2);
        e.add_value(Side::Right, 1, 1.0, 2.0);
        let text = e.render(&t1, &t2);
        assert!(text.contains("Design"));
        assert!(text.contains("CSE"));
        assert!(text.contains("↦"));
    }
}
