//! Stage 1 front-end: execute the two queries, derive provenance, and build
//! the canonical relations and initial tuple mapping.

use crate::attr_match::AttributeMatches;
use crate::canonical::{canonicalize, CanonicalRelation};
use explain3d_linkage::{
    generate_calibrated_mapping, generate_mapping, BucketCalibrator, MappingConfig, StringMetric,
    TupleMapping,
};
use explain3d_relation::prelude::{execute, Database, Query, QueryOutput, RelationError, Value};
use std::collections::HashSet;

/// One side of a comparison: a database and a query over it.
#[derive(Debug, Clone)]
pub struct QueryCase {
    /// The database the query runs against.
    pub database: Database,
    /// The query.
    pub query: Query,
}

impl QueryCase {
    /// Creates a case.
    pub fn new(database: Database, query: Query) -> Self {
        QueryCase { database, query }
    }
}

/// The output of Stage 1: query results, provenance, and canonical relations.
#[derive(Debug, Clone)]
pub struct PreparedComparison {
    /// Execution output of the left query (result + provenance).
    pub left_output: QueryOutput,
    /// Execution output of the right query.
    pub right_output: QueryOutput,
    /// Canonical relation `T1`.
    pub left_canonical: CanonicalRelation,
    /// Canonical relation `T2`.
    pub right_canonical: CanonicalRelation,
}

impl PreparedComparison {
    /// The two scalar query results, when the queries are aggregates.
    pub fn results(&self) -> (Value, Value) {
        (
            self.left_output.result.scalar().unwrap_or(Value::Null),
            self.right_output.result.scalar().unwrap_or(Value::Null),
        )
    }

    /// True when the two query results disagree (loose value comparison; a
    /// NULL result on either side also counts as a disagreement).
    pub fn disagrees(&self) -> bool {
        let (l, r) = self.results();
        if l.is_null() || r.is_null() {
            return true;
        }
        !l.loose_eq(&r)
    }
}

/// Executes both queries and canonicalises their provenance with respect to
/// the attribute matches (Stage 1 of the framework).
pub fn prepare(
    left: &QueryCase,
    right: &QueryCase,
    matches: &AttributeMatches,
) -> Result<PreparedComparison, RelationError> {
    if !matches.comparable() {
        return Err(RelationError::invalid(
            "queries are not comparable: no attribute matches were provided",
        ));
    }
    let left_output = execute(&left.database, &left.query)?;
    let right_output = execute(&right.database, &right.query)?;
    let left_canonical = canonicalize(&left_output.provenance, &matches.left_attrs());
    let right_canonical = canonicalize(&right_output.provenance, &matches.right_attrs());
    Ok(PreparedComparison { left_output, right_output, left_canonical, right_canonical })
}

/// Options for building the initial tuple mapping from the canonical
/// relations (Section 5.1.2).
#[derive(Debug, Clone)]
pub struct MappingOptions {
    /// String similarity metric.
    pub metric: StringMetric,
    /// Minimum raw similarity for a candidate pair to be kept.
    pub min_similarity: f64,
    /// Use token blocking when generating candidates.
    pub use_blocking: bool,
    /// Label one candidate out of every `sample_every` against the gold
    /// standard when calibrating probabilities.
    pub sample_every: usize,
}

impl Default for MappingOptions {
    fn default() -> Self {
        MappingOptions {
            metric: StringMetric::Jaccard,
            // Candidates below this similarity are almost never true matches
            // but would bloat the MILP; the calibrated probability of the
            // survivors still spans the full range.
            min_similarity: 0.15,
            use_blocking: true,
            sample_every: 1,
        }
    }
}

impl MappingOptions {
    /// The [`MappingConfig`] these options resolve to for the given
    /// attribute matches — public so the incremental session builds the
    /// *same* configuration [`build_initial_mapping`] would, which the
    /// byte-identity invariant of `re_explain` depends on.
    pub fn mapping_config(&self, matches: &AttributeMatches) -> MappingConfig {
        // Canonical-relation keys are projected to the key attributes, so the
        // similarity is computed pairwise over the key columns in order.
        let left_attrs = matches.left_attrs();
        let right_attrs = matches.right_attrs();
        let n = left_attrs.len().max(right_attrs.len());
        let mut pairs = Vec::new();
        for i in 0..n {
            let l = left_attrs.get(i).or(left_attrs.last());
            let r = right_attrs.get(i).or(right_attrs.last());
            if let (Some(l), Some(r)) = (l, r) {
                pairs.push((l.clone(), r.clone()));
            }
        }
        let mut cfg = MappingConfig::new(pairs)
            .with_metric(self.metric)
            .with_min_similarity(self.min_similarity);
        if !self.use_blocking {
            cfg = cfg.without_blocking();
        }
        cfg
    }
}

/// Builds the initial tuple mapping between two canonical relations.
///
/// With a gold evidence set (pairs of canonical tuple indexes) the
/// similarity-to-probability calibration of Section 5.1.2 is applied;
/// otherwise probabilities fall back to bucketed raw similarities.
pub fn build_initial_mapping(
    left: &CanonicalRelation,
    right: &CanonicalRelation,
    matches: &AttributeMatches,
    options: &MappingOptions,
    gold_evidence: Option<&HashSet<(usize, usize)>>,
) -> TupleMapping {
    let config = options.mapping_config(matches);
    let left_schema = left.schema.clone();
    let right_schema = right.schema.clone();
    // Key rows follow the key-attribute order, matching the schema of the
    // full provenance rows by name resolution.
    let left_rows: Vec<_> = left.tuples.iter().map(|t| t.representative.clone()).collect();
    let right_rows: Vec<_> = right.tuples.iter().map(|t| t.representative.clone()).collect();

    match gold_evidence {
        Some(gold) => {
            let (mapping, _calibrator) = generate_calibrated_mapping(
                &left_schema,
                &left_rows,
                &right_schema,
                &right_rows,
                &config,
                gold,
                options.sample_every.max(1),
            );
            mapping
        }
        None => {
            let calibrator = BucketCalibrator::with_default_buckets();
            generate_mapping(
                &left_schema,
                &left_rows,
                &right_schema,
                &right_rows,
                &config,
                &calibrator,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_relation::prelude::*;
    use explain3d_relation::row;

    /// The D1/D2 datasets and queries of Figure 1.
    fn figure1() -> (QueryCase, QueryCase) {
        let mut db1 = Database::new();
        db1.add(
            Relation::with_rows(
                "D1",
                Schema::from_pairs(&[("program", ValueType::Str), ("degree", ValueType::Str)]),
                vec![
                    row!["Accounting", "B.S."],
                    row!["CS", "B.A."],
                    row!["CS", "B.S."],
                    row!["ECE", "B.S."],
                    row!["EE", "B.S."],
                    row!["Management", "B.A."],
                    row!["Design", "B.A."],
                ],
            )
            .unwrap(),
        );
        let q1 = Query::scan("D1").named("Q1").count("program");

        let mut db2 = Database::new();
        db2.add(
            Relation::with_rows(
                "D2",
                Schema::from_pairs(&[("univ", ValueType::Str), ("major", ValueType::Str)]),
                vec![
                    row!["A", "Accounting"],
                    row!["A", "CSE"],
                    row!["A", "ECE"],
                    row!["A", "EE"],
                    row!["A", "Management"],
                    row!["A", "Design"],
                    row!["B", "Art"],
                ],
            )
            .unwrap(),
        );
        let q2 = Query::scan("D2")
            .named("Q2")
            .filter(Expr::col("univ").eq(Expr::lit("A")))
            .count("major");

        (QueryCase::new(db1, q1), QueryCase::new(db2, q2))
    }

    #[test]
    fn prepare_runs_stage_one_end_to_end() {
        let (left, right) = figure1();
        let matches = AttributeMatches::single_equivalent("program", "major");
        let prepared = prepare(&left, &right, &matches).unwrap();
        let (r1, r2) = prepared.results();
        assert_eq!(r1, Value::Int(7));
        assert_eq!(r2, Value::Int(6));
        assert!(prepared.disagrees());
        // Canonicalisation merges the two CS rows.
        assert_eq!(prepared.left_canonical.len(), 6);
        assert_eq!(prepared.right_canonical.len(), 6);
        assert_eq!(prepared.left_output.provenance.len(), 7);
    }

    #[test]
    fn non_comparable_queries_are_rejected() {
        let (left, right) = figure1();
        let err = prepare(&left, &right, &AttributeMatches::none()).unwrap_err();
        assert!(err.to_string().contains("not comparable"));
    }

    #[test]
    fn initial_mapping_covers_exact_matches() {
        let (left, right) = figure1();
        let matches = AttributeMatches::single_equivalent("program", "major");
        let prepared = prepare(&left, &right, &matches).unwrap();
        let mapping = build_initial_mapping(
            &prepared.left_canonical,
            &prepared.right_canonical,
            &matches,
            &MappingOptions::default(),
            None,
        );
        assert!(!mapping.is_empty());
        // Accounting ↔ Accounting must be a candidate with high probability.
        let acct_l = prepared.left_canonical.find_by_key(&[Value::str("Accounting")]).unwrap();
        let acct_r = prepared.right_canonical.find_by_key(&[Value::str("Accounting")]).unwrap();
        assert!(mapping.prob(acct_l, acct_r).unwrap() > 0.8);
    }

    #[test]
    fn gold_calibration_boosts_true_pairs() {
        let (left, right) = figure1();
        let matches = AttributeMatches::single_equivalent("program", "major");
        let prepared = prepare(&left, &right, &matches).unwrap();
        // Gold: identical names match.
        let mut gold = HashSet::new();
        for (i, lt) in prepared.left_canonical.tuples.iter().enumerate() {
            if let Some(j) = prepared.right_canonical.find_by_key(&lt.key) {
                gold.insert((i, j));
            }
        }
        let mapping = build_initial_mapping(
            &prepared.left_canonical,
            &prepared.right_canonical,
            &matches,
            &MappingOptions::default(),
            Some(&gold),
        );
        for &(i, j) in &gold {
            assert!(
                mapping.prob(i, j).unwrap_or(0.0) > 0.5,
                "gold pair ({i}, {j}) got low probability"
            );
        }
    }

    #[test]
    fn agreement_is_detected() {
        let (left, _) = figure1();
        let matches = AttributeMatches::single_equivalent("program", "program");
        let prepared = prepare(&left, &left, &matches).unwrap();
        assert!(!prepared.disagrees());
    }
}
