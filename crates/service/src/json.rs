//! A minimal in-tree JSON value type with **both** a parser and an emitter
//! (the bench crate's `json` module only emits). No serde in this build
//! environment — and none needed: the wire protocol is a handful of flat
//! shapes.
//!
//! The parser is written for untrusted input: it never panics, it bounds
//! recursion depth ([`MAX_DEPTH`]) so a deeply-nested body cannot overflow
//! a worker's stack, and every failure is a typed [`JsonError`] carrying
//! the byte offset. Integers without a fractional part parse as exact
//! [`Json::Int`] (`i64`), everything else as [`Json::Num`] (`f64`) —
//! relation impacts survive the wire bit-exactly for the magnitudes this
//! system uses, and the authoritative byte-identity check rides on the
//! server-computed fingerprint anyway.

use std::fmt;

/// Maximum nesting depth the parser accepts. The wire protocol needs 5;
/// 64 leaves headroom without letting adversarial nesting near the stack
/// limit.
pub const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent, in `i64` range.
    Int(i64),
    /// Any other number (non-finite values emit as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a key in an object, builder-style. A no-op with a
    /// debug assertion on non-objects (the emitter never constructs those).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(entries) = &mut self {
            let value = value.into();
            if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                entries.push((key.to_string(), value));
            }
        } else {
            debug_assert!(false, "Json::set on a non-object");
        }
        self
    }

    /// Looks up a key of an object (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an exact `i64` (floats only when integral and in range).
    pub fn as_i64(&self) -> Option<i64> {
        // The exact representable window is `-(2^63) <= n < 2^63`: both
        // bounds are exact `f64` values, `i64::MIN` itself is representable
        // (and convertible), while `2^63` is the first integer that is not.
        // An approximate guard like `n.abs() < 9.22e18` wrongly rejects the
        // whole `[9.22e18, 2^63)` band — and `i64::MIN` with it.
        const I64_LO: f64 = -9_223_372_036_854_775_808.0; // -(2^63), exact
        const I64_HI: f64 = 9_223_372_036_854_775_808.0; // 2^63, exact
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(n) if n.fract() == 0.0 && *n >= I64_LO && *n < I64_HI => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises with two-space indentation (for human-readable reports
    /// like `BENCH_pipeline.json` that should diff cleanly across runs).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let indent = |out: &mut String, depth: usize| {
            for _ in 0..depth {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

/// Compact serialisation (`{"k":1}`).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    fn write(&self, out: &mut String) {
        use fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's shortest round-trip f64 formatting. An
                    // integral float emits as `2` and re-parses as Int —
                    // acceptable: the server-side fingerprint, not the
                    // wire text, is the authority for bit-exactness.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        i64::try_from(n).map(Json::Int).unwrap_or(Json::Num(n as f64))
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes.get(self.pos..).is_some_and(|rest| rest.starts_with(lit.as_bytes())) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                let next_is_escape = self
                                    .bytes
                                    .get(self.pos..)
                                    .is_some_and(|rest| rest.starts_with(b"\\u"));
                                if next_is_escape {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000
                                        + ((u32::from(unit) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(u32::from(unit))
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 advanced pos past the digits already.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // on a char boundary is guaranteed to exist).
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let unit =
            u16::from_str_radix(digits, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|t| std::str::from_utf8(t).ok())
            .ok_or_else(|| self.err("invalid number"))?;
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_wire_shapes() {
        let doc = r#"{"name":"Q1","rows":[{"values":["CS \u00e9",1999],"impact":2.5}],"ok":true,"none":null,"neg":-3}"#;
        let parsed = Json::parse(doc).unwrap();
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("Q1"));
        assert_eq!(parsed.get("neg").and_then(Json::as_i64), Some(-3));
        let rows = parsed.get("rows").and_then(Json::as_arr).unwrap();
        let values = rows[0].get("values").and_then(Json::as_arr).unwrap();
        assert_eq!(values[0].as_str(), Some("CS é"));
        assert_eq!(values[1].as_i64(), Some(1999));
        assert_eq!(rows[0].get("impact").and_then(Json::as_f64), Some(2.5));
        // Emit → parse is stable.
        let reparsed = Json::parse(&parsed.to_string()).unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn integers_parse_exactly() {
        assert_eq!(Json::parse("9007199254740993").unwrap(), Json::Int(9007199254740993));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn as_i64_accepts_the_exact_i64_window() {
        // Floats in [9.22e18, 2^63): representable, integral, in range —
        // these were wrongly rejected by the old approximate guard.
        assert_eq!(Json::Num(9.22e18).as_i64(), Some(9_220_000_000_000_000_000));
        let near_max = 9_223_372_036_854_774_784.0_f64; // largest f64 < 2^63
        assert_eq!(Json::Num(near_max).as_i64(), Some(9_223_372_036_854_774_784));
        // i64::MIN is exactly representable and must round-trip.
        assert_eq!(Json::Num(-9_223_372_036_854_775_808.0).as_i64(), Some(i64::MIN));
        // 2^63 itself (and anything beyond either bound) is out of range.
        assert_eq!(Json::Num(9_223_372_036_854_775_808.0).as_i64(), None);
        assert_eq!(Json::Num(-9.3e18).as_i64(), None);
        assert_eq!(Json::Num(f64::NAN).as_i64(), None);
        assert_eq!(Json::Num(f64::INFINITY).as_i64(), None);
        assert_eq!(Json::Num(1.5).as_i64(), None);
        // Wire round-trip: scientific notation lands as Num and converts.
        assert_eq!(Json::parse("9.22e18").unwrap().as_i64(), Some(9_220_000_000_000_000_000));
        assert_eq!(
            Json::parse("-9223372036854775808").unwrap().as_i64(),
            Some(i64::MIN),
            "i64::MIN round-trips through the parser"
        );
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "\"unterminated",
            "01a",
            "--1",
            "1 2",
            "{\"a\":1,}",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\u{1}",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
        // A reasonable depth still parses.
        let ok = "[".repeat(32) + &"]".repeat(32);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(Json::parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".to_string()));
    }

    #[test]
    fn set_and_get_build_objects() {
        let j = Json::obj().set("a", 1i64).set("b", "x").set("a", 2i64);
        assert_eq!(j.get("a").and_then(Json::as_i64), Some(2));
        assert_eq!(j.to_string(), r#"{"a":2,"b":"x"}"#);
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn pretty_output_is_indented_and_reparses_identically() {
        let j = Json::obj()
            .set("a", 1usize)
            .set("b", vec![Json::Bool(false)])
            .set("nested", Json::obj().set("pi", 0.25));
        let pretty = j.to_pretty_string();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert!(pretty.ends_with("}\n"));
        assert_eq!(Json::parse(&pretty).unwrap(), j);
    }
}
