//! Readiness polling over raw fds: `epoll` on Linux, `poll(2)` elsewhere.
//!
//! The event-loop server needs exactly four operations — register, modify,
//! deregister, wait — over nonblocking sockets, and the workspace is
//! std-only, so both backends bind the syscalls directly with
//! `extern "C"` declarations (the same technique the serve binary already
//! uses for `signal(2)`). [`Backend::auto`] picks `epoll` where available;
//! the portable [`Backend::Poll`] path keeps the server working on any
//! unix (and keeps the fallback *compiled and tested* everywhere, per the
//! CI contract). Both backends are level-triggered: an event repeats until
//! the condition is consumed, so a partial read/write never strands a
//! connection.
//!
//! `epoll_wait` is O(ready) per call; the `poll(2)` fallback re-submits the
//! whole fd table each call, which is O(registered) — fine as a fallback,
//! and exactly why `epoll` is the default for the 10k-connection target.

use std::io;
use std::time::Duration;

/// Which readiness backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` — O(ready) waits, the default on Linux.
    Epoll,
    /// Portable `poll(2)` — O(registered) waits, works on any unix.
    Poll,
}

impl Backend {
    /// The best backend this platform offers.
    pub fn auto() -> Backend {
        if cfg!(target_os = "linux") {
            Backend::Epoll
        } else {
            Backend::Poll
        }
    }

    /// Parses a `--backend` flag value.
    pub fn parse(raw: &str) -> Option<Backend> {
        match raw {
            "epoll" => Some(Backend::Epoll),
            "poll" => Some(Backend::Poll),
            "auto" => Some(Backend::auto()),
            _ => None,
        }
    }
}

/// One readiness event: the registered token plus what fired.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (or the peer half-closed — a read will tell).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// Error or hangup: the connection is dead either way.
    pub hangup: bool,
}

/// What to watch an fd for. `NONE` keeps the registration but delivers
/// nothing — used while a connection's request executes on the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Deliver readable events.
    pub readable: bool,
    /// Deliver writable events.
    pub writable: bool,
}

impl Interest {
    /// Watch for readability only.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Watch for writability only.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Watch for nothing (parked while a request executes).
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

#[cfg(unix)]
mod sys {
    /// POSIX `pollfd`; `nfds_t` is `c_ulong` on the LP64 unixes we target.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

#[cfg(target_os = "linux")]
mod epoll_sys {
    /// The kernel ABI packs `epoll_event` on x86-64 (12 bytes); other
    /// architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }
}

enum Inner {
    #[cfg(target_os = "linux")]
    Epoll { epfd: i32, buf: Vec<epoll_sys::EpollEvent>, registered: usize },
    #[cfg(unix)]
    Poll { fds: Vec<sys::PollFd>, tokens: Vec<u64> },
    #[allow(dead_code)]
    Unsupported,
}

/// A readiness poller over raw fds; see the module docs.
pub struct Poller {
    inner: Inner,
}

/// Caps one `wait` batch on the epoll path (level-triggered: anything
/// beyond the cap is simply delivered by the next call).
#[cfg(target_os = "linux")]
const EPOLL_BATCH: usize = 1024;

impl Poller {
    /// Opens a poller on the requested backend.
    pub fn new(backend: Backend) -> io::Result<Poller> {
        match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => {
                // EPOLL_CLOEXEC: the serve binary may fork (tests spawn it).
                // SAFETY: epoll_create1 takes no pointers; the flag value is
                // EPOLL_CLOEXEC per <sys/epoll.h>. A failure returns -1 with
                // errno set, which is checked immediately below.
                let epfd = unsafe { epoll_sys::epoll_create1(0o2000000) };
                if epfd < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(Poller {
                    inner: Inner::Epoll {
                        epfd,
                        buf: vec![epoll_sys::EpollEvent { events: 0, data: 0 }; EPOLL_BATCH],
                        registered: 0,
                    },
                })
            }
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => {
                Err(io::Error::new(io::ErrorKind::Unsupported, "epoll requires Linux"))
            }
            #[cfg(unix)]
            Backend::Poll => {
                Ok(Poller { inner: Inner::Poll { fds: Vec::new(), tokens: Vec::new() } })
            }
            #[cfg(not(unix))]
            Backend::Poll => {
                Err(io::Error::new(io::ErrorKind::Unsupported, "poll(2) requires unix"))
            }
        }
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match &self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll { .. } => Backend::Epoll,
            #[cfg(unix)]
            Inner::Poll { .. } => Backend::Poll,
            Inner::Unsupported => Backend::Poll,
        }
    }

    /// How many fds are currently registered.
    pub fn registered(&self) -> usize {
        match &self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll { registered, .. } => *registered,
            #[cfg(unix)]
            Inner::Poll { fds, .. } => fds.len(),
            Inner::Unsupported => 0,
        }
    }

    /// Starts watching `fd` under `token`.
    pub fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll { epfd, registered, .. } => {
                let mut ev = epoll_sys::EpollEvent { events: epoll_events(interest), data: token };
                // SAFETY: `ev` is a live, properly aligned EpollEvent for the
                // duration of the call; the kernel reads it before returning
                // and keeps no reference. `epfd` is the fd we created in
                // `new` and have not closed (Drop is the only close). A bad
                // `fd` yields -1/EBADF, checked below — never UB.
                if unsafe { epoll_sys::epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_ADD, fd, &mut ev) } < 0
                {
                    return Err(io::Error::last_os_error());
                }
                *registered += 1;
                Ok(())
            }
            #[cfg(unix)]
            Inner::Poll { fds, tokens } => {
                fds.push(sys::PollFd { fd, events: poll_events(interest), revents: 0 });
                tokens.push(token);
                Ok(())
            }
            Inner::Unsupported => Err(unsupported()),
        }
    }

    /// Changes what `fd` is watched for.
    pub fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll { epfd, .. } => {
                let mut ev = epoll_sys::EpollEvent { events: epoll_events(interest), data: token };
                // SAFETY: same contract as the ADD call in `register` — `ev`
                // outlives the call, `epfd` is our open epoll fd, and an
                // unregistered/closed `fd` reports ENOENT/EBADF via -1,
                // checked below.
                if unsafe { epoll_sys::epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_MOD, fd, &mut ev) } < 0
                {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }
            #[cfg(unix)]
            Inner::Poll { fds, tokens } => {
                for (slot, t) in fds.iter_mut().zip(tokens.iter_mut()) {
                    if slot.fd == fd {
                        slot.events = poll_events(interest);
                        *t = token;
                        return Ok(());
                    }
                }
                Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
            }
            Inner::Unsupported => Err(unsupported()),
        }
    }

    /// Stops watching `fd`. Call before closing the fd.
    pub fn deregister(&mut self, fd: i32) {
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll { epfd, registered, .. } => {
                let mut ev = epoll_sys::EpollEvent { events: 0, data: 0 };
                // SAFETY: DEL ignores the event payload on modern kernels but
                // pre-2.6.9 ones dereference it, so a live `ev` is passed
                // anyway. `epfd` is our open epoll fd; failure (-1) just
                // means `fd` was never registered and is deliberately
                // ignored apart from the `registered` count.
                if unsafe { epoll_sys::epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_DEL, fd, &mut ev) }
                    == 0
                {
                    *registered = registered.saturating_sub(1);
                }
            }
            #[cfg(unix)]
            Inner::Poll { fds, tokens } => {
                if let Some(i) = fds.iter().position(|slot| slot.fd == fd) {
                    fds.swap_remove(i);
                    tokens.swap_remove(i);
                }
            }
            Inner::Unsupported => {}
        }
    }

    /// Waits up to `timeout` and appends ready events to `events` (which is
    /// cleared first). An interrupted wait (`EINTR`) returns empty.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        events.clear();
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll { epfd, buf, .. } => {
                // SAFETY: `buf` is a live Vec of `buf.len()` initialized
                // EpollEvent structs and `maxevents` is exactly that length,
                // so the kernel writes only within the allocation. EpollEvent
                // is plain-old-data; any bit pattern the kernel writes is a
                // valid value. Errors return -1 with errno, checked below.
                let n = unsafe {
                    epoll_sys::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(err);
                }
                for ev in buf.iter().take(n as usize) {
                    // Copy out of the (possibly packed) struct first.
                    let (bits, data) = (ev.events, ev.data);
                    events.push(Event {
                        token: data,
                        readable: bits & (epoll_sys::EPOLLIN | epoll_sys::EPOLLRDHUP) != 0,
                        writable: bits & epoll_sys::EPOLLOUT != 0,
                        hangup: bits & (epoll_sys::EPOLLERR | epoll_sys::EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
            #[cfg(unix)]
            Inner::Poll { fds, tokens } => {
                // SAFETY: `fds` is a live Vec of `fds.len()` PollFd structs
                // (repr(C) plain-old-data); poll(2) writes only the `revents`
                // field of those same entries. nfds is the exact length, so
                // no out-of-bounds access. Errors return -1, checked below.
                let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(err);
                }
                for (slot, token) in fds.iter().zip(tokens.iter()) {
                    if slot.revents == 0 {
                        continue;
                    }
                    events.push(Event {
                        token: *token,
                        readable: slot.revents & sys::POLLIN != 0,
                        writable: slot.revents & sys::POLLOUT != 0,
                        hangup: slot.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
                    });
                }
                Ok(())
            }
            Inner::Unsupported => Err(unsupported()),
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Inner::Epoll { epfd, .. } = &self.inner {
            // SAFETY: `epfd` was returned by epoll_create1 in `new`, is owned
            // exclusively by this Poller, and is closed exactly once (here).
            // close(2) cannot fault on an integer fd; a failure return is
            // ignorable because the fd is unusable afterwards either way.
            unsafe { sys::close(*epfd) };
        }
    }
}

fn unsupported() -> io::Error {
    io::Error::new(io::ErrorKind::Unsupported, "no readiness backend on this platform")
}

#[cfg(target_os = "linux")]
fn epoll_events(interest: Interest) -> u32 {
    let mut bits = epoll_sys::EPOLLRDHUP;
    if interest.readable {
        bits |= epoll_sys::EPOLLIN;
    }
    if interest.writable {
        bits |= epoll_sys::EPOLLOUT;
    }
    bits
}

#[cfg(unix)]
fn poll_events(interest: Interest) -> i16 {
    let mut bits = 0;
    if interest.readable {
        bits |= sys::POLLIN;
    }
    if interest.writable {
        bits |= sys::POLLOUT;
    }
    bits
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use explain3d_parallel::WakeSignal;

    fn backends() -> Vec<Backend> {
        if cfg!(target_os = "linux") {
            vec![Backend::Epoll, Backend::Poll]
        } else {
            vec![Backend::Poll]
        }
    }

    #[test]
    fn both_backends_report_pipe_readability() {
        for backend in backends() {
            let wake = WakeSignal::new().unwrap();
            let mut poller = Poller::new(backend).unwrap();
            poller.register(wake.fd(), 7, Interest::READ).unwrap();
            assert_eq!(poller.registered(), 1);

            let mut events = Vec::new();
            // Nothing written yet: a short wait stays empty.
            poller.wait(&mut events, Duration::from_millis(10)).unwrap();
            assert!(events.is_empty(), "{backend:?}: spurious event");

            wake.notify();
            poller.wait(&mut events, Duration::from_millis(1000)).unwrap();
            assert_eq!(events.len(), 1, "{backend:?}: wakeup not delivered");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);
            assert_eq!(wake.drain(), 1);

            // Parked interest delivers nothing even with a byte pending.
            wake.notify();
            poller.modify(wake.fd(), 7, Interest::NONE).unwrap();
            poller.wait(&mut events, Duration::from_millis(10)).unwrap();
            assert!(
                events.iter().all(|e| !e.readable),
                "{backend:?}: NONE interest must not deliver reads"
            );
            poller.modify(wake.fd(), 7, Interest::READ).unwrap();
            poller.wait(&mut events, Duration::from_millis(1000)).unwrap();
            assert!(events.iter().any(|e| e.readable), "{backend:?}: re-armed read lost");

            poller.deregister(wake.fd());
            assert_eq!(poller.registered(), 0);
        }
    }

    #[test]
    fn backend_parse_round_trips() {
        assert_eq!(Backend::parse("epoll"), Some(Backend::Epoll));
        assert_eq!(Backend::parse("poll"), Some(Backend::Poll));
        assert_eq!(Backend::parse("auto"), Some(Backend::auto()));
        assert_eq!(Backend::parse("uring"), None);
    }
}
