//! Service-side telemetry: the wired-up metric handles, the trace ring,
//! and the slow-request log.
//!
//! Everything here is **optional at runtime**: [`ServiceConfig::telemetry`]
//! is an `Option<Arc<Telemetry>>` and every hot-path instrumentation site
//! is a single branch on that option — with telemetry off the service
//! reads no clocks, touches no extra atomics, and allocates nothing (the
//! same unarmed-shim discipline the fault-injection layer uses).
//!
//! The struct pre-registers every hot-path metric once at construction,
//! so recording is an `Arc` deref plus relaxed `fetch_add`s — never a
//! registry lookup. Scrape-only values (registry lifetime counters, pool
//! stats, footprints) are sampled at `/metrics` render time instead of
//! being mirrored continuously.
//!
//! [`ServiceConfig::telemetry`]: crate::registry::ServiceConfig

use explain3d_parallel::PoolMonitor;
use explain3d_telemetry::{Counter, Histogram, Registry, Trace, TraceIdGen, TraceRing};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Route labels of the per-route request counters, in index order (the
/// index is what [`Telemetry::route_counter`] takes; `other` is last).
pub const ROUTES: [&str; 10] = [
    "create", "explain", "delta", "report", "drop", "sessions", "healthz", "metrics", "debug",
    "other",
];

/// How telemetry is set up; see [`Telemetry::new`].
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Seed of the trace-id stream (deterministic per seed).
    pub trace_seed: u64,
    /// Roughly how many finished traces `/debug/trace` retains.
    pub trace_capacity: usize,
    /// Optional on-disk slow-request log.
    pub slow_log: Option<SlowLogConfig>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { trace_seed: 0xE3D, trace_capacity: 1024, slow_log: None }
    }
}

/// Slow-log setup: requests slower than `threshold` append one JSON line
/// to `path`, which is truncated (restarted) whenever it would exceed
/// `max_bytes` — the log is bounded, never unbounded-append.
#[derive(Debug, Clone)]
pub struct SlowLogConfig {
    /// File the log lines are appended to.
    pub path: PathBuf,
    /// Requests at or above this wall time are logged.
    pub threshold: Duration,
    /// Size cap; the file restarts from empty when it would be exceeded.
    pub max_bytes: u64,
}

/// Default slow-log size cap (8 MiB).
pub const SLOW_LOG_MAX_BYTES: u64 = 8 << 20;

struct SlowLogFile {
    file: File,
    len: u64,
}

struct SlowLog {
    threshold_us: u64,
    max_bytes: u64,
    file: Mutex<SlowLogFile>,
}

impl SlowLog {
    fn open(config: &SlowLogConfig) -> std::io::Result<SlowLog> {
        let file = OpenOptions::new().create(true).append(true).open(&config.path)?;
        let len = file.metadata()?.len();
        Ok(SlowLog {
            threshold_us: config.threshold.as_micros() as u64,
            max_bytes: config.max_bytes.max(4096),
            file: Mutex::new(SlowLogFile { file, len }),
        })
    }

    fn record(&self, line: &str) {
        let mut guard = match self.file.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if guard.len + line.len() as u64 + 1 > self.max_bytes {
            // Bounded by restart: the cap is a ceiling, not a ring — the
            // newest entries matter and a truncate is one syscall.
            if guard.file.set_len(0).is_ok() {
                guard.len = 0;
            }
        }
        if guard.file.write_all(line.as_bytes()).is_ok() && guard.file.write_all(b"\n").is_ok() {
            guard.len += line.len() as u64 + 1;
        }
    }
}

/// A mutable borrow of an in-flight trace plus the span index new child
/// spans should parent under. Threaded `Option`ally through the registry's
/// traced entry points.
pub struct TraceCtx<'a> {
    /// The request's trace.
    pub trace: &'a mut Trace,
    /// Parent index for spans recorded at this level.
    pub parent: u32,
}

/// The service's armed telemetry: metric registry + pre-registered
/// hot-path handles, trace-id source, trace retention ring, uptime epoch,
/// and the optional slow log. Shared as one `Arc` via
/// [`ServiceConfig::telemetry`].
///
/// [`ServiceConfig::telemetry`]: crate::registry::ServiceConfig
pub struct Telemetry {
    registry: Arc<Registry>,
    ids: TraceIdGen,
    ring: TraceRing,
    started: Instant,
    slow: Option<SlowLog>,
    pool: OnceLock<PoolMonitor>,
    route_requests: Vec<Arc<Counter>>,
    /// End-to-end request wall time (first byte in → last byte out), µs.
    pub request_us: Arc<Histogram>,
    /// Parse-complete → a pool worker picks the request up, µs.
    pub queue_wait_us: Arc<Histogram>,
    /// Cold `explain` pipeline run time, µs.
    pub explain_run_us: Arc<Histogram>,
    /// Delta `re_explain` run time (a coalesced batch records one run per
    /// ticket — the run each ack waited on), µs.
    pub delta_run_us: Arc<Histogram>,
    /// Delta waiter time: ticket enqueue → outcome available, µs.
    pub delta_wait_us: Arc<Histogram>,
    /// Durable snapshot write time, µs.
    pub snapshot_us: Arc<Histogram>,
    /// WAL record append (the write syscall), µs.
    pub wal_append_us: Arc<Histogram>,
    /// WAL fsync time (only appends the sync policy flushed), µs.
    pub fsync_us: Arc<Histogram>,
    /// Stage-2 work-stealing events summed across pipeline runs.
    pub steals: Arc<Counter>,
    /// Requests answered `429` by the event loop (admission shed).
    pub shed: Arc<Counter>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("ring_capacity", &self.ring.capacity()).finish()
    }
}

impl Telemetry {
    /// Builds an armed telemetry instance (fails only if the slow-log
    /// file cannot be opened).
    pub fn new(config: TelemetryConfig) -> std::io::Result<Telemetry> {
        let registry = Arc::new(Registry::new());
        let route_requests = ROUTES
            .iter()
            .zip(ROUTE_LABELS)
            .map(|(_, labels)| {
                registry.counter_labeled(
                    "e3d_http_requests_total",
                    labels,
                    "Requests completed, by route",
                )
            })
            .collect();
        let slow = match &config.slow_log {
            Some(cfg) => Some(SlowLog::open(cfg)?),
            None => None,
        };
        Ok(Telemetry {
            ids: TraceIdGen::new(config.trace_seed),
            ring: TraceRing::new(config.trace_capacity),
            started: Instant::now(),
            slow,
            pool: OnceLock::new(),
            route_requests,
            request_us: registry
                .histogram("e3d_request_us", "End-to-end request wall time, microseconds"),
            queue_wait_us: registry.histogram(
                "e3d_queue_wait_us",
                "Admission-queue wait before a worker picks the request up, microseconds",
            ),
            explain_run_us: registry
                .histogram("e3d_explain_run_us", "Cold explain pipeline run time, microseconds"),
            delta_run_us: registry
                .histogram("e3d_delta_run_us", "Delta re_explain run time, microseconds"),
            delta_wait_us: registry.histogram(
                "e3d_delta_wait_us",
                "Delta ticket enqueue-to-outcome wait, microseconds",
            ),
            snapshot_us: registry
                .histogram("e3d_snapshot_us", "Durable snapshot write time, microseconds"),
            wal_append_us: registry
                .histogram("e3d_wal_append_us", "WAL record append (write) time, microseconds"),
            fsync_us: registry.histogram("e3d_fsync_us", "WAL fsync time, microseconds"),
            steals: registry
                .counter("e3d_steals_total", "Stage-2 work-stealing events across pipeline runs"),
            shed: registry
                .counter("e3d_requests_shed_total", "Requests answered 429 by the event loop"),
            registry,
        })
    }

    /// The underlying metric registry (for `/metrics` rendering and for
    /// registering further metrics).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Seconds since this telemetry instance was armed (process uptime as
    /// far as the service is concerned).
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Attaches the task pool's monitor once the server has built its
    /// pool; later calls are no-ops (first pool wins).
    pub fn attach_pool(&self, monitor: PoolMonitor) {
        let _ = self.pool.set(monitor);
    }

    /// The attached pool monitor, if the server has started.
    pub fn pool(&self) -> Option<&PoolMonitor> {
        self.pool.get()
    }

    /// Starts a trace for a request whose first bytes arrived at `epoch`.
    pub fn begin_trace(&self, epoch: Instant) -> Trace {
        Trace::new(self.ids.next_id(), epoch)
    }

    /// The trace retention ring (`/debug/trace`, `/debug/slow`).
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// Per-route completion counter; `route` indexes [`ROUTES`] (out of
    /// range clamps to `other`).
    pub fn route_counter(&self, route: usize) -> &Counter {
        let idx = route.min(self.route_requests.len() - 1);
        &self.route_requests[idx]
    }

    /// Seals a finished request: observes the end-to-end histogram, bumps
    /// the route counter, parks the trace in the ring, and appends a slow
    /// log line if the request was over threshold.
    pub fn finish_request(&self, trace: Trace, route: usize, total_us: u64) {
        self.request_us.observe(total_us);
        self.route_counter(route).inc();
        let id = trace.id;
        self.ring.push(trace.finish(total_us));
        if let Some(slow) = &self.slow {
            if total_us >= slow.threshold_us {
                let label = ROUTES[route.min(ROUTES.len() - 1)];
                slow.record(&format!(
                    "{{\"trace_id\":\"{id:016x}\",\"route\":\"{label}\",\"total_us\":{total_us}}}"
                ));
            }
        }
    }
}

/// Fixed label strings for the per-route counters (parallel to
/// [`ROUTES`]; `&'static` because the exposition requires it).
const ROUTE_LABELS: [&str; 10] = [
    r#"route="create""#,
    r#"route="explain""#,
    r#"route="delta""#,
    r#"route="report""#,
    r#"route="drop""#,
    r#"route="sessions""#,
    r#"route="healthz""#,
    r#"route="metrics""#,
    r#"route="debug""#,
    r#"route="other""#,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_log_is_bounded_by_restart() {
        let dir = std::env::temp_dir().join(format!("e3d-slowlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slow.jsonl");
        let log = SlowLog::open(&SlowLogConfig {
            path: path.clone(),
            threshold: Duration::from_millis(1),
            max_bytes: 0, // clamps to the 4096-byte floor
        })
        .unwrap();
        let line = "x".repeat(100);
        for _ in 0..200 {
            log.record(&line);
        }
        let len = std::fs::metadata(&path).unwrap().len();
        assert!(len <= 4096, "slow log must stay under its cap, got {len}");
        assert!(len > 0, "slow log must retain the newest entries");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn finish_request_parks_the_trace_and_counts_the_route() {
        let tel = Telemetry::new(TelemetryConfig::default()).unwrap();
        let trace = tel.begin_trace(Instant::now());
        let id = trace.id;
        tel.finish_request(trace, 2, 1234);
        assert_eq!(tel.ring().get(id).unwrap().total_us, 1234);
        assert_eq!(tel.route_counter(2).get(), 1);
        assert_eq!(tel.request_us.snapshot().count(), 1);
        // Out-of-range route indices clamp to `other` instead of panicking.
        tel.route_counter(usize::MAX).inc();
        assert_eq!(tel.route_counter(ROUTES.len() - 1).get(), 1);
    }
}
