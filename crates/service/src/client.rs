//! A minimal blocking HTTP/1.1 client over [`std::net::TcpStream`] — just
//! enough to drive the server from the smoke tests, the CI lane, and the
//! closed-loop bench clients. One request per call on a persistent
//! keep-alive connection.

use crate::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A keep-alive connection to an `explain3d-serve` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A client-side failure (connection, protocol, or JSON decode).
#[derive(Debug)]
pub struct ClientError(pub String);

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client error: {}", self.0)
    }
}

impl std::error::Error for ClientError {}

fn err(what: impl Into<String>) -> ClientError {
    ClientError(what.into())
}

impl Client {
    /// Connects with a 10-second I/O timeout.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| err(format!("connect: {e}")))?;
        stream.set_read_timeout(Some(Duration::from_secs(10))).map_err(|e| err(e.to_string()))?;
        stream.set_write_timeout(Some(Duration::from_secs(10))).map_err(|e| err(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone().map_err(|e| err(e.to_string()))?);
        Ok(Client { reader, writer: stream })
    }

    /// Sends one request and reads the response, returning the status code
    /// and parsed JSON body.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, Json), ClientError> {
        let mut message = format!(
            "{method} {path} HTTP/1.1\r\nHost: explain3d\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        message.push_str(body);
        self.writer.write_all(message.as_bytes()).map_err(|e| err(format!("send: {e}")))?;
        self.writer.flush().map_err(|e| err(format!("send: {e}")))?;

        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).map_err(|e| err(format!("recv: {e}")))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(format!("bad status line {status_line:?}")))?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            let n = self.reader.read_line(&mut header).map_err(|e| err(e.to_string()))?;
            if n == 0 {
                return Err(err("truncated response headers"));
            }
            let trimmed = header.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| err("bad Content-Length"))?;
                }
            }
        }
        let mut buf = vec![0u8; content_length];
        self.reader.read_exact(&mut buf).map_err(|e| err(format!("recv body: {e}")))?;
        let text = String::from_utf8(buf).map_err(|_| err("response body is not UTF-8"))?;
        let json = Json::parse(&text).map_err(|e| err(format!("response JSON: {e}")))?;
        Ok((status, json))
    }
}
