//! A minimal blocking HTTP/1.1 client over [`std::net::TcpStream`] — just
//! enough to drive the server from the smoke tests, the CI lane, and the
//! closed-loop bench clients. One request per call on a persistent
//! keep-alive connection.
//!
//! [`Client`] is the raw single-attempt primitive. [`RetryClient`] wraps
//! it with the full failure-model discipline:
//!
//! - per-attempt I/O **timeouts** (a silent server cannot hang the caller),
//! - **jittered exponential backoff** between attempts (full jitter, a
//!   seeded xorshift so test schedules are reproducible),
//! - `Retry-After` honoured on `503`/`429`,
//! - **idempotent deltas**: [`RetryClient::delta`] stamps the body with a
//!   client-generated `request_id` *before* the first attempt, so a retry
//!   of an acked-but-response-lost delta is answered from the server's
//!   dedup window instead of being applied twice.

use crate::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A keep-alive connection to an `explain3d-serve` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A client-side failure (connection, protocol, or JSON decode).
#[derive(Debug)]
pub struct ClientError(pub String);

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client error: {}", self.0)
    }
}

impl std::error::Error for ClientError {}

fn err(what: impl Into<String>) -> ClientError {
    ClientError(what.into())
}

impl Client {
    /// Connects with a 10-second I/O timeout.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        Client::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with an explicit per-operation I/O timeout (reads and
    /// writes both): a server that accepts and then goes silent costs the
    /// caller at most `timeout` per attempt, never a hang.
    pub fn connect_with_timeout(
        addr: SocketAddr,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let stream =
            TcpStream::connect_timeout(&addr, timeout).map_err(|e| err(format!("connect: {e}")))?;
        stream.set_read_timeout(Some(timeout)).map_err(|e| err(e.to_string()))?;
        stream.set_write_timeout(Some(timeout)).map_err(|e| err(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone().map_err(|e| err(e.to_string()))?);
        Ok(Client { reader, writer: stream })
    }

    /// Sends one request and reads the response, returning the status code
    /// and parsed JSON body.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, Json), ClientError> {
        let response = self.request_full(method, path, body)?;
        Ok((response.status, response.body))
    }

    /// [`Client::request`] keeping the response headers the retry layer
    /// cares about (`Retry-After`).
    pub fn request_full(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<Response, ClientError> {
        let mut message = format!(
            "{method} {path} HTTP/1.1\r\nHost: explain3d\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        message.push_str(body);
        self.writer.write_all(message.as_bytes()).map_err(|e| err(format!("send: {e}")))?;
        self.writer.flush().map_err(|e| err(format!("send: {e}")))?;

        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).map_err(|e| err(format!("recv: {e}")))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(format!("bad status line {status_line:?}")))?;
        let mut content_length = 0usize;
        let mut retry_after = None;
        loop {
            let mut header = String::new();
            let n = self.reader.read_line(&mut header).map_err(|e| err(e.to_string()))?;
            if n == 0 {
                return Err(err("truncated response headers"));
            }
            let trimmed = header.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| err("bad Content-Length"))?;
                } else if name.eq_ignore_ascii_case("retry-after") {
                    retry_after = value.trim().parse::<u64>().ok().map(Duration::from_secs);
                }
            }
        }
        let mut buf = vec![0u8; content_length];
        self.reader.read_exact(&mut buf).map_err(|e| err(format!("recv body: {e}")))?;
        let text = String::from_utf8(buf).map_err(|_| err("response body is not UTF-8"))?;
        let json = Json::parse(&text).map_err(|e| err(format!("response JSON: {e}")))?;
        Ok(Response { status, body: json, retry_after })
    }
}

/// One decoded HTTP response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Parsed JSON body.
    pub body: Json,
    /// The server's `Retry-After` hint, when present.
    pub retry_after: Option<Duration>,
}

/// How [`RetryClient`] paces itself.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (min 1).
    pub attempts: u32,
    /// Backoff ceiling before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Hard cap on any single sleep, including `Retry-After` hints.
    pub max_backoff: Duration,
    /// Per-attempt I/O timeout (connect, send, and receive each).
    pub io_timeout: Duration,
    /// Jitter PRNG seed — fix it to make a retry schedule reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// xorshift64 step (state must stay nonzero — the constructor guarantees
/// it).
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A [`Client`] wrapper that reconnects, times out, and retries with
/// full-jitter exponential backoff. Transient failures — I/O errors,
/// truncated responses, `429`, `503` — are retried; every other status is
/// returned as-is (a `409` or `400` will not become a `200` by asking
/// again).
pub struct RetryClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    conn: Option<Client>,
    rng: u64,
    next_id: u64,
}

impl RetryClient {
    /// Builds a lazy client (no connection until the first call).
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> RetryClient {
        let rng = policy.seed | 1; // keep xorshift out of its zero fixpoint
        RetryClient { addr, policy, conn: None, rng, next_id: 0 }
    }

    /// A fresh client-unique idempotency key. Ties the key to the jitter
    /// seed so two clients with different seeds never collide, and two
    /// runs with the same seed replay the same ids (deterministic tests).
    pub fn idempotency_key(&mut self) -> String {
        self.next_id += 1;
        format!("{:016x}-{:x}", self.policy.seed | 1, self.next_id)
    }

    /// Full-jitter backoff for 0-based retry `n`: uniform in
    /// `[0, min(max_backoff, base_backoff * 2^n)]`.
    fn backoff(&mut self, n: u32) -> Duration {
        let ceiling =
            self.policy.base_backoff.saturating_mul(1u32 << n.min(16)).min(self.policy.max_backoff);
        let nanos = ceiling.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(xorshift64(&mut self.rng) % (nanos + 1))
    }

    /// Sends `method path` with retries. Connections are (re)established
    /// as needed; an I/O failure poisons the connection so the next
    /// attempt starts on a fresh socket (the old one may hold half a
    /// response).
    ///
    /// Non-idempotent callers beware: a retried request that the server
    /// already executed will execute again unless it carries a
    /// `request_id` — use [`RetryClient::delta`] for deltas.
    pub fn call(&mut self, method: &str, path: &str, body: &str) -> Result<Response, ClientError> {
        let attempts = self.policy.attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let hint = match &last_err {
                    Some(RetryCause::Status(response)) => response.retry_after,
                    _ => None,
                };
                // Honour the server's hint, but never sleep past the
                // policy cap — the caller bounded its patience, not the
                // server.
                let pause = match hint {
                    Some(hint) => hint.min(self.policy.max_backoff),
                    None => self.backoff(attempt - 1),
                };
                std::thread::sleep(pause);
            }
            let conn = match self.conn.as_mut() {
                Some(conn) => conn,
                None => match Client::connect_with_timeout(self.addr, self.policy.io_timeout) {
                    Ok(fresh) => self.conn.insert(fresh),
                    Err(e) => {
                        last_err = Some(RetryCause::Io(e));
                        continue;
                    }
                },
            };
            match conn.request_full(method, path, body) {
                Ok(response) if response.status == 429 || response.status == 503 => {
                    last_err = Some(RetryCause::Status(response));
                }
                Ok(response) => return Ok(response),
                Err(e) => {
                    self.conn = None;
                    last_err = Some(RetryCause::Io(e));
                }
            }
        }
        Err(match last_err {
            Some(RetryCause::Io(e)) => err(format!("{} (after {attempts} attempts)", e.0)),
            Some(RetryCause::Status(response)) => err(format!(
                "still {} after {attempts} attempts: {}",
                response.status, response.body
            )),
            None => err("no attempts made"),
        })
    }

    /// Applies a delta exactly once. The body is stamped with a generated
    /// `request_id` (unless the caller already set one) **before** the
    /// first attempt, so every retry carries the same id and an
    /// acked-but-response-lost apply is answered from the server's dedup
    /// window instead of running twice.
    pub fn delta(&mut self, session: &str, body: &str) -> Result<Response, ClientError> {
        let json = Json::parse(body).map_err(|e| err(format!("delta body: {e}")))?;
        let stamped = if json.get("request_id").is_some() {
            body.to_string()
        } else {
            json.set("request_id", self.idempotency_key()).to_string()
        };
        self.call("POST", &format!("/sessions/{session}/delta"), &stamped)
    }
}

enum RetryCause {
    Io(ClientError),
    Status(Response),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unroutable() -> RetryClient {
        // TEST-NET-1 (RFC 5737): connect attempts fail fast or time out.
        let addr: SocketAddr = "192.0.2.1:1".parse().unwrap();
        RetryClient::new(addr, RetryPolicy::default())
    }

    #[test]
    fn backoff_is_jittered_bounded_and_reproducible() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            seed: 42,
            ..RetryPolicy::default()
        };
        let mut a = RetryClient::new("127.0.0.1:1".parse().unwrap(), policy.clone());
        let mut b = RetryClient::new("127.0.0.1:1".parse().unwrap(), policy);
        for n in 0..10 {
            let pause = a.backoff(n);
            let ceiling = Duration::from_millis(10).saturating_mul(1 << n.min(16));
            assert!(pause <= ceiling.min(Duration::from_millis(80)), "attempt {n}: {pause:?}");
            assert_eq!(pause, b.backoff(n), "same seed, same schedule");
        }
    }

    #[test]
    fn idempotency_keys_are_unique_per_client_and_stable_per_seed() {
        let mut a = unroutable();
        let mut b = unroutable();
        let first = a.idempotency_key();
        assert_ne!(first, a.idempotency_key(), "keys never repeat within a client");
        assert_eq!(first, b.idempotency_key(), "same seed replays the same keys");
    }

    #[test]
    fn delta_stamps_a_request_id_once() {
        let mut client = unroutable();
        let body = Json::parse(r#"{"ops": []}"#).unwrap();
        let stamped = body.set("request_id", client.idempotency_key()).to_string();
        // A caller-provided id is preserved verbatim (the exactly-once
        // contract belongs to whoever generated the id).
        let json = Json::parse(&stamped).unwrap();
        assert!(json.get("request_id").is_some());
    }
}
