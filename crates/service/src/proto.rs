//! Incremental, byte-bounded HTTP/1.x request parsing for the event loop.
//!
//! The readiness-based server accumulates whatever bytes a socket has into
//! a per-connection buffer and asks [`parse_request`] after every read:
//! the answer is *need more*, *a complete request* (plus how many bytes it
//! consumed, so pipelined requests queue up naturally), or *a protocol
//! error* to answer and close on. The parser never blocks and never buffers
//! beyond its limits: a request line or header line is capped at
//! [`MAX_LINE_BYTES`] bytes of **content** (the terminating `\r\n` is not
//! counted against the cap — the blocking parser's off-by-one), at most
//! [`MAX_HEADERS`] headers are read, and `Content-Length` is validated
//! against the configured body cap before a single body byte is awaited.
//!
//! Version handling: `HTTP/1.1` defaults to keep-alive, `HTTP/1.0` (and a
//! missing version token) defaults to **close** — an HTTP/1.0 client that
//! never sends `Connection: keep-alive` must not hang until the idle
//! timeout waiting for its close. A `Connection` header overrides either
//! default in both directions.
//!
//! Session names in request paths are percent-decoded by
//! [`percent_decode`]: `%20` and friends address the same session a
//! library caller names with the decoded string. An encoded slash (`%2F`)
//! is rejected — it would smuggle a path separator into a single segment —
//! as are `%00` and malformed escapes.

use crate::error::ServiceError;
use crate::json::Json;

/// Hard cap on the content of one request or header line, excluding the
/// line terminator.
pub const MAX_LINE_BYTES: usize = 8192;

/// Hard cap on the number of request headers.
pub const MAX_HEADERS: usize = 64;

/// One fully parsed request.
#[derive(Debug, Clone)]
pub struct ParsedRequest {
    /// Uppercased request method.
    pub method: String,
    /// The raw request target (percent-decoding happens per segment at
    /// routing time).
    pub path: String,
    /// The UTF-8 request body.
    pub body: String,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// The outcome of one parse attempt over the bytes buffered so far.
pub enum Parse {
    /// The buffer does not hold a complete request yet (and is still
    /// within every limit) — read more.
    NeedMore,
    /// A complete request; the first `consumed` buffer bytes belong to it.
    Complete {
        /// The parsed request.
        request: ParsedRequest,
        /// Bytes of the buffer this request consumed (head + body).
        consumed: usize,
    },
    /// A protocol violation: answer it and close the connection.
    Invalid(ServiceError),
}

/// Scans for the next line end. Returns `(content, next_start)` — the
/// content excludes the `\n` and an optional preceding `\r`.
fn find_line(buf: &[u8], start: usize) -> Option<(&[u8], usize)> {
    let rest = buf.get(start..)?;
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let content = match rest.get(..nl)? {
        [head @ .., b'\r'] => head,
        content => content,
    };
    Some((content, start + nl + 1))
}

/// Attempts to parse one request from `buf`; see the module docs.
pub fn parse_request(buf: &[u8], max_body: usize) -> Parse {
    let mut cursor = 0usize;

    // Request line.
    let Some((line, after_line)) = find_line(buf, cursor) else {
        // No terminator yet: the content so far is at least `len - 1`
        // bytes (the last byte could still turn out to be a `\r`).
        if buf.len() - cursor > MAX_LINE_BYTES + 1 {
            return Parse::Invalid(ServiceError::TooLarge("request line".into()));
        }
        return Parse::NeedMore;
    };
    if line.len() > MAX_LINE_BYTES {
        return Parse::Invalid(ServiceError::TooLarge("request line".into()));
    }
    let Ok(request_line) = std::str::from_utf8(line) else {
        return Parse::Invalid(ServiceError::BadRequest("request line is not UTF-8".into()));
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Parse::Invalid(ServiceError::BadRequest("malformed request line".into()));
    };
    let method = method.to_ascii_uppercase();
    let path = path.to_string();
    // HTTP/1.1 persists by default; HTTP/1.0 — and anything that does not
    // declare a version — must be treated as one-shot unless the client
    // asks for keep-alive explicitly.
    let mut keep_alive = matches!(parts.next(), Some(v) if v.eq_ignore_ascii_case("HTTP/1.1"));
    cursor = after_line;

    // Headers.
    let mut content_length = 0usize;
    let mut headers_seen = 0usize;
    let body_start = loop {
        let Some((line, after_line)) = find_line(buf, cursor) else {
            if buf.len() - cursor > MAX_LINE_BYTES + 1 {
                return Parse::Invalid(ServiceError::TooLarge("header line".into()));
            }
            return Parse::NeedMore;
        };
        if line.len() > MAX_LINE_BYTES {
            return Parse::Invalid(ServiceError::TooLarge("header line".into()));
        }
        if line.is_empty() {
            break after_line; // blank line: end of head
        }
        headers_seen += 1;
        if headers_seen > MAX_HEADERS {
            return Parse::Invalid(ServiceError::TooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let Ok(header) = std::str::from_utf8(line) else {
            return Parse::Invalid(ServiceError::BadRequest("header is not UTF-8".into()));
        };
        let Some((name, value)) = header.split_once(':') else {
            return Parse::Invalid(ServiceError::BadRequest("malformed header".into()));
        };
        let value = value.trim();
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => {
                let Ok(n) = value.parse::<usize>() else {
                    return Parse::Invalid(ServiceError::BadRequest("bad Content-Length".into()));
                };
                if n > max_body {
                    return Parse::Invalid(ServiceError::TooLarge(format!(
                        "body of {n} bytes (limit {max_body})"
                    )));
                }
                content_length = n;
            }
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
            "transfer-encoding" => {
                return Parse::Invalid(ServiceError::BadRequest(
                    "chunked transfer encoding is not supported; send Content-Length".into(),
                ))
            }
            _ => {}
        }
        cursor = after_line;
    };

    // Body.
    let body_end = body_start + content_length;
    let Some(raw_body) = buf.get(body_start..body_end) else {
        return Parse::NeedMore;
    };
    let Ok(body) = std::str::from_utf8(raw_body) else {
        return Parse::Invalid(ServiceError::BadRequest("body is not UTF-8".into()));
    };
    Parse::Complete {
        request: ParsedRequest { method, path, body: body.to_string(), keep_alive },
        consumed: body_end,
    }
}

/// Percent-decodes one path segment (a session name). Rejects `%2F` (an
/// encoded path separator inside a single segment), `%00`, malformed
/// escapes, and non-UTF-8 results — each as a typed 400.
pub fn percent_decode(segment: &str) -> Result<String, ServiceError> {
    if !segment.contains('%') {
        return Ok(segment.to_string());
    }
    let bytes = segment.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        if b != b'%' {
            out.push(b);
            i += 1;
            continue;
        }
        let hex = |b: u8| -> Option<u8> {
            match b {
                b'0'..=b'9' => Some(b - b'0'),
                b'a'..=b'f' => Some(b - b'a' + 10),
                b'A'..=b'F' => Some(b - b'A' + 10),
                _ => None,
            }
        };
        let (Some(&hi), Some(&lo)) = (bytes.get(i + 1), bytes.get(i + 2)) else {
            return Err(ServiceError::BadRequest("truncated percent escape in name".into()));
        };
        let (Some(hi), Some(lo)) = (hex(hi), hex(lo)) else {
            return Err(ServiceError::BadRequest("malformed percent escape in name".into()));
        };
        let byte = hi * 16 + lo;
        match byte {
            b'/' => {
                return Err(ServiceError::BadRequest(
                    "session names may not contain an encoded '/'".into(),
                ))
            }
            0 => return Err(ServiceError::BadRequest("session names may not contain NUL".into())),
            _ => out.push(byte),
        }
        i += 3;
    }
    String::from_utf8(out)
        .map_err(|_| ServiceError::BadRequest("session name is not UTF-8 after decoding".into()))
}

/// Encodes one response (status line, JSON content headers, connection
/// disposition, body) as a single write-ready byte buffer.
pub fn encode_response(status: (u16, &str), body: &Json, keep_alive: bool) -> Vec<u8> {
    encode_response_with(status, &[], body, keep_alive)
}

/// [`encode_response`] plus extra headers (e.g. `Retry-After` on a 503).
/// Header names and values must already be wire-safe — no CR/LF.
pub fn encode_response_with(
    status: (u16, &str),
    extra_headers: &[(&str, String)],
    body: &Json,
    keep_alive: bool,
) -> Vec<u8> {
    let body = body.to_string();
    let mut message = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status.0,
        status.1,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        message.push_str(name);
        message.push_str(": ");
        message.push_str(value);
        message.push_str("\r\n");
    }
    message.push_str("\r\n");
    message.push_str(&body);
    message.into_bytes()
}

/// Encode a non-JSON response (e.g. the Prometheus `/metrics` exposition).
/// The body is shipped verbatim; `content_type` and `extra_headers` must
/// already be wire-safe — no CR/LF.
pub fn encode_text_response(
    status: (u16, &str),
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
    keep_alive: bool,
) -> Vec<u8> {
    let mut message = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status.0,
        status.1,
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        message.push_str(name);
        message.push_str(": ");
        message.push_str(value);
        message.push_str("\r\n");
    }
    message.push_str("\r\n");
    message.push_str(body);
    message.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(raw: &str) -> (ParsedRequest, usize) {
        match parse_request(raw.as_bytes(), 64 << 20) {
            Parse::Complete { request, consumed } => (request, consumed),
            Parse::NeedMore => panic!("unexpected NeedMore for {raw:?}"),
            Parse::Invalid(e) => panic!("unexpected error {e} for {raw:?}"),
        }
    }

    #[test]
    fn parses_a_request_with_body_and_tracks_consumed() {
        let raw = "POST /sessions/s HTTP/1.1\r\nContent-Length: 4\r\n\r\nbodyGET /next";
        let (req, consumed) = complete(raw);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions/s");
        assert_eq!(req.body, "body");
        assert!(req.keep_alive);
        assert_eq!(&raw[consumed..], "GET /next", "pipelined tail must remain");
    }

    #[test]
    fn incremental_prefixes_need_more() {
        for cut in 1.."GET / HTTP/1.1\r\n\r\n".len() {
            let prefix = &"GET / HTTP/1.1\r\n\r\n"[..cut];
            assert!(
                matches!(parse_request(prefix.as_bytes(), 1024), Parse::NeedMore),
                "prefix {prefix:?} must ask for more"
            );
        }
    }

    #[test]
    fn version_token_sets_the_keep_alive_default() {
        assert!(complete("GET / HTTP/1.1\r\n\r\n").0.keep_alive);
        assert!(!complete("GET / HTTP/1.0\r\n\r\n").0.keep_alive);
        assert!(!complete("GET /\r\n\r\n").0.keep_alive, "versionless requests close");
        // Connection overrides either default, in either direction.
        assert!(complete("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").0.keep_alive);
        assert!(!complete("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").0.keep_alive);
    }

    #[test]
    fn line_limit_excludes_the_terminator() {
        // Content of exactly MAX_LINE_BYTES parses; one more byte is 413.
        let path_len = MAX_LINE_BYTES - "GET  HTTP/1.1".len();
        let at_limit = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(path_len - 1));
        let (req, _) = complete(&at_limit);
        assert_eq!(req.path.len(), path_len);
        let over = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(path_len));
        assert!(matches!(
            parse_request(over.as_bytes(), 1024),
            Parse::Invalid(ServiceError::TooLarge(_))
        ));
    }

    #[test]
    fn newline_free_floods_are_bounded() {
        let flood = vec![b'A'; MAX_LINE_BYTES + 2];
        assert!(matches!(parse_request(&flood, 1024), Parse::Invalid(ServiceError::TooLarge(_))));
        // One byte under the cutoff still waits (the next byte may be \n).
        assert!(matches!(parse_request(&flood[..MAX_LINE_BYTES + 1], 1024), Parse::NeedMore));
    }

    #[test]
    fn oversized_bodies_and_chunked_are_rejected_before_the_body_arrives() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 2048\r\n\r\n";
        assert!(matches!(
            parse_request(raw.as_bytes(), 1024),
            Parse::Invalid(ServiceError::TooLarge(_))
        ));
        let raw = "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(
            parse_request(raw.as_bytes(), 1024),
            Parse::Invalid(ServiceError::BadRequest(_))
        ));
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let (req, _) = complete("GET /healthz HTTP/1.1\nHost: x\n\n");
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn percent_decoding_round_trips_and_rejects_separators() {
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert_eq!(percent_decode("a%20b").unwrap(), "a b");
        assert_eq!(percent_decode("caf%C3%A9").unwrap(), "café");
        assert!(percent_decode("a%2Fb").is_err());
        assert!(percent_decode("a%2fb").is_err());
        assert!(percent_decode("a%00b").is_err());
        assert!(percent_decode("a%zzb").is_err());
        assert!(percent_decode("trailing%2").is_err());
        assert!(percent_decode("%C3%28").is_err(), "invalid UTF-8 after decoding");
    }
}
