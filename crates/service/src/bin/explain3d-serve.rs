//! `explain3d-serve` — the Explain3D explanation service.
//!
//! Hosts many named [`ExplainSession`]s behind an HTTP/1.1 JSON API: create
//! a session by uploading two canonical relations, explain it, stream
//! deltas at it (concurrent deltas against one session coalesce into one
//! incremental re-explanation), read reports, drop it. See the repo
//! README's "Serving" section for curl-able examples.
//!
//! ```text
//! usage: explain3d-serve [--addr HOST:PORT] [--threads N] [--queue N]
//!                        [--backend epoll|poll|auto] [--max-conns N]
//!                        [--shards N] [--io-timeout-ms N]
//!                        [--coalesce-window-ms N]
//!                        [--memory-budget-mb N] [--data-dir DIR]
//!                        [--fsync off|interval[:N]|always]
//!                        [--snapshot-every N]
//!                        [--durability best-effort|strict]
//!                        [--telemetry on|off] [--slow-log-ms N]
//!                        [--fault-seed N] [--fault-ops SPEC] [--smoke]
//! ```
//!
//! One event-loop thread multiplexes every connection through the chosen
//! readiness `--backend` (`auto` picks `epoll` on Linux, `poll`
//! elsewhere) and dispatches complete requests onto `--threads` workers;
//! `--max-conns` caps concurrently open sockets (beyond it accepts are
//! answered 429). `--shards` stripes the session-index lock and
//! `--coalesce-window-ms` makes delta requests wait that long for
//! batch-mates before re-explaining — higher delta throughput under
//! bursts, at bounded added latency.
//!
//! With `--data-dir` every session is durable: applied deltas are
//! write-ahead-logged before they are acknowledged, snapshots replace the
//! log every `--snapshot-every` deltas, evicted sessions spill to disk,
//! and a restart on the same directory transparently recovers every
//! session. `--fsync` trades write latency for power-loss protection
//! (process crashes lose nothing under any policy). `--durability` picks
//! what a storage *failure* means: `best-effort` (default) keeps the
//! session serving from memory with `durability: "degraded"` on every
//! response while re-attach retries in the background; `strict` answers
//! writes it cannot log with `503 durability_unavailable` instead.
//! `SIGTERM`/`SIGINT` drain gracefully: stop accepting, finish queued
//! requests, flush every session to a fresh snapshot, exit 0.
//!
//! `--telemetry` (default `on`) arms the observability layer: histogram
//! metrics and per-route counters on `GET /metrics` (Prometheus text),
//! per-request traces with an `X-Trace-Id` response header readable back
//! via `GET /debug/trace/<id>` and `GET /debug/slow`. `--slow-log-ms N`
//! additionally appends a JSON line for every request slower than `N`
//! milliseconds to `slow.jsonl` under `--data-dir` (size-bounded). With
//! `--telemetry off` the service reads no clocks and records nothing —
//! every instrumentation site is one never-taken branch.
//!
//! `--fault-seed` / `--fault-ops` arm the deterministic fault-injection
//! shim on the storage stack (chaos testing only — e.g.
//! `--fault-ops write:ppm=20000:eio,fsync:ppm=5000:silentloss`); the same
//! seed and spec replay the same fault schedule.
//!
//! `--smoke` runs the CI smoke lane instead of serving: bind an ephemeral
//! port, drive a scripted create/explain/delta/report lifecycle over a real
//! `TcpStream`, and verify the returned fingerprints are byte-identical to
//! the same operations run in-process. Exits 0 on success.
//!
//! [`ExplainSession`]: explain3d_incremental::ExplainSession

use explain3d_durability::{DurabilityConfig, FaultInjector, FaultPlan, FsyncPolicy};
use explain3d_service::client::Client;
use explain3d_service::json::Json;
use explain3d_service::registry::{DurabilityMode, ServiceConfig, SessionRegistry};
use explain3d_service::telemetry::SLOW_LOG_MAX_BYTES;
use explain3d_service::wire;
use explain3d_service::{Backend, Server, ServerConfig, SlowLogConfig, Telemetry, TelemetryConfig};
use std::sync::atomic::{AtomicBool, Ordering};

const USAGE: &str = "usage: explain3d-serve [--addr HOST:PORT] [--threads N] [--queue N] \
                     [--backend epoll|poll|auto] [--max-conns N] [--shards N] \
                     [--io-timeout-ms N] [--coalesce-window-ms N] [--memory-budget-mb N] \
                     [--data-dir DIR] [--fsync off|interval[:N]|always] [--snapshot-every N] \
                     [--durability best-effort|strict] [--telemetry on|off] [--slow-log-ms N] \
                     [--fault-seed N] [--fault-ops SPEC] [--smoke]";

/// Set by the `SIGTERM`/`SIGINT` handler; the accept loop polls it.
static STOP: AtomicBool = AtomicBool::new(false);

/// Installs the graceful-drain signal handler (std-only: `signal(2)` via a
/// raw C binding; the handler body is one atomic store, which is
/// async-signal-safe).
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn request_stop(_signum: i32) {
        STOP.store(true, Ordering::Relaxed);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    /// `SIG_ERR` — `signal(2)` returns the previous handler, or this on
    /// failure (cast of -1; `usize` here because the binding erases the
    /// handler-pointer type).
    const SIG_ERR: usize = usize::MAX;
    // SAFETY: `request_stop` is an `extern "C" fn(i32)` whose body is a
    // single relaxed atomic store — async-signal-safe, no allocation, no
    // locks. The fn pointer outlives the process (it is a static item), so
    // the kernel never invokes a dangling handler. signal(2) itself takes
    // integers only; its failure return is checked below.
    let (term, int) = unsafe {
        (
            signal(SIGTERM, request_stop as *const () as usize),
            signal(SIGINT, request_stop as *const () as usize),
        )
    };
    if term == SIG_ERR || int == SIG_ERR {
        // Degraded but not fatal: the server still works, it just won't
        // drain gracefully on signals. Say so instead of silently losing
        // the guarantee.
        eprintln!("explain3d-serve: warning: failed to install signal handlers; graceful drain on SIGTERM/SIGINT is disabled");
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage_error(msg: &str) -> ! {
    eprintln!("explain3d-serve: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_count(raw: &str, name: &str) -> usize {
    match raw.parse() {
        Ok(n) if n > 0 => n,
        _ => usage_error(&format!("{name} takes a positive number, got {raw:?}")),
    }
}

fn main() {
    let mut config = ServerConfig { addr: "127.0.0.1:7433".to_string(), ..Default::default() };
    let mut smoke = false;
    let mut data_dir: Option<String> = None;
    let mut fsync = FsyncPolicy::EveryN(16);
    let mut snapshot_every: u64 = 64;
    let mut fault_seed: u64 = 0;
    let mut fault_ops: Option<String> = None;
    let mut telemetry_on = true;
    let mut slow_log_ms: Option<u64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| usage_error(&format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--threads" => config.threads = parse_count(&value("--threads"), "--threads"),
            "--queue" => config.queue_capacity = parse_count(&value("--queue"), "--queue"),
            "--backend" => {
                let raw = value("--backend");
                config.backend = Backend::parse(&raw).unwrap_or_else(|| {
                    usage_error(&format!("--backend takes epoll, poll, or auto; got {raw:?}"))
                });
            }
            "--max-conns" => {
                config.max_connections = parse_count(&value("--max-conns"), "--max-conns");
            }
            "--shards" => config.service.shards = parse_count(&value("--shards"), "--shards"),
            "--io-timeout-ms" => {
                config.io_timeout = std::time::Duration::from_millis(parse_count(
                    &value("--io-timeout-ms"),
                    "--io-timeout-ms",
                ) as u64);
            }
            "--coalesce-window-ms" => {
                config.service.coalesce_window = Some(std::time::Duration::from_millis(
                    parse_count(&value("--coalesce-window-ms"), "--coalesce-window-ms") as u64,
                ));
            }
            "--memory-budget-mb" => {
                config.service.memory_budget =
                    Some(parse_count(&value("--memory-budget-mb"), "--memory-budget-mb") << 20);
            }
            "--data-dir" => data_dir = Some(value("--data-dir")),
            "--fsync" => {
                let raw = value("--fsync");
                fsync = FsyncPolicy::parse(&raw).unwrap_or_else(|| {
                    usage_error(&format!(
                        "--fsync takes off, never, interval, interval:N, or always; got {raw:?}"
                    ))
                });
            }
            "--snapshot-every" => {
                snapshot_every = parse_count(&value("--snapshot-every"), "--snapshot-every") as u64;
            }
            "--durability" => {
                let raw = value("--durability");
                config.service.durability_mode = DurabilityMode::parse(&raw).unwrap_or_else(|| {
                    usage_error(&format!("--durability takes best-effort or strict; got {raw:?}"))
                });
            }
            "--fault-seed" => {
                let raw = value("--fault-seed");
                fault_seed = raw.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--fault-seed takes a number, got {raw:?}"))
                });
            }
            "--telemetry" => {
                let raw = value("--telemetry");
                telemetry_on = match raw.as_str() {
                    "on" => true,
                    "off" => false,
                    _ => usage_error(&format!("--telemetry takes on or off; got {raw:?}")),
                };
            }
            "--slow-log-ms" => {
                slow_log_ms = Some(parse_count(&value("--slow-log-ms"), "--slow-log-ms") as u64);
            }
            "--fault-ops" => fault_ops = Some(value("--fault-ops")),
            "--smoke" => smoke = true,
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    let shim = fault_ops.map(|spec| {
        let plan = FaultPlan::parse(fault_seed, &spec).unwrap_or_else(|| {
            usage_error(&format!("--fault-ops: cannot parse {spec:?}"));
        });
        eprintln!("explain3d-serve: FAULT INJECTION ARMED (seed {fault_seed}, spec {spec:?})");
        FaultInjector::new(plan)
    });
    if shim.is_some() && data_dir.is_none() {
        usage_error("--fault-ops requires --data-dir (the shim wraps storage I/O)");
    }
    if let Some(dir) = data_dir {
        config.service.durability =
            Some(DurabilityConfig { dir: dir.into(), fsync, snapshot_every, shim });
    }
    if slow_log_ms.is_some() && config.service.durability.is_none() {
        usage_error("--slow-log-ms requires --data-dir (the log lives under it)");
    }
    if slow_log_ms.is_some() && !telemetry_on {
        usage_error("--slow-log-ms requires --telemetry on");
    }
    if telemetry_on {
        let slow_log = match (slow_log_ms, &config.service.durability) {
            (Some(ms), Some(d)) => {
                if let Err(e) = std::fs::create_dir_all(&d.dir) {
                    eprintln!("explain3d-serve: cannot create {}: {e}", d.dir.display());
                    std::process::exit(1);
                }
                Some(SlowLogConfig {
                    path: d.dir.join("slow.jsonl"),
                    threshold: std::time::Duration::from_millis(ms),
                    max_bytes: SLOW_LOG_MAX_BYTES,
                })
            }
            _ => None,
        };
        // Unique-ish per process so restarts do not replay trace ids, yet
        // in-tree (no extra entropy source).
        let trace_seed = (std::process::id() as u64) << 32
            ^ std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64)
                .unwrap_or(0);
        let tel = TelemetryConfig { trace_seed, slow_log, ..TelemetryConfig::default() };
        match Telemetry::new(tel) {
            Ok(t) => config.service.telemetry = Some(std::sync::Arc::new(t)),
            Err(e) => {
                eprintln!("explain3d-serve: cannot open the slow log: {e}");
                std::process::exit(1);
            }
        }
    }

    if smoke {
        config.addr = "127.0.0.1:0".to_string();
        std::process::exit(run_smoke(config));
    }

    let server = match Server::bind(config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("explain3d-serve: cannot bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "explain3d-serve: listening on {} ({} workers, queue {})",
        server.local_addr(),
        config.threads,
        config.queue_capacity
    );
    println!(
        "explain3d-serve: {:?} readiness backend, max {} connections",
        config.backend, config.max_connections
    );
    if let Some(d) = &config.service.durability {
        println!(
            "explain3d-serve: durable sessions under {} (fsync {:?}, snapshot every {})",
            d.dir.display(),
            d.fsync,
            d.snapshot_every
        );
    }
    match (&config.service.telemetry, slow_log_ms) {
        (Some(_), Some(ms)) => {
            println!("explain3d-serve: telemetry on (/metrics, /debug/trace; slow log at {ms}ms)")
        }
        (Some(_), None) => println!("explain3d-serve: telemetry on (/metrics, /debug/trace)"),
        (None, _) => println!("explain3d-serve: telemetry off"),
    }
    install_signal_handlers();
    // `run` returns once STOP is set: it stops accepting, finishes every
    // admitted request, and flushes all durable sessions to snapshots.
    server.run(&STOP);
    println!("explain3d-serve: drained, exiting");
}

/// The scripted session lifecycle of the CI smoke lane. Returns the
/// process exit code.
fn run_smoke(config: ServerConfig) -> i32 {
    let create_body = r#"{
      "left":  {"name": "Q1", "columns": [["name", "str"], ["year", "int"]],
                "key": ["name"],
                "tuples": [{"values": ["computer science", 1999], "impact": 2.0},
                           {"values": ["electrical engineering", 2001]},
                           {"values": ["design", 2003]}]},
      "right": {"name": "Q2", "columns": [["title", "str"], ["published", "int"]],
                "key": ["title"],
                "tuples": [{"values": ["computer science", 1999]},
                           {"values": ["electrical engineering", 2001]}]},
      "match": {"left": "name", "right": "title"},
      "options": {"min_similarity": 0.2}
    }"#;
    let delta_body = r#"{"ops": [
        {"op": "insert", "side": "right", "tuple": {"values": ["design", 2003]}},
        {"op": "update", "side": "left", "index": 0,
         "tuple": {"values": ["computer science", 1999], "impact": 1.0}}
    ]}"#;

    // The in-process oracle: the same lifecycle against a bare registry.
    let oracle = SessionRegistry::new(ServiceConfig::default());
    let create = wire::parse_create(create_body).expect("smoke create body parses");
    oracle.create("smoke", create).expect("oracle create");
    let oracle_explain = oracle.explain("smoke", None).expect("oracle explain");
    let (left, right) = oracle.shapes("smoke").expect("oracle shapes");
    let parsed = wire::parse_delta(delta_body, &left, &right).expect("smoke delta parses");
    let oracle_delta = oracle.delta("smoke", parsed.delta, parsed.deadline).expect("oracle delta");

    // The wire side: a real server on an ephemeral port.
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smoke: cannot bind: {e}");
            return 1;
        }
    };
    let addr = server.local_addr();
    let handle = server.spawn();
    println!("smoke: server on {addr}");

    let result = (|| -> Result<(), String> {
        let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
        let expect = |step: &str,
                      got: Result<(u16, Json), explain3d_service::client::ClientError>,
                      want_status: u16|
         -> Result<Json, String> {
            let (status, body) = got.map_err(|e| format!("{step}: {e}"))?;
            if status != want_status {
                return Err(format!("{step}: status {status}, wanted {want_status}: {body}"));
            }
            Ok(body)
        };

        let health = expect("healthz", client.request("GET", "/healthz", ""), 200)?;
        if health.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("healthz body: {health}"));
        }
        expect("create", client.request("POST", "/sessions/smoke", create_body), 200)?;
        let explain =
            expect("explain", client.request("POST", "/sessions/smoke/explain", ""), 200)?;
        let wire_explain_fp = explain
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("explain: no fingerprint")?
            .to_string();
        let oracle_explain_fp = wire::fingerprint_hex(&oracle_explain);
        if wire_explain_fp != oracle_explain_fp {
            return Err(format!(
                "explain fingerprints diverge: wire {wire_explain_fp} vs in-process {oracle_explain_fp}"
            ));
        }
        let delta =
            expect("delta", client.request("POST", "/sessions/smoke/delta", delta_body), 200)?;
        let wire_delta_fp = delta
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("delta: no fingerprint")?
            .to_string();
        let oracle_delta_fp = wire::fingerprint_hex(&oracle_delta.report);
        if wire_delta_fp != oracle_delta_fp {
            return Err(format!(
                "delta fingerprints diverge: wire {wire_delta_fp} vs in-process {oracle_delta_fp}"
            ));
        }
        let report = expect("report", client.request("GET", "/sessions/smoke/report", ""), 200)?;
        if report.get("fingerprint").and_then(Json::as_str) != Some(&wire_delta_fp) {
            return Err("stored report differs from the delta response".into());
        }
        // Errors come back typed, not as closed connections.
        expect(
            "bad delta",
            client.request(
                "POST",
                "/sessions/smoke/delta",
                r#"{"ops": [{"op": "delete", "side": "left", "index": 99}]}"#,
            ),
            400,
        )?;
        expect("missing session", client.request("POST", "/sessions/nope/explain", ""), 404)?;
        expect("drop", client.request("DELETE", "/sessions/smoke", ""), 200)?;
        expect("dropped report", client.request("GET", "/sessions/smoke/report", ""), 404)?;
        Ok(())
    })();

    handle.shutdown();
    match result {
        Ok(()) => {
            println!("smoke: PASS — wire fingerprints byte-identical to in-process run");
            0
        }
        Err(e) => {
            eprintln!("smoke: FAIL — {e}");
            1
        }
    }
}
