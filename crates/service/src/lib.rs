//! # explain3d-service
//!
//! The multi-session explanation **service** layer of the Explain3D
//! reproduction: everything between the incremental [`ExplainSession`] and
//! a TCP socket.
//!
//! After PR 4 the repo could re-explain one evolving dataset pair cheaply —
//! but only as a library owned by one caller. This crate packages that
//! capability the way ProvSQL/MADlib package their engines: a long-lived,
//! concurrent, multi-tenant serving surface.
//!
//! * [`registry::SessionRegistry`] — a concurrent map of named sessions
//!   with per-session locking, **delta coalescing** (queued deltas against
//!   the same session merge into one `re_explain`), and LRU eviction under
//!   a configurable [`ExplainSession::memory_footprint`] budget;
//! * [`wire`] — the JSON wire protocol (relation uploads, delta ops,
//!   report serialisation with the authoritative fingerprint), built on the
//!   in-tree parser/emitter in [`json`] (no serde, depth-limited, panic-free
//!   on arbitrary input);
//! * [`http::Server`] — a readiness-based HTTP/1.1 server: one event loop
//!   ([`poller`]: raw `epoll` with a `poll(2)` fallback) owns every
//!   nonblocking socket and dispatches complete *requests* (never whole
//!   connections) onto a fixed [`explain3d_parallel::TaskPool`], so a slow
//!   MILP solve never blocks unrelated sockets; bounded admission queue
//!   with 429 shed, keep-alive connections, and per-request deterministic
//!   MILP deadlines;
//! * [`client::Client`] — the minimal TcpStream client the smoke tests and
//!   bench clients drive the wire with.
//!
//! ## The serving invariant
//!
//! Any interleaving of concurrent requests across sessions yields reports
//! **byte-identical** (equal [`explain3d_incremental::report_fingerprint`])
//! to the same operations applied serially per session — including under
//! delta coalescing and after LRU eviction + re-create. Per-session locks
//! serialise each session's runs; coalescing only concatenates ordered
//! edit scripts, which `re_explain`'s byte-identity-to-cold invariant
//! makes equivalent to running them one at a time. Pinned by
//! `tests/service_concurrency.rs` and the CI smoke lane.
//!
//! ```
//! use explain3d_service::registry::{ServiceConfig, SessionRegistry};
//! use explain3d_service::wire::parse_create;
//!
//! let registry = SessionRegistry::new(ServiceConfig::default());
//! let create = parse_create(r#"{
//!   "left":  {"name": "Q1", "columns": [["k", "str"]], "key": ["k"],
//!             "tuples": [{"values": ["CS"], "impact": 2.0},
//!                        {"values": ["Design"]}]},
//!   "right": {"name": "Q2", "columns": [["k", "str"]], "key": ["k"],
//!             "tuples": [{"values": ["CS"]}]},
//!   "match": {"left": "k", "right": "k"}
//! }"#).unwrap();
//! registry.create("demo", create).unwrap();
//! let report = registry.explain("demo", None).unwrap();
//! assert!(report.complete);
//! ```
//!
//! [`ExplainSession`]: explain3d_incremental::ExplainSession
//! [`ExplainSession::memory_footprint`]: explain3d_incremental::ExplainSession::memory_footprint

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod http;
pub mod json;
pub mod poller;
pub mod proto;
pub mod registry;
pub mod telemetry;
pub mod wire;

pub use client::{Client, ClientError, Response, RetryClient, RetryPolicy};
pub use error::ServiceError;
pub use http::{Server, ServerConfig, ServerHandle};
pub use poller::Backend;
pub use registry::{DeltaOutcome, RegistryStats, RunTimings, ServiceConfig, SessionRegistry};
pub use telemetry::{SlowLogConfig, Telemetry, TelemetryConfig};
