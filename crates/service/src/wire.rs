//! The wire protocol: JSON shapes for relation uploads, delta operations,
//! and explanation reports.
//!
//! Uploads arrive at the **canonical** level — named columns, rows of
//! values, per-tuple impacts — the shape Stage 1 produces, so a client can
//! feed the service from any source without shipping the relational engine
//! over the wire. Every parse failure is a [`ServiceError::BadRequest`]
//! naming the offending field; nothing in this module can panic on
//! malformed input.
//!
//! ## Shapes
//!
//! Create (`POST /sessions/{name}`):
//!
//! ```json
//! {
//!   "left":  {"name": "Q1",
//!             "columns": [["name", "str"], ["year", "int"]],
//!             "key": ["name"],
//!             "tuples": [{"values": ["CS", 1999], "impact": 2.0}]},
//!   "right": {...},
//!   "match": {"left": "name", "right": "name"},
//!   "options": {"min_similarity": 0.4, "use_blocking": true,
//!               "metric": "jaccard", "batch_size": 1000}
//! }
//! ```
//!
//! Delta (`POST /sessions/{name}/delta`):
//!
//! ```json
//! {"ops": [
//!    {"op": "insert", "side": "left",  "tuple": {"values": [...], "impact": 1.0}},
//!    {"op": "update", "side": "right", "index": 3, "tuple": {...}},
//!    {"op": "delete", "side": "left",  "index": 0}
//!  ],
//!  "deadline_ms": 500,
//!  "request_id": "client-chosen-idempotency-key"}
//! ```
//!
//! `request_id` is optional; a retry carrying the same id against the
//! same session is acknowledged from the dedup window (`"deduplicated":
//! true` in the response) instead of being applied twice.
//!
//! Reports serialise explanations, evidence, statistics, and the
//! authoritative [`report_fingerprint`] as a hex string — the byte-identity
//! contract travels as that fingerprint, immune to float formatting.

use crate::error::ServiceError;
use crate::json::Json;
use explain3d_core::pipeline::{ExplanationReport, PipelineStats};
use explain3d_core::prelude::{AttributeMatches, CanonicalRelation, CanonicalTuple, Side};
use explain3d_incremental::{report_fingerprint, RelationDelta, SessionConfig, TupleOp};
use explain3d_linkage::StringMetric;
use explain3d_relation::prelude::{Row, Schema, Value, ValueType};
use std::time::Duration;

/// The schema-level identity of one uploaded relation — kept by the
/// registry so delta tuples can be parsed without locking the session.
#[derive(Debug, Clone)]
pub struct RelationShape {
    /// Column schema of the uploaded rows.
    pub schema: Schema,
    /// The key (grouping) attribute names.
    pub key_attrs: Vec<String>,
}

impl RelationShape {
    /// The shape of a canonical relation.
    pub fn of(relation: &CanonicalRelation) -> Self {
        RelationShape { schema: relation.schema.clone(), key_attrs: relation.key_attrs.clone() }
    }
}

/// A parsed create request.
#[derive(Debug, Clone)]
pub struct CreateRequest {
    /// The left canonical relation.
    pub left: CanonicalRelation,
    /// The right canonical relation.
    pub right: CanonicalRelation,
    /// The attribute matches between the two.
    pub matches: AttributeMatches,
    /// The session configuration the options resolve to.
    pub config: SessionConfig,
}

/// A parsed delta request.
#[derive(Debug, Clone)]
pub struct DeltaRequest {
    /// The ordered tuple edits.
    pub delta: RelationDelta,
    /// Optional per-request MILP deadline override.
    pub deadline: Option<Duration>,
    /// Optional client-generated idempotency key: a retry carrying the
    /// same id is answered from the dedup window instead of re-applied.
    pub request_id: Option<String>,
}

/// Hard cap on `request_id` length — it is stored per session in the
/// retry window and logged with every WAL record.
pub const MAX_REQUEST_ID_BYTES: usize = 128;

fn bad(field: &str, what: &str) -> ServiceError {
    ServiceError::BadRequest(format!("{field}: {what}"))
}

fn req<'a>(obj: &'a Json, field: &str) -> Result<&'a Json, ServiceError> {
    obj.get(field).ok_or_else(|| bad(field, "missing"))
}

fn req_str<'a>(obj: &'a Json, field: &str) -> Result<&'a str, ServiceError> {
    req(obj, field)?.as_str().ok_or_else(|| bad(field, "must be a string"))
}

fn parse_side(raw: &str, field: &str) -> Result<Side, ServiceError> {
    match raw {
        "left" => Ok(Side::Left),
        "right" => Ok(Side::Right),
        _ => Err(bad(field, "must be \"left\" or \"right\"")),
    }
}

fn parse_value_type(raw: &str, field: &str) -> Result<ValueType, ServiceError> {
    match raw {
        "int" => Ok(ValueType::Int),
        "float" => Ok(ValueType::Float),
        "str" => Ok(ValueType::Str),
        "bool" => Ok(ValueType::Bool),
        _ => Err(bad(field, "must be one of \"int\", \"float\", \"str\", \"bool\"")),
    }
}

/// One wire value → [`Value`], guided by the declared column type (ints
/// widen into float columns; `null` is allowed everywhere).
fn parse_value(json: &Json, ty: ValueType, field: &str) -> Result<Value, ServiceError> {
    match (json, ty) {
        (Json::Null, _) => Ok(Value::Null),
        (Json::Int(i), ValueType::Int) => Ok(Value::Int(*i)),
        (j, ValueType::Float) => {
            j.as_f64().map(Value::Float).ok_or_else(|| bad(field, "expected a number"))
        }
        (Json::Str(s), ValueType::Str) => Ok(Value::Str(s.clone())),
        (Json::Bool(b), ValueType::Bool) => Ok(Value::Bool(*b)),
        (_, ValueType::Int) => Err(bad(field, "expected an integer")),
        (_, ValueType::Str) => Err(bad(field, "expected a string")),
        (_, ValueType::Bool) => Err(bad(field, "expected a boolean")),
        (_, ValueType::Unknown) => Err(bad(field, "column type is unknown")),
    }
}

/// Parses one uploaded tuple (`{"values": [...], "impact": 1.0}`) against a
/// relation shape. The key is extracted from the values of the key columns;
/// `impact` defaults to 1.0; `id` is assigned by the relation.
pub fn parse_tuple(json: &Json, shape: &RelationShape) -> Result<CanonicalTuple, ServiceError> {
    let values = req(json, "values")?.as_arr().ok_or_else(|| bad("values", "must be an array"))?;
    let columns = shape.schema.columns();
    if values.len() != columns.len() {
        return Err(bad(
            "values",
            &format!("expected {} values, got {}", columns.len(), values.len()),
        ));
    }
    let mut row_values = Vec::with_capacity(values.len());
    for (v, c) in values.iter().zip(columns) {
        row_values.push(parse_value(v, c.ty, &format!("values[{}]", c.name))?);
    }
    let impact = match json.get("impact") {
        None => 1.0,
        Some(j) => {
            let f = j.as_f64().ok_or_else(|| bad("impact", "must be a number"))?;
            if !f.is_finite() {
                return Err(bad("impact", "must be finite"));
            }
            f
        }
    };
    let row = Row::new(row_values);
    let mut key = Vec::with_capacity(shape.key_attrs.len());
    for attr in &shape.key_attrs {
        let idx = shape
            .schema
            .index_of(attr)
            .map_err(|_| bad("key", &format!("key attribute {attr:?} not in schema")))?;
        key.push(row.get(idx).cloned().unwrap_or(Value::Null));
    }
    Ok(CanonicalTuple { id: 0, key, impact, members: Vec::new(), representative: row })
}

/// Parses one uploaded relation.
pub fn parse_relation(json: &Json) -> Result<CanonicalRelation, ServiceError> {
    let name = req_str(json, "name")?.to_string();
    let columns_json =
        req(json, "columns")?.as_arr().ok_or_else(|| bad("columns", "must be an array"))?;
    if columns_json.is_empty() {
        return Err(bad("columns", "must not be empty"));
    }
    let mut pairs: Vec<(String, ValueType)> = Vec::with_capacity(columns_json.len());
    for (i, c) in columns_json.iter().enumerate() {
        let field = format!("columns[{i}]");
        let parts = c.as_arr().ok_or_else(|| bad(&field, "must be a [name, type] pair"))?;
        let [name_j, ty_j] = parts else {
            return Err(bad(&field, "must be a [name, type] pair"));
        };
        let col_name = name_j.as_str().ok_or_else(|| bad(&field, "name must be a string"))?;
        let ty_name = ty_j.as_str().ok_or_else(|| bad(&field, "type must be a string"))?;
        if pairs.iter().any(|(n, _)| n == col_name) {
            return Err(bad(&field, "duplicate column name"));
        }
        pairs.push((col_name.to_string(), parse_value_type(ty_name, &field)?));
    }
    let pair_refs: Vec<(&str, ValueType)> = pairs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let schema = Schema::from_pairs(&pair_refs);

    let key_json = req(json, "key")?.as_arr().ok_or_else(|| bad("key", "must be an array"))?;
    if key_json.is_empty() {
        return Err(bad("key", "must name at least one column"));
    }
    let mut key_attrs = Vec::with_capacity(key_json.len());
    for k in key_json {
        let attr = k.as_str().ok_or_else(|| bad("key", "entries must be strings"))?;
        schema
            .index_of(attr)
            .map_err(|_| bad("key", &format!("key attribute {attr:?} not in columns")))?;
        key_attrs.push(attr.to_string());
    }

    let shape = RelationShape { schema: schema.clone(), key_attrs: key_attrs.clone() };
    let tuples_json =
        req(json, "tuples")?.as_arr().ok_or_else(|| bad("tuples", "must be an array"))?;
    let mut tuples = Vec::with_capacity(tuples_json.len());
    for (i, t) in tuples_json.iter().enumerate() {
        let mut tuple =
            parse_tuple(t, &shape).map_err(|e| bad(&format!("tuples[{i}]"), &e.to_string()))?;
        tuple.id = i;
        tuple.members = vec![i];
        tuples.push(tuple);
    }
    Ok(CanonicalRelation { query_name: name, schema, key_attrs, tuples, aggregate: None })
}

/// Parses the options object into a [`SessionConfig`] (defaults for every
/// absent field).
pub fn parse_options(json: Option<&Json>) -> Result<SessionConfig, ServiceError> {
    let mut config = SessionConfig::default();
    let Some(json) = json else {
        return Ok(config);
    };
    if let Some(ms) = json.get("min_similarity") {
        let v = ms.as_f64().ok_or_else(|| bad("options.min_similarity", "must be a number"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(bad("options.min_similarity", "must be in [0, 1]"));
        }
        config.mapping.min_similarity = v;
    }
    if let Some(b) = json.get("use_blocking") {
        config.mapping.use_blocking =
            b.as_bool().ok_or_else(|| bad("options.use_blocking", "must be a boolean"))?;
    }
    if let Some(m) = json.get("metric") {
        let name = m.as_str().ok_or_else(|| bad("options.metric", "must be a string"))?;
        config.mapping.metric = match name {
            "jaccard" => StringMetric::Jaccard,
            "jaro" => StringMetric::Jaro,
            "jaro_winkler" => StringMetric::JaroWinkler,
            _ => {
                return Err(bad(
                    "options.metric",
                    "must be one of \"jaccard\", \"jaro\", \"jaro_winkler\"",
                ))
            }
        };
    }
    if let Some(bs) = json.get("batch_size") {
        let v = bs.as_i64().ok_or_else(|| bad("options.batch_size", "must be an integer"))?;
        if v < 1 {
            return Err(bad("options.batch_size", "must be positive"));
        }
        config.explain.strategy =
            explain3d_core::pipeline::PartitioningStrategy::Smart { batch_size: v as usize };
    }
    if let Some(cap) = json.get("score_cache_cap") {
        let v = cap.as_i64().ok_or_else(|| bad("options.score_cache_cap", "must be an integer"))?;
        if v < 1 {
            return Err(bad("options.score_cache_cap", "must be positive"));
        }
        config.score_cache_soft_cap = Some(v as usize);
    }
    Ok(config)
}

/// Parses a create request body.
pub fn parse_create(body: &str) -> Result<CreateRequest, ServiceError> {
    let json = Json::parse(body)?;
    let left = parse_relation(req(&json, "left")?).map_err(|e| bad("left", &e.to_string()))?;
    let right = parse_relation(req(&json, "right")?).map_err(|e| bad("right", &e.to_string()))?;
    let matches_json = req(&json, "match")?;
    let left_attr = req_str(matches_json, "left")?;
    let right_attr = req_str(matches_json, "right")?;
    left.schema
        .index_of(left_attr)
        .map_err(|_| bad("match.left", "not a column of the left relation"))?;
    right
        .schema
        .index_of(right_attr)
        .map_err(|_| bad("match.right", "not a column of the right relation"))?;
    let matches = AttributeMatches::single_equivalent(left_attr, right_attr);
    let config = parse_options(json.get("options"))?;
    Ok(CreateRequest { left, right, matches, config })
}

/// Parses the optional `deadline_ms` field shared by explain and delta
/// requests.
pub fn parse_deadline(json: &Json) -> Result<Option<Duration>, ServiceError> {
    match json.get("deadline_ms") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let ms = v.as_i64().ok_or_else(|| bad("deadline_ms", "must be an integer"))?;
            if ms < 1 {
                return Err(bad("deadline_ms", "must be positive"));
            }
            Ok(Some(Duration::from_millis(ms as u64)))
        }
    }
}

/// Parses an explain request body (empty bodies allowed).
pub fn parse_explain(body: &str) -> Result<Option<Duration>, ServiceError> {
    if body.trim().is_empty() {
        return Ok(None);
    }
    parse_deadline(&Json::parse(body)?)
}

/// Parses a delta request body against the two relation shapes.
pub fn parse_delta(
    body: &str,
    left: &RelationShape,
    right: &RelationShape,
) -> Result<DeltaRequest, ServiceError> {
    let json = Json::parse(body)?;
    let ops_json = req(&json, "ops")?.as_arr().ok_or_else(|| bad("ops", "must be an array"))?;
    let mut delta = RelationDelta::new();
    for (i, op_json) in ops_json.iter().enumerate() {
        let field = format!("ops[{i}]");
        let kind = req_str(op_json, "op").map_err(|e| bad(&field, &e.to_string()))?;
        let side_raw = req_str(op_json, "side").map_err(|e| bad(&field, &e.to_string()))?;
        let side = parse_side(side_raw, &field)?;
        let shape = match side {
            Side::Left => left,
            Side::Right => right,
        };
        let index = |field: &str| -> Result<usize, ServiceError> {
            let v = req(op_json, "index")?
                .as_i64()
                .ok_or_else(|| bad(field, "index must be an integer"))?;
            usize::try_from(v).map_err(|_| bad(field, "index must be non-negative"))
        };
        let tuple = |field: &str| -> Result<CanonicalTuple, ServiceError> {
            parse_tuple(req(op_json, "tuple")?, shape).map_err(|e| bad(field, &e.to_string()))
        };
        delta.ops.push(match kind {
            "insert" => TupleOp::Insert { side, tuple: tuple(&field)? },
            "update" => TupleOp::Update { side, index: index(&field)?, tuple: tuple(&field)? },
            "delete" => TupleOp::Delete { side, index: index(&field)? },
            _ => return Err(bad(&field, "op must be one of \"insert\", \"update\", \"delete\"")),
        });
    }
    Ok(DeltaRequest {
        delta,
        deadline: parse_deadline(&json)?,
        request_id: parse_request_id(&json)?,
    })
}

/// Parses the optional `request_id` idempotency key of a delta request.
fn parse_request_id(json: &Json) -> Result<Option<String>, ServiceError> {
    match json.get("request_id") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let id = v.as_str().ok_or_else(|| bad("request_id", "must be a string"))?;
            if id.is_empty() {
                return Err(bad("request_id", "must not be empty"));
            }
            if id.len() > MAX_REQUEST_ID_BYTES {
                return Err(bad("request_id", "too long (max 128 bytes)"));
            }
            Ok(Some(id.to_string()))
        }
    }
}

fn side_name(side: Side) -> &'static str {
    match side {
        Side::Left => "left",
        Side::Right => "right",
    }
}

/// Hex encoding of a report fingerprint.
pub fn fingerprint_hex(report: &ExplanationReport) -> String {
    let bytes = report_fingerprint(report);
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write as _;
        let _ = write!(out, "{b:02x}");
    }
    out
}

fn emit_stats(stats: &PipelineStats) -> Json {
    Json::obj()
        .set("partition_secs", stats.partition_time.as_secs_f64())
        .set("solve_secs", stats.solve_time.as_secs_f64())
        .set("total_secs", stats.total_time.as_secs_f64())
        .set("num_subproblems", stats.num_subproblems)
        .set("milp_count", stats.milp_count)
        .set("milp_nodes", stats.milp_nodes)
        .set("suboptimal_subproblems", stats.suboptimal_subproblems)
        .set("threads", stats.threads)
        .set("steals", stats.steals)
        .set(
            "delta",
            Json::obj()
                .set("pair_cache_hits", stats.delta.pair_cache_hits)
                .set("pair_cache_misses", stats.delta.pair_cache_misses)
                .set("candidates_reused", stats.delta.candidates_reused)
                .set("component_cache_hits", stats.delta.component_cache_hits)
                .set("component_cache_misses", stats.delta.component_cache_misses)
                .set("parts_reused", stats.delta.parts_reused)
                .set("parts_dirty", stats.delta.parts_dirty),
        )
}

/// Serialises a report (explanations, evidence, statistics, fingerprint)
/// for a named session. `coalesced` is the number of *other* deltas merged
/// into the run that produced this report (0 for explain/report requests).
pub fn emit_report(session: &str, report: &ExplanationReport, coalesced: usize) -> Json {
    let e = &report.explanations;
    let provenance: Vec<Json> = e
        .provenance
        .iter()
        .map(|p| Json::obj().set("side", side_name(p.side)).set("tuple", p.tuple))
        .collect();
    let value: Vec<Json> = e
        .value
        .iter()
        .map(|v| {
            Json::obj()
                .set("side", side_name(v.side))
                .set("tuple", v.tuple)
                .set("old_impact", v.old_impact)
                .set("new_impact", v.new_impact)
        })
        .collect();
    let evidence: Vec<Json> = e
        .evidence
        .matches()
        .iter()
        .map(|m| Json::obj().set("left", m.left).set("right", m.right).set("prob", m.prob))
        .collect();
    Json::obj()
        .set("session", session)
        .set("fingerprint", fingerprint_hex(report))
        .set("log_probability", report.log_probability)
        .set("complete", report.complete)
        .set("coalesced_deltas", coalesced)
        .set(
            "explanations",
            Json::obj().set("provenance", provenance).set("value", value).set("evidence", evidence),
        )
        .set("stats", emit_stats(&report.stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn create_body() -> String {
        r#"{
          "left": {"name": "Q1",
                   "columns": [["name", "str"], ["year", "int"]],
                   "key": ["name"],
                   "tuples": [{"values": ["CS", 1999], "impact": 2.0},
                              {"values": ["Design", 2001]}]},
          "right": {"name": "Q2",
                    "columns": [["title", "str"], ["published", "int"]],
                    "key": ["title"],
                    "tuples": [{"values": ["CS", 1999]}]},
          "match": {"left": "name", "right": "title"},
          "options": {"min_similarity": 0.3, "use_blocking": false}
        }"#
        .to_string()
    }

    #[test]
    fn create_round_trips() {
        let req = parse_create(&create_body()).unwrap();
        assert_eq!(req.left.query_name, "Q1");
        assert_eq!(req.left.len(), 2);
        assert_eq!(req.left.tuples[0].impact, 2.0);
        assert_eq!(req.left.tuples[1].impact, 1.0, "impact defaults to 1.0");
        assert_eq!(req.left.tuples[1].id, 1);
        assert_eq!(req.left.tuples[0].key, vec![Value::str("CS")]);
        assert_eq!(req.right.len(), 1);
        assert_eq!(req.config.mapping.min_similarity, 0.3);
        assert!(!req.config.mapping.use_blocking);
    }

    #[test]
    fn create_rejects_malformed_bodies() {
        for (body, needle) in [
            ("{", "byte"),
            ("{}", "left"),
            (r#"{"left": 3, "right": {}, "match": {}}"#, "left"),
            (
                &create_body()
                    .replace("\"match\": {\"left\": \"name\"", "\"match\": {\"left\": \"nope\""),
                "match.left",
            ),
            (&create_body().replace("[\"name\", \"str\"]", "[\"name\", \"decimal\"]"), "left"),
            (&create_body().replace("\"key\": [\"name\"]", "\"key\": []"), "key"),
            (
                &create_body()
                    .replace("[\"CS\", 1999], \"impact\": 2.0", "[\"CS\"], \"impact\": 2.0"),
                "expected 2 values",
            ),
            (&create_body().replace("\"impact\": 2.0", "\"impact\": \"big\""), "impact"),
        ] {
            let err = parse_create(body).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "body {body:.60}... gave {err}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn delta_ops_parse_in_order() {
        let req = parse_create(&create_body()).unwrap();
        let left = RelationShape::of(&req.left);
        let right = RelationShape::of(&req.right);
        let body = r#"{"ops": [
            {"op": "insert", "side": "right", "tuple": {"values": ["Design", 2001]}},
            {"op": "update", "side": "left", "index": 0,
             "tuple": {"values": ["CSE", 1999], "impact": 1.5}},
            {"op": "delete", "side": "left", "index": 1}
        ], "deadline_ms": 250}"#;
        let parsed = parse_delta(body, &left, &right).unwrap();
        assert_eq!(parsed.delta.ops.len(), 3);
        assert_eq!(parsed.deadline, Some(Duration::from_millis(250)));
        match &parsed.delta.ops[1] {
            TupleOp::Update { side: Side::Left, index: 0, tuple } => {
                assert_eq!(tuple.impact, 1.5);
                assert_eq!(tuple.key, vec![Value::str("CSE")]);
            }
            other => panic!("wrong op: {other:?}"),
        }
    }

    #[test]
    fn delta_rejects_malformed_ops() {
        let req = parse_create(&create_body()).unwrap();
        let left = RelationShape::of(&req.left);
        let right = RelationShape::of(&req.right);
        for (body, needle) in [
            (r#"{"ops": 1}"#, "ops"),
            (r#"{"ops": [{"op": "upsert", "side": "left"}]}"#, "op must be"),
            (r#"{"ops": [{"op": "delete", "side": "middle", "index": 0}]}"#, "left"),
            (r#"{"ops": [{"op": "delete", "side": "left", "index": -1}]}"#, "non-negative"),
            (
                r#"{"ops": [{"op": "insert", "side": "left", "tuple": {"values": [1, 2]}}]}"#,
                "string",
            ),
            (r#"{"ops": [], "deadline_ms": 0}"#, "deadline_ms"),
        ] {
            let err = parse_delta(body, &left, &right).unwrap_err();
            assert!(err.to_string().contains(needle), "{body} gave {err}");
        }
    }

    #[test]
    fn report_emission_contains_the_contract_fields() {
        let report = ExplanationReport {
            explanations: Default::default(),
            log_probability: -1.25,
            complete: true,
            stats: Default::default(),
        };
        let json = emit_report("s1", &report, 2);
        let text = json.to_string();
        assert!(text.contains("\"session\":\"s1\""));
        assert!(text.contains("\"log_probability\":-1.25"));
        assert!(text.contains("\"coalesced_deltas\":2"));
        let fp = json.get("fingerprint").and_then(Json::as_str).unwrap();
        assert_eq!(fp, fingerprint_hex(&report));
        assert!(!fp.is_empty() && fp.bytes().all(|b| b.is_ascii_hexdigit()));
    }
}
